// Quantum counting on distributed databases via amplitude estimation.
//
// Theorems 4.3/4.5 assume the total cardinality M is PUBLIC — the
// amplitude-amplification plan needs a = M/(νN) (Eq. 7). This module
// supplies the subroutine that justifies the assumption: estimating the
// good amplitude of A|0⟩ = D|π,0⟩ estimates M, using only the same oracles
// the sampler uses. It is the distributed analogue of the quantum counting
// of Boyer–Brassard–Høyer–Tapp [8], which the paper cites as part of the
// Grover framework it builds on.
//
// We implement MAXIMUM-LIKELIHOOD amplitude estimation (iterative AE with
// an exponential power schedule): for each power m in {0, 1, 2, 4, ...},
// prepare A|0⟩, apply Q(π,π)^m, and measure the flag register; the good
// probability is sin²((2m+1)θ). The MLE over θ from all shot records
// achieves the Heisenberg-like error scaling ε ~ 1/Q_total instead of the
// classical ε ~ 1/√Q_total — experiment T9 measures exactly this gap.
// (Chosen over QPE-based AE because it needs no extra phase register —
// every operation is already in the sampler's oblivious instruction set.)
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "distdb/distributed_database.hpp"
#include "sampling/circuit.hpp"

namespace qs {

/// The measurement schedule: Grover powers and shots per power.
struct AeSchedule {
  std::vector<std::size_t> powers;
  std::size_t shots_per_power = 32;
};

/// The standard exponential schedule {0, 1, 2, 4, ..., 2^(rounds-2)}.
AeSchedule exponential_schedule(std::size_t rounds, std::size_t shots);

/// A linear schedule {0, 1, 2, ..., rounds-1} (more robust, less efficient;
/// used as an ablation in the benches).
AeSchedule linear_schedule(std::size_t rounds, std::size_t shots);

struct AmplitudeEstimate {
  double a_hat = 0.0;        ///< estimated good probability
  double theta_hat = 0.0;    ///< estimated angle, a_hat = sin²(θ̂)
  /// Asymptotic standard error of a_hat from the Fisher information of the
  /// shot schedule at θ̂ (Cramér–Rao scale; exact MLAE error fluctuates
  /// around it).
  double std_error = 0.0;
  /// Total oracle cost: sequential queries (or parallel rounds) spent by
  /// every preparation and Grover power across all shots.
  std::uint64_t oracle_cost = 0;
  /// Total D applications across all shots (model-independent cost).
  std::uint64_t d_applications = 0;
  std::size_t total_shots = 0;
};

/// Fisher information of θ for the schedule's Bernoulli records:
/// I(θ) = Σ_k s_k (2m_k+1)² sin²(2(2m_k+1)θ) / (p_k(1−p_k)) with
/// p_k = sin²((2m_k+1)θ). Returns the standard error of â = sin²θ̂,
/// SE(â) = |sin 2θ| / √I (clamped away from the p ∈ {0,1} boundary).
double ae_standard_error(double theta, const AeSchedule& schedule);

/// Estimate a = M/(νN) for the whole database by measuring the flag of
/// Q^m A|0⟩ under the given schedule. Works for any database, including an
/// EMPTY one (the estimate converges to 0 — usable as an emptiness test).
AmplitudeEstimate estimate_good_amplitude(const DistributedDatabase& db,
                                          QueryMode mode,
                                          const AeSchedule& schedule,
                                          Rng& rng,
                                          StatePrep prep = StatePrep::kHouseholder);

struct CountEstimate {
  double m_hat = 0.0;  ///< estimated cardinality (a_hat · νN)
  AmplitudeEstimate amplitude;
};

/// Estimate the total cardinality M of the distributed database.
CountEstimate estimate_total_count(const DistributedDatabase& db,
                                   QueryMode mode, const AeSchedule& schedule,
                                   Rng& rng);

/// Estimate machine j's local cardinality M_j by running the estimator
/// against a single-machine view with capacity κ_j. The oracle cost is all
/// charged to machine j.
CountEstimate estimate_machine_count(const DistributedDatabase& db,
                                     std::size_t j,
                                     const AeSchedule& schedule, Rng& rng);

/// Classical baseline: probe `probes` uniformly random (machine, element)
/// cells and scale the sample mean; standard Monte-Carlo ε ~ 1/√probes.
struct ClassicalCountEstimate {
  double m_hat = 0.0;
  std::uint64_t probes = 0;
};
ClassicalCountEstimate classical_count_estimate(const DistributedDatabase& db,
                                                std::uint64_t probes,
                                                Rng& rng);

/// Exposed for tests: the log-likelihood of angle θ given shot records
/// (power, hits, shots).
struct ShotRecord {
  std::size_t power = 0;
  std::uint64_t hits = 0;
  std::uint64_t shots = 0;
};
double ae_log_likelihood(double theta, const std::vector<ShotRecord>& records);

/// Exposed for tests: maximise the likelihood over θ ∈ [0, π/2] by dense
/// grid search plus golden-section refinement.
double ae_maximum_likelihood(const std::vector<ShotRecord>& records,
                             std::size_t grid = 20000);

}  // namespace qs
