// Canonical quantum counting via phase estimation (Brassard–Høyer–Mosca–
// Tapp, Theorem 12) — the second, independent realisation of the counting
// subroutine (the first is the MLAE variant in amplitude_estimation.hpp).
//
// The Grover iterate Q(π,π) has eigenvalues e^{±2iθ} with a = sin²θ on the
// 2-plane spanned by A|0⟩. Phase estimation with a t-qubit phase register:
//
//   |0⟩^t |0⟩  →(H^⊗t ⊗ A)→  uniform ⊗ A|0⟩
//            →(Σ_y |y⟩⟨y| ⊗ Q^y)→  phase kickback
//            →(QFT†_2^t ⊗ I)→  measure y,   θ̂ = π·y/2^t,  â = sin²θ̂,
//
// with |â − a| ≤ 2π√(a(1−a))/2^t + π²/4^t with probability ≥ 8/π².
// The controlled-Q^{2^k} fragments run through qsim's ControlledScope and
// query the SAME machine oracles, so controlled queries are charged like
// ordinary ones. Experiment T9 compares this canonical estimator against
// the MLAE variant and the classical baseline.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "distdb/distributed_database.hpp"
#include "sampling/circuit.hpp"

namespace qs {

struct QpeEstimate {
  double a_hat = 0.0;      ///< from the MEDIAN measured phase across shots
  double theta_hat = 0.0;
  std::uint64_t oracle_cost = 0;   ///< sequential queries / parallel rounds
  std::uint64_t d_applications = 0;
  std::size_t phase_bits = 0;
  std::size_t total_shots = 0;
};

/// Run t-bit phase estimation of the Grover iterate on the database's
/// sampling circuit. `shots` independent repetitions; the reported estimate
/// uses the median phase (robust to the QPE tail). Memory grows like
/// 2^t · N · (ν+1) · 2.
QpeEstimate qpe_estimate_good_amplitude(const DistributedDatabase& db,
                                        QueryMode mode,
                                        std::size_t phase_bits,
                                        std::size_t shots, Rng& rng);

/// Counting wrapper: M̂ = â · νN.
double qpe_estimate_total_count(const DistributedDatabase& db, QueryMode mode,
                                std::size_t phase_bits, std::size_t shots,
                                Rng& rng, QpeEstimate* details = nullptr);

}  // namespace qs
