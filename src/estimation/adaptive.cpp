#include "estimation/adaptive.hpp"

#include "common/require.hpp"

namespace qs {

AdaptiveResult run_adaptive_sampler(const DistributedDatabase& db,
                                    const AeSchedule& probe_schedule,
                                    Rng& rng, double emptiness_threshold,
                                    StatePrep prep) {
  QS_REQUIRE(db.total() > 0, "cannot sample from an empty database");

  AdaptiveResult result;
  result.machine_active.resize(db.num_machines(), true);

  // Phase 1 (adaptive): probe each machine's load.
  for (std::size_t j = 0; j < db.num_machines(); ++j) {
    const auto estimate = estimate_machine_count(db, j, probe_schedule, rng);
    result.probe_cost += estimate.amplitude.oracle_cost;
    const bool active = estimate.m_hat > emptiness_threshold;
    result.machine_active[j] = active;
    if (!active && db.machine(j).data().total() > 0) ++result.misclassified;
  }

  // Phase 2: sequential sampling over the active machines only. The public
  // M and ν are unchanged, so when the probes are right the target state
  // and the plan are identical to the oblivious run's.
  std::vector<Dataset> active;
  std::vector<std::uint64_t> kappas;
  for (std::size_t j = 0; j < db.num_machines(); ++j) {
    if (!result.machine_active[j]) continue;
    active.push_back(db.machine(j).data());
    kappas.push_back(db.machine(j).capacity());
  }
  QS_REQUIRE(!active.empty(),
             "adaptive probes judged every machine empty; nothing to sample");
  const DistributedDatabase view(std::move(active), db.nu(),
                                 std::move(kappas));

  SamplerOptions options;
  options.prep = prep;
  result.sampling = run_sequential_sampler(view, options);

  // Fidelity against the TRUE target of the full database — exposes any
  // data dropped by misclassification.
  result.sampling.fidelity =
      pure_fidelity(target_full_state(db), result.sampling.state);
  return result;
}

}  // namespace qs
