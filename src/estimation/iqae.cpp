#include "estimation/iqae.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/require.hpp"
#include "sampling/backend.hpp"

namespace qs {

namespace {

constexpr double kPi = std::numbers::pi;
constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Does the amplified interval [lambda·phi_l, lambda·phi_u] (mod 2π) lie
/// entirely in one half-circle ([0, π] or [π, 2π])?
bool fits_half_circle(double lambda, double phi_l, double phi_u) {
  const double lo = lambda * phi_l;
  const double hi = lambda * phi_u;
  if (hi - lo > kPi) return false;
  const double lo_mod = std::fmod(lo, kTwoPi);
  const double hi_mod = lo_mod + (hi - lo);
  // Same upper half-circle, or same lower half-circle (allowing the wrap
  // into [2π, 3π] which is the upper half again is NOT allowed — require
  // both endpoints within one half interval).
  if (hi_mod <= kPi) return true;                      // upper [0, π]
  if (lo_mod >= kPi && hi_mod <= kTwoPi) return true;  // lower [π, 2π]
  return false;
}

/// Largest odd λ' = 2k'+1 ≥ ratio·λ with λ'·(interval) unambiguous;
/// returns λ (no growth) when none exists.
double find_next_lambda(double lambda, double phi_l, double phi_u,
                        double ratio = 2.0) {
  const double width = phi_u - phi_l;
  if (width <= 0.0) return lambda;
  double lambda_max = kPi / width;
  // Largest odd integer ≤ lambda_max.
  auto k_max = static_cast<std::int64_t>(std::floor((lambda_max - 1.0) / 2.0));
  for (std::int64_t k = k_max; k >= 0; --k) {
    const double candidate = 2.0 * static_cast<double>(k) + 1.0;
    if (candidate < ratio * lambda) break;
    if (fits_half_circle(candidate, phi_l, phi_u)) return candidate;
  }
  return lambda;
}

}  // namespace

IqaeResult iqae_estimate_good_amplitude(const DistributedDatabase& db,
                                        QueryMode mode,
                                        const IqaeOptions& options, Rng& rng,
                                        StatePrep prep) {
  QS_REQUIRE(options.epsilon > 0.0 && options.epsilon < 0.5,
             "epsilon must be in (0, 0.5)");
  QS_REQUIRE(options.alpha > 0.0 && options.alpha < 1.0,
             "alpha must be in (0, 1)");
  QS_REQUIRE(options.shots_per_round > 0, "need shots per round");

  // Hoeffding half-width per round with a union bound over max_rounds.
  const double log_term =
      std::log(2.0 * static_cast<double>(options.max_rounds) / options.alpha);

  IqaeResult result;
  double phi_l = 0.0, phi_u = kPi;  // φ = 2θ ∈ [0, π]
  double lambda = 1.0;              // current odd amplification 2k+1
  // Aggregated shot statistics at the CURRENT lambda.
  std::uint64_t hits = 0, shots = 0;

  const auto run_power = [&](std::size_t k) {
    SingleStateBackend backend(db, prep);
    backend.prep_uniform(false);
    apply_distributing_operator(backend, mode, false);
    for (std::size_t q = 0; q < k; ++q) apply_q_iterate(backend, mode, kPi, kPi);
    const double p_good =
        backend.state().probability_of(backend.registers().flag, 0);
    std::uint64_t h = 0;
    for (std::size_t s = 0; s < options.shots_per_round; ++s)
      h += rng.bernoulli(p_good) ? 1 : 0;
    const std::uint64_t d_per_shot = 1 + 2 * static_cast<std::uint64_t>(k);
    result.d_applications +=
        d_per_shot * options.shots_per_round;
    result.oracle_cost += (mode == QueryMode::kSequential
                               ? d_per_shot * 2 * db.num_machines()
                               : d_per_shot * 4) *
                          options.shots_per_round;
    result.total_shots += options.shots_per_round;
    return h;
  };

  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    ++result.rounds;
    // Adapt the power (reset aggregation when it grows).
    const double next = find_next_lambda(lambda, phi_l, phi_u);
    if (next > lambda) {
      lambda = next;
      hits = 0;
      shots = 0;
    }
    const auto k = static_cast<std::size_t>((lambda - 1.0) / 2.0);
    hits += run_power(k);
    shots += options.shots_per_round;

    // Hoeffding CI on p = P(good at this power) = (1 − cos(λφ))/2.
    const double p_hat =
        static_cast<double>(hits) / static_cast<double>(shots);
    const double half_width =
        std::sqrt(log_term / (2.0 * static_cast<double>(shots)));
    const double p_lo = std::min(std::max(p_hat - half_width, 0.0), 1.0);
    const double p_hi = std::min(std::max(p_hat + half_width, 0.0), 1.0);

    // Invert within the known half-circle. Ω = λφ mod 2π, with the global
    // multiple R = floor(λφ_l / 2π) known from the current interval.
    const double omega_base = lambda * phi_l;
    const double r_mult = std::floor(omega_base / kTwoPi);
    const bool upper_half =
        std::fmod(omega_base, kTwoPi) <= kPi + 1e-12;
    double omega_lo, omega_hi;
    if (upper_half) {
      omega_lo = std::acos(1.0 - 2.0 * p_lo);   // increasing in p
      omega_hi = std::acos(1.0 - 2.0 * p_hi);
    } else {
      omega_lo = kTwoPi - std::acos(1.0 - 2.0 * p_hi);  // decreasing
      omega_hi = kTwoPi - std::acos(1.0 - 2.0 * p_lo);
    }
    double new_l = (kTwoPi * r_mult + omega_lo) / lambda;
    double new_u = (kTwoPi * r_mult + omega_hi) / lambda;
    // Intersect with the running interval (monotone refinement).
    phi_l = std::max(phi_l, new_l);
    phi_u = std::min(phi_u, new_u);
    if (phi_u < phi_l) {
      // Statistical fluke beyond the union bound: re-open minimally.
      const double mid = 0.5 * (phi_l + phi_u);
      phi_l = std::max(0.0, mid - 1e-9);
      phi_u = std::min(kPi, mid + 1e-9);
    }

    // Convert φ-interval to an a-interval: a = (1 − cos φ)/2 (monotone).
    const double a_lo = 0.5 * (1.0 - std::cos(phi_l));
    const double a_hi = 0.5 * (1.0 - std::cos(phi_u));
    if (0.5 * (a_hi - a_lo) <= options.epsilon) {
      result.converged = true;
      break;
    }
  }

  result.a_lo = 0.5 * (1.0 - std::cos(phi_l));
  result.a_hi = 0.5 * (1.0 - std::cos(phi_u));
  result.a_hat = 0.5 * (result.a_lo + result.a_hi);
  return result;
}

IqaeCountResult iqae_estimate_total_count(const DistributedDatabase& db,
                                          QueryMode mode,
                                          const IqaeOptions& options,
                                          Rng& rng) {
  IqaeCountResult count;
  count.amplitude = iqae_estimate_good_amplitude(db, mode, options, rng);
  const double scale = static_cast<double>(db.nu()) *
                       static_cast<double>(db.universe());
  count.m_hat = count.amplitude.a_hat * scale;
  count.m_lo = count.amplitude.a_lo * scale;
  count.m_hi = count.amplitude.a_hi * scale;
  return count;
}

}  // namespace qs
