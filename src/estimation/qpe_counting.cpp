#include "estimation/qpe_counting.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "common/require.hpp"
#include "common/stats.hpp"
#include "qsim/controlled.hpp"
#include "qsim/gates.hpp"
#include "sampling/backend.hpp"

namespace qs {

namespace {

constexpr double kPi = std::numbers::pi;

/// The QPE circuit state: [phase (2^t), elem (N), count (ν+1), flag (2)].
/// D and Q are applied as coordinator unitaries on whatever (sliced) state
/// the controlled scope hands us; the composite counter-shift action is the
/// one proven equal to the Lemma 4.2/4.4 oracle circuits by the test suite,
/// and the cost ledger is computed analytically from the power schedule.
class QpeCircuit {
 public:
  QpeCircuit(const DistributedDatabase& db, std::size_t phase_bits)
      : db_(db), phase_dim_(std::size_t{1} << phase_bits) {
    phase_ = layout_.add("phase", phase_dim_);
    elem_ = layout_.add("elem", db.universe());
    count_ = layout_.add("count",
                         static_cast<std::size_t>(db.nu()) + 1);
    flag_ = layout_.add("flag", 2);
    QS_REQUIRE(layout_.total_dim() <= (std::size_t{1} << 22),
               "QPE instance too large; reduce phase bits or N");

    coordinator_dim_ = layout_.total_dim() / phase_dim_;
    householder_phase_ = uniform_prep_householder_vector(phase_dim_);
    householder_elem_ = uniform_prep_householder_vector(db.universe());
    rotations_ = make_u_rotations(db.nu(), false);
    rotations_adjoint_ = make_u_rotations(db.nu(), true);

    const auto joint = db.joint_counts();
    const std::size_t modulus = layout_.dim(count_);
    shift_fwd_.resize(joint.size());
    shift_bwd_.resize(joint.size());
    for (std::size_t i = 0; i < joint.size(); ++i) {
      shift_fwd_[i] = static_cast<std::size_t>(joint[i]) % modulus;
      shift_bwd_[i] = (modulus - shift_fwd_[i]) % modulus;
    }
  }

  RegisterId phase() const { return phase_; }
  const RegisterLayout& layout() const { return layout_; }

  StateVector prepare() const {
    StateVector state(layout_);
    state.apply_householder(phase_, householder_phase_);  // = H^⊗t
    state.apply_householder(elem_, householder_elem_);    // F
    apply_d(state, false);                                // A = D(F ⊗ I)
    return state;
  }

  void apply_d(StateVector& s, bool adjoint) const {
    s.apply_value_shift(count_, elem_, shift_fwd_);
    const auto& rotations = adjoint ? rotations_adjoint_ : rotations_;
    const auto& layout = layout_;
    const auto count = count_;
    s.apply_conditioned_unitary(
        flag_, [&](std::size_t fiber_base) -> const Matrix* {
          return &rotations[layout.digit(fiber_base, count)];
        });
    s.apply_value_shift(count_, elem_, shift_bwd_);
  }

  /// Q(π, π) restricted to a (possibly sliced) state. All phases act only
  /// on the slice handed in, which is what makes the controlled version
  /// correct.
  void apply_q(StateVector& s) const {
    s.apply_phase_on_register_value(flag_, 0, cplx{-1.0, 0.0});  // S_χ(π)
    apply_d(s, true);
    s.apply_householder(elem_, householder_elem_);
    // S_0(π): coordinator part all-zero (phase register arbitrary).
    const std::size_t coordinator_dim = coordinator_dim_;
    s.apply_diagonal([coordinator_dim](std::size_t x) {
      return x % coordinator_dim == 0 ? cplx{-1.0, 0.0} : cplx{1.0, 0.0};
    });
    s.apply_householder(elem_, householder_elem_);
    apply_d(s, false);
    s.apply_global_phase(cplx{-1.0, 0.0});
  }

 private:
  const DistributedDatabase& db_;
  std::size_t phase_dim_;
  std::size_t coordinator_dim_ = 0;
  RegisterLayout layout_;
  RegisterId phase_, elem_, count_, flag_;
  std::vector<cplx> householder_phase_, householder_elem_;
  std::vector<Matrix> rotations_, rotations_adjoint_;
  std::vector<std::size_t> shift_fwd_, shift_bwd_;
};

}  // namespace

QpeEstimate qpe_estimate_good_amplitude(const DistributedDatabase& db,
                                        QueryMode mode,
                                        std::size_t phase_bits,
                                        std::size_t shots, Rng& rng) {
  QS_REQUIRE(phase_bits >= 1 && phase_bits <= 16, "phase bits out of range");
  QS_REQUIRE(shots >= 1, "need at least one shot");
  const std::size_t phase_dim = std::size_t{1} << phase_bits;

  QpeCircuit circuit(db, phase_bits);
  StateVector state = circuit.prepare();

  // Controlled Grover powers: bit k of the phase register drives Q^{2^k}.
  for (std::size_t k = 0; k < phase_bits; ++k) {
    const std::size_t reps = std::size_t{1} << k;
    apply_controlled_if(
        state, circuit.phase(),
        [k](std::size_t digit) { return (digit >> k) & 1u; },
        [&](StateVector& slice) {
          for (std::size_t r = 0; r < reps; ++r) circuit.apply_q(slice);
        });
  }

  // Inverse Fourier transform on the phase register, then measure.
  state.apply_unitary(circuit.phase(), qft_matrix(phase_dim).adjoint());
  const auto marginal = state.marginal(circuit.phase());
  std::vector<double> cdf(marginal.size());
  double acc = 0.0;
  for (std::size_t y = 0; y < marginal.size(); ++y) {
    acc += marginal[y];
    cdf[y] = acc;
  }

  std::vector<double> thetas;
  thetas.reserve(shots);
  for (std::size_t s = 0; s < shots; ++s) {
    const double u = rng.uniform01() * acc;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const auto y = static_cast<std::size_t>(it - cdf.begin());
    // Eigenphase folding: y and 2^t − y encode ±2θ.
    const std::size_t folded = std::min(y, phase_dim - y);
    thetas.push_back(kPi * static_cast<double>(folded) /
                     static_cast<double>(phase_dim));
  }

  QpeEstimate estimate;
  estimate.phase_bits = phase_bits;
  estimate.total_shots = shots;
  estimate.theta_hat = median(thetas);
  estimate.a_hat = std::sin(estimate.theta_hat) * std::sin(estimate.theta_hat);
  // Physical cost per shot: 1 preparation D + 2 D per Q, with 2^t − 1 Q's.
  const std::uint64_t d_per_shot = 1 + 2 * (phase_dim - 1);
  estimate.d_applications = d_per_shot * shots;
  estimate.oracle_cost =
      (mode == QueryMode::kSequential
           ? d_per_shot * 2 * db.num_machines()
           : d_per_shot * 4) *
      shots;
  return estimate;
}

double qpe_estimate_total_count(const DistributedDatabase& db, QueryMode mode,
                                std::size_t phase_bits, std::size_t shots,
                                Rng& rng, QpeEstimate* details) {
  const auto estimate =
      qpe_estimate_good_amplitude(db, mode, phase_bits, shots, rng);
  if (details != nullptr) *details = estimate;
  return estimate.a_hat * static_cast<double>(db.nu()) *
         static_cast<double>(db.universe());
}

}  // namespace qs
