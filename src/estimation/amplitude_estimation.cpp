#include "estimation/amplitude_estimation.hpp"

#include <cmath>
#include <limits>
#include <numbers>

#include "common/require.hpp"

namespace qs {

AeSchedule exponential_schedule(std::size_t rounds, std::size_t shots) {
  QS_REQUIRE(rounds >= 1, "schedule needs at least one round");
  AeSchedule schedule;
  schedule.shots_per_power = shots;
  schedule.powers.push_back(0);
  std::size_t power = 1;
  for (std::size_t r = 1; r < rounds; ++r) {
    schedule.powers.push_back(power);
    power *= 2;
  }
  return schedule;
}

AeSchedule linear_schedule(std::size_t rounds, std::size_t shots) {
  QS_REQUIRE(rounds >= 1, "schedule needs at least one round");
  AeSchedule schedule;
  schedule.shots_per_power = shots;
  for (std::size_t r = 0; r < rounds; ++r) schedule.powers.push_back(r);
  return schedule;
}

double ae_log_likelihood(double theta,
                         const std::vector<ShotRecord>& records) {
  // Clamp probabilities away from {0,1} so records stay informative even
  // when the true p is exactly 0 or 1 on the grid boundary.
  constexpr double kFloor = 1e-12;
  double ll = 0.0;
  for (const auto& record : records) {
    const double angle =
        (2.0 * static_cast<double>(record.power) + 1.0) * theta;
    double p = std::sin(angle);
    p = p * p;
    p = std::min(std::max(p, kFloor), 1.0 - kFloor);
    ll += static_cast<double>(record.hits) * std::log(p) +
          static_cast<double>(record.shots - record.hits) * std::log(1.0 - p);
  }
  return ll;
}

double ae_maximum_likelihood(const std::vector<ShotRecord>& records,
                             std::size_t grid) {
  QS_REQUIRE(!records.empty(), "no shot records to estimate from");
  QS_REQUIRE(grid >= 8, "grid too coarse");
  constexpr double kHalfPi = std::numbers::pi / 2.0;

  // Dense grid over [0, π/2].
  double best_theta = 0.0;
  double best_ll = -std::numeric_limits<double>::infinity();
  for (std::size_t g = 0; g <= grid; ++g) {
    const double theta =
        kHalfPi * static_cast<double>(g) / static_cast<double>(grid);
    const double ll = ae_log_likelihood(theta, records);
    if (ll > best_ll) {
      best_ll = ll;
      best_theta = theta;
    }
  }

  // Golden-section refinement in the winning grid cell's neighbourhood.
  const double cell = kHalfPi / static_cast<double>(grid);
  double lo = std::max(0.0, best_theta - cell);
  double hi = std::min(kHalfPi, best_theta + cell);
  constexpr double kGolden = 0.6180339887498949;
  for (int iter = 0; iter < 80; ++iter) {
    const double x1 = hi - kGolden * (hi - lo);
    const double x2 = lo + kGolden * (hi - lo);
    if (ae_log_likelihood(x1, records) < ae_log_likelihood(x2, records)) {
      lo = x1;
    } else {
      hi = x2;
    }
  }
  return 0.5 * (lo + hi);
}

namespace {

/// Cost of one shot at Grover power m: (1 + 2m) D applications — one for
/// the preparation A and two per Q iterate.
std::uint64_t d_cost(std::size_t power) {
  return 1 + 2 * static_cast<std::uint64_t>(power);
}

}  // namespace

AmplitudeEstimate estimate_good_amplitude(const DistributedDatabase& db,
                                          QueryMode mode,
                                          const AeSchedule& schedule,
                                          Rng& rng, StatePrep prep) {
  QS_REQUIRE(!schedule.powers.empty(), "empty power schedule");
  QS_REQUIRE(schedule.shots_per_power > 0, "need at least one shot");
  constexpr double kPi = std::numbers::pi;

  std::vector<ShotRecord> records;
  records.reserve(schedule.powers.size());
  AmplitudeEstimate result;

  for (const auto power : schedule.powers) {
    // One exact simulation gives the shot distribution for this power; the
    // physical protocol would run shots_per_power independent circuits, so
    // the cost ledger charges every shot.
    SingleStateBackend backend(db, prep);
    backend.prep_uniform(false);
    apply_distributing_operator(backend, mode, false);
    for (std::size_t q = 0; q < power; ++q)
      apply_q_iterate(backend, mode, kPi, kPi);
    const double p_good =
        backend.state().probability_of(backend.registers().flag, 0);

    std::uint64_t hits = 0;
    for (std::size_t s = 0; s < schedule.shots_per_power; ++s)
      hits += rng.bernoulli(p_good) ? 1 : 0;
    records.push_back({power, hits, schedule.shots_per_power});

    const std::uint64_t per_shot_d = d_cost(power);
    const std::uint64_t per_shot_oracle =
        mode == QueryMode::kSequential
            ? per_shot_d * 2 * db.num_machines()
            : per_shot_d * 4;
    result.d_applications += per_shot_d * schedule.shots_per_power;
    result.oracle_cost += per_shot_oracle * schedule.shots_per_power;
    result.total_shots += schedule.shots_per_power;
  }

  result.theta_hat = ae_maximum_likelihood(records);
  result.a_hat = std::sin(result.theta_hat) * std::sin(result.theta_hat);
  result.std_error = ae_standard_error(result.theta_hat, schedule);
  return result;
}

double ae_standard_error(double theta, const AeSchedule& schedule) {
  QS_REQUIRE(!schedule.powers.empty(), "empty power schedule");
  // Simplification: (dp/dθ)²/(p(1−p)) with p = sin²(αθ) equals
  // α² sin²(2αθ) / (sin²(αθ)cos²(αθ)) = 4α² — EXCEPT at the boundary where
  // p(1−p) → 0 faster than sin²(2αθ); clamp p for numerical sanity.
  double info = 0.0;
  for (const auto power : schedule.powers) {
    const double alpha = 2.0 * static_cast<double>(power) + 1.0;
    const double angle = alpha * theta;
    double p = std::sin(angle) * std::sin(angle);
    p = std::min(std::max(p, 1e-9), 1.0 - 1e-9);
    const double dp = alpha * std::sin(2.0 * angle);
    info += static_cast<double>(schedule.shots_per_power) * dp * dp /
            (p * (1.0 - p));
  }
  if (info <= 0.0) return 1.0;  // no curvature information at all
  const double se_theta = 1.0 / std::sqrt(info);
  return std::abs(std::sin(2.0 * theta)) * se_theta +
         se_theta * se_theta;  // |da/dθ|·SE + curvature correction
}

CountEstimate estimate_total_count(const DistributedDatabase& db,
                                   QueryMode mode, const AeSchedule& schedule,
                                   Rng& rng) {
  CountEstimate estimate;
  estimate.amplitude = estimate_good_amplitude(db, mode, schedule, rng);
  estimate.m_hat = estimate.amplitude.a_hat * static_cast<double>(db.nu()) *
                   static_cast<double>(db.universe());
  return estimate;
}

CountEstimate estimate_machine_count(const DistributedDatabase& db,
                                     std::size_t j,
                                     const AeSchedule& schedule, Rng& rng) {
  QS_REQUIRE(j < db.num_machines(), "machine index out of range");
  // Single-machine view with that machine's own capacity κ_j (at least 1 so
  // the counter register exists even for an empty machine).
  const auto kappa = std::max<std::uint64_t>(db.machine(j).capacity(), 1);
  std::vector<Dataset> view = {db.machine(j).data()};
  const DistributedDatabase local(std::move(view), kappa);

  CountEstimate estimate;
  estimate.amplitude = estimate_good_amplitude(local, QueryMode::kSequential,
                                               schedule, rng);
  estimate.m_hat = estimate.amplitude.a_hat * static_cast<double>(kappa) *
                   static_cast<double>(db.universe());
  return estimate;
}

ClassicalCountEstimate classical_count_estimate(const DistributedDatabase& db,
                                                std::uint64_t probes,
                                                Rng& rng) {
  QS_REQUIRE(probes > 0, "need at least one probe");
  std::uint64_t sum = 0;
  for (std::uint64_t p = 0; p < probes; ++p) {
    const auto j =
        static_cast<std::size_t>(rng.uniform_below(db.num_machines()));
    const auto i = static_cast<std::size_t>(rng.uniform_below(db.universe()));
    sum += db.machine(j).data().count(i);
  }
  ClassicalCountEstimate estimate;
  estimate.probes = probes;
  estimate.m_hat = static_cast<double>(sum) / static_cast<double>(probes) *
                   static_cast<double>(db.num_machines()) *
                   static_cast<double>(db.universe());
  return estimate;
}

}  // namespace qs
