// Iterative quantum amplitude estimation (IQAE) — adaptive counting with
// rigorous confidence intervals.
//
// Third estimator in the counting suite (after MLAE and canonical QPE),
// after Grinko–Gacon–Zoufal–Woerner. It maintains a confidence interval
// for φ = 2θ (where a = sin²θ) and adaptively picks the largest Grover
// power k whose amplified angle (2k+1)·φ still lies in an unambiguous
// half-circle; measuring at that power shrinks the interval by the
// amplification factor. Terminates when the interval implies
// |â − a| ≤ epsilon with confidence ≥ 1 − alpha (Hoeffding + union bound).
//
// Contrast with the siblings:
//   * MLAE — fixed schedule, point estimate + Fisher error bar;
//   * QPE  — fixed phase register, resolution 2^-t, needs controlled-Q;
//   * IQAE — ADAPTIVE schedule (hence non-oblivious), but comes with an
//     honest finite-sample confidence interval and near-Heisenberg cost
//     O((1/ε)·log(1/α)).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "distdb/distributed_database.hpp"
#include "sampling/circuit.hpp"

namespace qs {

struct IqaeOptions {
  double epsilon = 0.005;  ///< target half-width on a
  double alpha = 0.05;     ///< confidence 1 − alpha
  std::size_t shots_per_round = 64;
  std::size_t max_rounds = 64;  ///< safety cap
};

struct IqaeResult {
  double a_hat = 0.0;
  double a_lo = 0.0;   ///< confidence interval on a
  double a_hi = 1.0;
  bool converged = false;  ///< interval reached epsilon within max_rounds
  std::size_t rounds = 0;
  std::uint64_t oracle_cost = 0;   ///< sequential queries / parallel rounds
  std::uint64_t d_applications = 0;
  std::size_t total_shots = 0;
};

/// Estimate a = M/(νN) for the database with the IQAE loop.
IqaeResult iqae_estimate_good_amplitude(const DistributedDatabase& db,
                                        QueryMode mode,
                                        const IqaeOptions& options, Rng& rng,
                                        StatePrep prep = StatePrep::kHouseholder);

/// Counting wrapper: interval and point estimate for M = a·νN.
struct IqaeCountResult {
  double m_hat = 0.0;
  double m_lo = 0.0;
  double m_hi = 0.0;
  IqaeResult amplitude;
};
IqaeCountResult iqae_estimate_total_count(const DistributedDatabase& db,
                                          QueryMode mode,
                                          const IqaeOptions& options,
                                          Rng& rng);

}  // namespace qs
