#include "sampling/fixed_point.hpp"

#include <cmath>
#include <numbers>

#include "common/require.hpp"

namespace qs {

namespace {

constexpr double kThird = std::numbers::pi / 3.0;

/// Apply V_m (or V_m†) recursively through the backend.
///   V_0     = A = D (F ⊗ I)
///   V_{m+1} = V_m S_0(π/3) V_m† S_good(π/3) V_m
void apply_v(SamplingBackend& backend, QueryMode mode, std::size_t m,
             bool adjoint) {
  if (m == 0) {
    if (!adjoint) {
      backend.prep_uniform(false);
      apply_distributing_operator(backend, mode, false);
    } else {
      apply_distributing_operator(backend, mode, true);
      backend.prep_uniform(true);
    }
    return;
  }
  if (!adjoint) {
    apply_v(backend, mode, m - 1, false);
    backend.phase_good(kThird);
    apply_v(backend, mode, m - 1, true);
    backend.phase_initial(kThird);
    apply_v(backend, mode, m - 1, false);
  } else {
    apply_v(backend, mode, m - 1, true);
    backend.phase_initial(-kThird);
    apply_v(backend, mode, m - 1, false);
    backend.phase_good(-kThird);
    apply_v(backend, mode, m - 1, true);
  }
}

}  // namespace

std::size_t fixed_point_levels_for(double a_floor, double delta) {
  QS_REQUIRE(a_floor > 0.0 && a_floor <= 1.0, "a_floor must be in (0, 1]");
  QS_REQUIRE(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
  const double eps0 = 1.0 - a_floor;
  if (eps0 <= 0.0) return 0;
  // Smallest m with eps0^(3^m) <= delta  ⇔  3^m >= ln δ / ln ε₀.
  const double needed = std::log(delta) / std::log(eps0);
  std::size_t levels = 0;
  double reach = 1.0;
  while (reach < needed && levels < 40) {
    reach *= 3.0;
    ++levels;
  }
  return levels;
}

FixedPointResult run_fixed_point_sampler(const DistributedDatabase& db,
                                         QueryMode mode, std::size_t levels,
                                         StatePrep prep) {
  QS_REQUIRE(db.total() > 0, "cannot sample from an empty database");
  QS_REQUIRE(levels <= 12, "3^levels D applications — keep levels modest");

  db.reset_stats();
  SingleStateBackend backend(db, prep);
  apply_v(backend, mode, levels, /*adjoint=*/false);

  FixedPointResult result{std::move(backend.state()), backend.registers(),
                          db.stats(), levels, 0.0, 0.0};
  result.fidelity = pure_fidelity(target_full_state(db), result.state);
  const double a = static_cast<double>(db.total()) /
                   (static_cast<double>(db.nu()) *
                    static_cast<double>(db.universe()));
  result.predicted_error =
      std::pow(1.0 - a, std::pow(3.0, static_cast<double>(levels)));
  return result;
}

}  // namespace qs
