// Telemetry decorator for sampling backends.
//
// Wraps any SamplingBackend and reports every schedule operation to the
// telemetry layer (src/telemetry) without touching the circuit semantics:
//
//   * spans — one per operation, named "schedule.<op>" and tagged with the
//     ordinal `event` of the oracle/round in the run's Transcript. This is
//     the same index analysis::lift_transcript / lift_compiled attach to
//     their micro-ops (ProtocolOp::event), so a Perfetto trace of a run
//     lines up one-to-one with dqs-verify diagnostics and with
//     for_each_schedule_event order;
//   * counters — the telemetry mirror of the QueryStats ledger:
//     sampling.oracle.sequential, sampling.oracle.machine.<j>,
//     sampling.parallel_rounds, sampling.oracle.adjoint. The
//     telemetry ⇄ ledger invariant test asserts these equal both
//     db.stats() and stats_of(transcript) exactly;
//   * a duration histogram sampling.oracle.ns over individual queries.
//
// run_sequential_sampler / run_parallel_sampler route through this
// decorator unconditionally; with telemetry globally off every hook is a
// relaxed load + branch (the ≤2% disabled-overhead budget, gated in CI).
#pragma once

#include <vector>

#include "sampling/backend.hpp"
#include "telemetry/trace.hpp"

namespace qs {

class TelemetryBackend final : public SamplingBackend {
 public:
  /// Does not own `inner`; it must outlive the decorator.
  explicit TelemetryBackend(SamplingBackend& inner);

  std::size_t num_machines() const override;
  void prep_uniform(bool adjoint) override;
  void phase_good(double phi) override;
  void phase_initial(double phi) override;
  void rotation_u(bool adjoint) override;
  void oracle(std::size_t j, bool adjoint) override;
  void parallel_total_shift(bool adjoint) override;
  void global_phase(double angle) override;

  /// Oracle/round events reported so far — the next event's index.
  std::uint64_t next_event_index() const noexcept { return event_index_; }

 private:
  SamplingBackend& inner_;
  std::uint64_t event_index_ = 0;
  telemetry::Counter& sequential_total_;
  telemetry::Counter& parallel_rounds_;
  telemetry::Counter& adjoint_calls_;
  telemetry::Histogram& oracle_ns_;
  std::vector<telemetry::Counter*> per_machine_;
};

}  // namespace qs
