// Fixed-point sampling — Grover's π/3 recursion on the distributed oracle.
//
// Zero-error amplitude amplification (Theorems 4.3/4.5) needs the EXACT
// good probability a = M/(νN), i.e. public M. The BBHT sampler
// (unknown_m.hpp) drops that assumption at the cost of mid-circuit
// measurements and a data-dependent (hence non-oblivious) run length. The
// π/3 fixed-point recursion [Grover 2005] is the third point in the design
// space: define V_0 = A and
//
//   V_{m+1} = V_m S_0(π/3) V_m† S_good(π/3) V_m ,
//
// where both phase oracles rotate by e^{iπ/3}. If V_m|0⟩ has bad
// probability ε, V_{m+1}|0⟩ has bad probability ε³ — MONOTONE convergence
// to the target for ANY a > 0, with no measurement, no knowledge of M, and
// a completely data-independent schedule (oblivious!). The price is the
// query count: 3^m applications of D reach failure ε₀^(3^m) with
// ε₀ = 1 − a, i.e. cost Θ((1/a)·log(1/δ)) — quadratically worse than the
// Grover-scaling samplers. Experiment F10 puts all three on one table.
#pragma once

#include <cstdint>

#include "sampling/samplers.hpp"

namespace qs {

struct FixedPointResult {
  StateVector state;
  CoordinatorLayout registers;
  QueryStats stats;
  std::size_t levels = 0;
  double fidelity = 0.0;
  /// 1 − fidelity predicted by the cubing recursion, (1 − a)^(3^levels).
  double predicted_error = 0.0;
};

/// Run the π/3 recursion to depth `levels` (D-cost 3^levels). Requires a
/// non-empty database (any M > 0 works; M's value is never used).
FixedPointResult run_fixed_point_sampler(const DistributedDatabase& db,
                                         QueryMode mode, std::size_t levels,
                                         StatePrep prep = StatePrep::kHouseholder);

/// Levels needed so (1 − a_floor)^(3^levels) ≤ delta, given only a LOWER
/// bound on the good probability (e.g. "at least one record exists":
/// a_floor = 1/(νN)).
std::size_t fixed_point_levels_for(double a_floor, double delta);

}  // namespace qs
