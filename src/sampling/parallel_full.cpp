#include "sampling/parallel_full.hpp"

#include <string>

#include "common/require.hpp"

namespace qs {

ParallelFullCircuit::ParallelFullCircuit(const DistributedDatabase& db)
    : db_(db) {
  const std::size_t universe = db.universe();
  const std::size_t counter_dim = static_cast<std::size_t>(db.nu()) + 1;
  const std::size_t n = db.num_machines();

  elem_ = layout_.add("elem", universe);
  count_ = layout_.add("count", counter_dim);
  flag_ = layout_.add("flag", 2);
  for (std::size_t j = 0; j < n; ++j)
    anc_elem_.push_back(layout_.add("anc_elem" + std::to_string(j), universe));
  for (std::size_t j = 0; j < n; ++j)
    anc_count_.push_back(
        layout_.add("anc_count" + std::to_string(j), counter_dim));
  for (std::size_t j = 0; j < n; ++j)
    anc_flag_.push_back(layout_.add("anc_flag" + std::to_string(j), 2));

  QS_REQUIRE(layout_.total_dim() <= (1u << 22),
             "full parallel circuit is exponential in n; use a smaller "
             "validation instance");

  u_rotations_ = make_u_rotations(db.nu(), /*adjoint=*/false);
  u_rotations_adjoint_ = make_u_rotations(db.nu(), /*adjoint=*/true);
}

void ParallelFullCircuit::apply_copy(StateVector& state, bool adjoint) const {
  // |i⟩|a_j⟩ → |i⟩|a_j ± i mod N⟩ per ancilla element register: a
  // conditioned cyclic shift where the shift amount IS the element value.
  const std::size_t universe = layout_.dim(elem_);
  std::vector<std::size_t> shifts(universe);
  for (std::size_t i = 0; i < universe; ++i)
    shifts[i] = adjoint ? (universe - i) % universe : i;
  for (const auto a : anc_elem_) {
    state.apply_value_shift(a, elem_, shifts);
  }
}

void ParallelFullCircuit::apply_set_controls(StateVector& state) const {
  // X on each control flag: a value shift by 1 on a dim-2 register,
  // conditioned trivially (shift independent of the condition digit).
  const std::vector<std::size_t> ones(layout_.dim(elem_), 1);
  for (const auto b : anc_flag_) {
    state.apply_value_shift(b, elem_, ones);
  }
}

void ParallelFullCircuit::apply_parallel_oracle(StateVector& state,
                                                bool adjoint) const {
  for (std::size_t j = 0; j < db_.num_machines(); ++j) {
    db_.machine(j).apply_controlled_oracle(state, anc_elem_[j], anc_count_[j],
                                           anc_flag_[j], adjoint);
    // Individual Ô_j applications inside a round are not sequential
    // queries; the round is charged once on the database below.
    db_.machine(j).discount_last_query();
  }
  db_.count_parallel_round();
}

void ParallelFullCircuit::apply_adder(StateVector& state, bool adjoint) const {
  // count ← count ± Σ_j anc_count[j] (mod ν+1). A pure coordinator-side
  // permutation (no data dependence).
  const std::size_t counter_dim = layout_.dim(count_);
  const auto& layout = layout_;
  const auto& anc = anc_count_;
  const auto count = count_;
  state.apply_permutation([&, adjoint](std::size_t x) {
    std::size_t sum = 0;
    for (const auto a : anc) sum += layout.digit(x, a);
    sum %= counter_dim;
    const std::size_t s = layout.digit(x, count);
    const std::size_t target = adjoint
                                   ? (s + counter_dim - sum) % counter_dim
                                   : (s + sum) % counter_dim;
    return layout.with_digit(x, count, target);
  });
}

void ParallelFullCircuit::apply_total_shift(StateVector& state,
                                            bool adjoint) const {
  // Lemma 4.4, first (or third) step: 2 parallel rounds.
  apply_copy(state, /*adjoint=*/false);
  apply_set_controls(state);
  apply_parallel_oracle(state, /*adjoint=*/false);
  apply_adder(state, adjoint);
  apply_parallel_oracle(state, /*adjoint=*/true);
  apply_set_controls(state);
  apply_copy(state, /*adjoint=*/true);
}

void ParallelFullCircuit::apply_distributing(StateVector& state,
                                             bool adjoint) const {
  apply_total_shift(state, /*adjoint=*/false);
  const auto& rotations = adjoint ? u_rotations_adjoint_ : u_rotations_;
  const auto& layout = layout_;
  const auto count = count_;
  state.apply_conditioned_unitary(
      flag_, [&](std::size_t fiber_base) -> const Matrix* {
        return &rotations[layout.digit(fiber_base, count)];
      });
  apply_total_shift(state, /*adjoint=*/true);
}

}  // namespace qs
