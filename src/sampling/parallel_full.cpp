#include "sampling/parallel_full.hpp"

#include <string>

#include "common/require.hpp"

namespace qs {

ParallelFullCircuit::ParallelFullCircuit(const DistributedDatabase& db)
    : db_(db) {
  const std::size_t universe = db.universe();
  const std::size_t counter_dim = static_cast<std::size_t>(db.nu()) + 1;
  const std::size_t n = db.num_machines();

  elem_ = layout_.add("elem", universe);
  count_ = layout_.add("count", counter_dim);
  flag_ = layout_.add("flag", 2);
  for (std::size_t j = 0; j < n; ++j)
    anc_elem_.push_back(layout_.add("anc_elem" + std::to_string(j), universe));
  for (std::size_t j = 0; j < n; ++j)
    anc_count_.push_back(
        layout_.add("anc_count" + std::to_string(j), counter_dim));
  for (std::size_t j = 0; j < n; ++j)
    anc_flag_.push_back(layout_.add("anc_flag" + std::to_string(j), 2));

  QS_REQUIRE(layout_.total_dim() <= (1u << 22),
             "full parallel circuit is exponential in n; use a smaller "
             "validation instance");

  u_rotations_ = make_u_rotations(db.nu(), /*adjoint=*/false);
  u_rotations_adjoint_ = make_u_rotations(db.nu(), /*adjoint=*/true);

  // Compile the coordinator-side moves once (see the header comment).
  //
  // copy: |i⟩|a_j⟩ → |i⟩|a_j ± i mod N⟩ per ancilla element register — a
  // conditioned cyclic shift whose shift amount IS the element value.
  std::vector<std::size_t> copy_fwd(universe), copy_adj(universe);
  for (std::size_t i = 0; i < universe; ++i) {
    copy_fwd[i] = i;
    copy_adj[i] = (universe - i) % universe;
  }
  // set_controls: X on each control flag — a shift by 1 independent of the
  // (trivial) condition digit.
  const std::vector<std::size_t> ones(universe, 1);

  for (const auto a : anc_elem_)
    pre_shift_.push(CompiledOp::value_shift(layout_, a, elem_, copy_fwd)
                        .lowered_to_permutation());
  for (const auto b : anc_flag_)
    pre_shift_.push(CompiledOp::value_shift(layout_, b, elem_, ones)
                        .lowered_to_permutation());
  pre_shift_.fuse();

  for (const auto b : anc_flag_)
    post_shift_.push(CompiledOp::value_shift(layout_, b, elem_, ones)
                         .lowered_to_permutation());
  for (const auto a : anc_elem_)
    post_shift_.push(CompiledOp::value_shift(layout_, a, elem_, copy_adj)
                         .lowered_to_permutation());
  post_shift_.fuse();

  // adder: count ← count ± Σ_j anc_count[j] (mod ν+1) — a pure coordinator
  // permutation with no data dependence.
  const auto& layout = layout_;
  const auto& anc = anc_count_;
  const auto count = count_;
  for (const bool adjoint : {false, true}) {
    auto& program = adjoint ? adder_adj_ : adder_fwd_;
    program.push(CompiledOp::permutation(layout_, [&, adjoint](std::size_t x) {
      std::size_t sum = 0;
      for (const auto a : anc) sum += layout.digit(x, a);
      sum %= counter_dim;
      const std::size_t s = layout.digit(x, count);
      const std::size_t target = adjoint
                                     ? (s + counter_dim - sum) % counter_dim
                                     : (s + sum) % counter_dim;
      return layout.with_digit(x, count, target);
    }));
  }

  for (const bool adjoint : {false, true}) {
    auto& program = adjoint ? u_adj_ : u_fwd_;
    const auto& rotations = adjoint ? u_rotations_adjoint_ : u_rotations_;
    program.push(CompiledOp::fiber_dense(
        layout_, flag_, [&](std::size_t fiber_base) -> const Matrix* {
          return &rotations[layout.digit(fiber_base, count)];
        }));
  }
}

void ParallelFullCircuit::apply_parallel_oracle(StateVector& state,
                                                bool adjoint) const {
  for (std::size_t j = 0; j < db_.num_machines(); ++j) {
    db_.machine(j).apply_controlled_oracle(state, anc_elem_[j], anc_count_[j],
                                           anc_flag_[j], adjoint);
    // Individual Ô_j applications inside a round are not sequential
    // queries; the round is charged once on the database below.
    db_.machine(j).discount_last_query();
  }
  db_.count_parallel_round();
}

void ParallelFullCircuit::apply_total_shift(StateVector& state,
                                            bool adjoint) const {
  // Lemma 4.4, first (or third) step: 2 parallel rounds. The copy/control
  // bookkeeping on either side replays precompiled fused tables.
  pre_shift_.apply_to(state);
  apply_parallel_oracle(state, /*adjoint=*/false);
  (adjoint ? adder_adj_ : adder_fwd_).apply_to(state);
  apply_parallel_oracle(state, /*adjoint=*/true);
  post_shift_.apply_to(state);
}

void ParallelFullCircuit::apply_distributing(StateVector& state,
                                             bool adjoint) const {
  apply_total_shift(state, /*adjoint=*/false);
  (adjoint ? u_adj_ : u_fwd_).apply_to(state);
  apply_total_shift(state, /*adjoint=*/true);
}

}  // namespace qs
