// Samplers under noise — the fault-tolerance experiment (F6).
//
// A NoisyBackend wraps the production backend and injects a NoiseModel
// after every oracle interaction: dephasing on the element register,
// depolarizing on the flag, and (optionally) corrupted oracle answers.
// Because noise strikes PER ROUND, the two query models inherit different
// exposure: the sequential sampler suffers ~n times more noisy rounds than
// the parallel one for the same instance, so its fidelity decays ~n times
// faster in the per-round noise rate — a quantitative version of the
// paper's motivation for minimising (round) complexity.
//
// Runs are stochastic trajectories; run_noisy_sampler reports the mean and
// spread of the output fidelity over `trajectories` repetitions.
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "qsim/noise.hpp"
#include "sampling/samplers.hpp"

namespace qs {

/// Production backend + per-round trajectory noise.
class NoisyBackend final : public SamplingBackend {
 public:
  NoisyBackend(const DistributedDatabase& db, StatePrep prep,
               const NoiseModel& noise, Rng& rng);

  std::size_t num_machines() const override;
  void prep_uniform(bool adjoint) override;
  void phase_good(double phi) override;
  void phase_initial(double phi) override;
  void rotation_u(bool adjoint) override;
  void oracle(std::size_t j, bool adjoint) override;
  void parallel_total_shift(bool adjoint) override;
  void global_phase(double angle) override;

  const StateVector& state() const { return inner_.state(); }
  const CoordinatorLayout& registers() const { return inner_.registers(); }

 private:
  void inject_round_noise();
  void inject_transport_noise(double probability);

  SingleStateBackend inner_;
  const DistributedDatabase& db_;
  NoiseModel noise_;
  Rng& rng_;
  /// Precomputed per-interaction transport-dephasing probabilities
  /// (1 − (1−p)^trips) for the per-qubit-trip regime.
  double transport_p_sequential_ = 0.0;
  double transport_p_parallel_ = 0.0;
};

struct NoisyRunResult {
  double mean_fidelity = 0.0;
  double stddev_fidelity = 0.0;
  double min_fidelity = 0.0;
  std::size_t trajectories = 0;
  std::uint64_t noisy_rounds_per_trajectory = 0;  ///< noise injections/run
};

/// Run `trajectories` independent noisy executions of the sampler and
/// report the fidelity statistics against the ideal target.
NoisyRunResult run_noisy_sampler(const DistributedDatabase& db,
                                 QueryMode mode, const NoiseModel& noise,
                                 std::size_t trajectories, Rng& rng,
                                 StatePrep prep = StatePrep::kHouseholder);

}  // namespace qs
