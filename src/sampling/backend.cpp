#include "sampling/backend.hpp"

#include <cmath>

#include "common/require.hpp"
#include "qsim/gates.hpp"
#include "sampling/fault_seam.hpp"
#include "telemetry/metrics.hpp"

namespace qs {

CoordinatorLayout make_coordinator_layout(std::size_t universe,
                                          std::uint64_t nu) {
  QS_REQUIRE(universe >= 1, "universe must be non-empty");
  QS_REQUIRE(nu >= 1, "capacity ν must be at least 1");
  CoordinatorLayout regs;
  regs.elem = regs.layout.add("elem", universe);
  regs.count = regs.layout.add("count", static_cast<std::size_t>(nu) + 1);
  regs.flag = regs.layout.add("flag", 2);
  return regs;
}

std::vector<Matrix> make_u_rotations(std::uint64_t nu, bool adjoint) {
  // R_c is the real rotation with cos γ_c = √(c/ν); Eq. (6) fixes its
  // action on |0⟩ and the unitary completion on |1⟩ is the standard one.
  std::vector<Matrix> rotations;
  rotations.reserve(static_cast<std::size_t>(nu) + 1);
  for (std::uint64_t c = 0; c <= nu; ++c) {
    const double cos_g = std::sqrt(static_cast<double>(c) /
                                   static_cast<double>(nu));
    const double gamma = std::acos(std::min(cos_g, 1.0));
    rotations.push_back(rotation_matrix(adjoint ? -gamma : gamma));
  }
  return rotations;
}

namespace {

/// Lower the count-controlled rotation 𝒰 of Eq. (6) to fiber-dense compiled
/// form: one 2×2 per counter value, selected per flag fiber. Data-
/// independent, so compiling at backend construction costs one pass over
/// the fibers and every application afterwards is an unrolled table walk.
CompiledOp compile_u_rotation(const CoordinatorLayout& regs,
                              const RegisterLayout& layout,
                              const std::vector<Matrix>& rotations) {
  return CompiledOp::fiber_dense(
      layout, regs.flag, [&](std::size_t fiber_base) -> const Matrix* {
        return &rotations[layout.digit(fiber_base, regs.count)];
      });
}

}  // namespace

SingleStateBackend::SingleStateBackend(const DistributedDatabase& db,
                                       StatePrep prep, Transcript* transcript,
                                       OracleObserver observer,
                                       const StateBackendConfig& backend,
                                       ipc::OracleChannel* channel)
    : db_(db),
      prep_(prep),
      transcript_(transcript),
      observer_(std::move(observer)),
      channel_(channel),
      regs_(make_coordinator_layout(db.universe(), db.nu())),
      state_(regs_.layout, backend),
      householder_v_(uniform_prep_householder_vector(db.universe())),
      u_rotations_(make_u_rotations(db.nu(), /*adjoint=*/false)),
      u_rotations_adjoint_(make_u_rotations(db.nu(), /*adjoint=*/true)),
      u_compiled_(compile_u_rotation(regs_, state_.layout(), u_rotations_)),
      u_compiled_adjoint_(
          compile_u_rotation(regs_, state_.layout(), u_rotations_adjoint_)) {
  if (prep_ == StatePrep::kQft) qft_ = qft_matrix(db.universe());
}

std::size_t SingleStateBackend::num_machines() const {
  return db_.num_machines();
}

void SingleStateBackend::prep_uniform(bool adjoint) {
  if (prep_ == StatePrep::kHouseholder) {
    // The Householder reflection is self-adjoint; F = F†.
    state_.apply_householder(regs_.elem, householder_v_);
  } else {
    state_.apply_unitary(regs_.elem, adjoint ? qft_.adjoint() : qft_);
  }
}

void SingleStateBackend::phase_good(double phi) {
  state_.apply_phase_on_register_value(regs_.flag, 0,
                                       cplx{std::cos(phi), std::sin(phi)});
}

void SingleStateBackend::phase_initial(double phi) {
  state_.apply_phase_on_basis_state(0, cplx{std::cos(phi), std::sin(phi)});
}

void SingleStateBackend::rotation_u(bool adjoint) {
  (adjoint ? u_compiled_adjoint_ : u_compiled_).apply_to(state_);
}

const std::vector<std::size_t>& SingleStateBackend::total_shift(
    bool adjoint) const {
  static auto& t_hits = telemetry::counter("sampling.total_shift.cache.hit");
  static auto& t_compiles =
      telemetry::counter("sampling.total_shift.cache.compile");
  const std::uint64_t version = db_.version();
  if (shift_valid_ && shift_version_ == version) {
    t_hits.add();
    return adjoint ? shift_adjoint_ : shift_forward_;
  }
  const std::size_t modulus = state_.layout().dim(regs_.count);
  const auto joint = db_.joint_counts();
  shift_forward_.resize(joint.size());
  shift_adjoint_.resize(joint.size());
  for (std::size_t i = 0; i < joint.size(); ++i) {
    const std::size_t c = static_cast<std::size_t>(joint[i]) % modulus;
    shift_forward_[i] = c;
    shift_adjoint_[i] = (modulus - c) % modulus;
  }
  shift_version_ = version;
  shift_valid_ = true;
  t_compiles.add();
  return adjoint ? shift_adjoint_ : shift_forward_;
}

void SingleStateBackend::oracle(std::size_t j, bool adjoint) {
  // Fault seam (fault_seam.hpp): a recovery replayer may substitute the
  // recovered-schedule machine for this slot. Disabled cost: one relaxed
  // load + untaken branch, gated by dqs_trace --overhead --fault-baseline.
  if (OracleInterposer* seam = oracle_interposer(); seam != nullptr) {
    j = seam->on_sequential(j, adjoint);
  }
  if (channel_ != nullptr) {
    // Remote transport: the worker applies the identical permutation and the
    // query ledger charges machine j exactly as the in-process path does.
    channel_->apply_sequential(j, adjoint, state_, regs_.elem, regs_.count);
    db_.machine(j).count_remote_query();
  } else {
    db_.machine(j).apply_oracle(state_, regs_.elem, regs_.count, adjoint);
  }
  if (transcript_ != nullptr) transcript_->record_sequential(j, adjoint);
  if (observer_) observer_(j, adjoint);
}

void SingleStateBackend::parallel_total_shift(bool adjoint) {
  // Net effect of Lemma 4.4's first (adjoint: third) step. The counter
  // register has dimension ν+1 ≥ c_i + 1, so the modular addition below is
  // the exact composite of the two parallel oracle rounds. The shift table
  // comes from the version-keyed cache: one joint-count aggregation per
  // database state, however many AA iterations replay it.
  if (channel_ != nullptr) {
    // Remote transport: n per-machine modular adds compose exactly to the
    // joint shift (the oracles commute and involve no floating point), so
    // this is bit-identical to the cached joint-count table below.
    channel_->apply_total_shift(adjoint, state_, regs_.elem, regs_.count);
  } else {
    state_.apply_value_shift(regs_.count, regs_.elem, total_shift(adjoint));
  }
  // Lemma 4.4: each direction costs one O and one O† round.
  for (const bool round_adjoint : {false, true}) {
    if (OracleInterposer* seam = oracle_interposer(); seam != nullptr) {
      seam->on_parallel_round(round_adjoint);
    }
    db_.count_parallel_round();
    if (transcript_ != nullptr)
      transcript_->record_parallel_round(round_adjoint);
    if (observer_) observer_(std::nullopt, round_adjoint);
  }
}

void SingleStateBackend::global_phase(double angle) {
  state_.apply_global_phase(cplx{std::cos(angle), std::sin(angle)});
}

}  // namespace qs
