// Zero-error amplitude amplification (Brassard–Høyer–Mosca–Tapp, Theorem 4),
// as used by Theorems 4.3 and 4.5 of the paper.
//
// Setting: a preparation operator A with A|0⟩ = sinθ|good⟩ + cosθ|bad⟩ and a
// KNOWN good amplitude sinθ = √a (here a = M/(νN), Eq. 7). The generalised
// Grover iterate
//
//   Q(φ, ϕ) = −A S_0(ϕ) A† S_χ(φ)
//
// rotates within span{good, bad}. Applying Q(π, π) exactly ⌊m̃⌋ times with
// m̃ = π/(4θ) − 1/2 brings the good amplitude to sin((2⌊m̃⌋+1)θ) ∈
// [cos 2θ, 1]; one final Q(φ, ϕ) with angles solving the paper's equation
//
//   cot((2⌊m̃⌋+1)θ) = e^{iφ} sin(2θ) (−cos(2θ) + i·cot(ϕ/2))^{−1}
//
// lands on |good⟩ EXACTLY (up to global phase). plan_zero_error() solves
// that equation in closed form and then verifies the plan by evolving the
// exact 2×2 reduced dynamics, so a planning bug can never silently degrade
// the sampler's zero-error guarantee.
#pragma once

#include <complex>
#include <cstddef>

namespace qs {

struct AAPlan {
  double a = 0.0;       ///< known good probability, a = sin²θ
  double theta = 0.0;   ///< θ = arcsin √a
  /// Number of Q(π, π) iterations (⌊m̃⌋).
  std::size_t full_iterations = 0;
  /// Whether the final corrected iterate Q(final_varphi, final_phi) runs.
  bool needs_final = false;
  double final_varphi = 0.0;  ///< φ — phase of S_χ in the last iterate
  double final_phi = 0.0;     ///< ϕ — phase of S_0 in the last iterate
  /// True when A|0⟩ is already |good⟩ (a == 1): no iterations at all.
  bool already_exact = false;

  /// Total applications of A or A† (1 for the preparation + 2 per iterate);
  /// each is one application of the distributing operator D.
  std::size_t d_applications() const {
    if (already_exact) return 1;
    return 1 + 2 * (full_iterations + (needs_final ? 1u : 0u));
  }
};

/// Build and verify the zero-error plan for good probability a ∈ (0, 1].
/// Throws if a is outside (0, 1] or if the verified residual bad amplitude
/// exceeds 1e-9 (which would indicate a planner bug, not an input problem).
AAPlan plan_zero_error(double a);

/// Exact reduced 2×2 dynamics: starting from (sinθ, cosθ), apply
/// `plan.full_iterations` Q(π,π) iterates and, if planned, the final
/// corrected iterate. Returns the final (good, bad) amplitude pair.
/// Exposed for tests and for the F4 trajectory bench.
std::pair<std::complex<double>, std::complex<double>> evolve_two_level(
    const AAPlan& plan);

/// One Q(φ,ϕ) step of the reduced dynamics from an arbitrary (good, bad).
std::pair<std::complex<double>, std::complex<double>> q_step_two_level(
    std::complex<double> good, std::complex<double> bad, double theta,
    double varphi, double phi);

/// The plain (not zero-error) iteration count ⌊π/(4θ)⌋ used by textbook
/// amplitude amplification; success probability sin²((2m+1)θ) < 1 in
/// general. Used by the F4 bench to contrast with the zero-error variant.
std::size_t plain_iteration_count(double a);

}  // namespace qs
