// Sampling WITHOUT knowing M — the Boyer–Brassard–Høyer–Tapp exponential
// search (the paper's reference [8]) adapted to distributed sampling.
//
// Theorems 4.3/4.5 assume M is public because the zero-error plan needs
// θ = arcsin√(M/νN). When M is unknown, the BBHT schedule removes the
// assumption at the cost of randomisation: repeatedly pick an iteration
// count j uniformly below a growing bound m (m ← min(λm, √(νN)), λ = 6/5),
// run j plain Grover iterates, and MEASURE the flag register. On outcome
// "good" the coordinator's state collapses EXACTLY onto |ψ, 0, 0⟩ — the
// same zero-error output — because Q's dynamics never leave the 2-plane
// spanned by |ψ,0,0⟩ and the flag-1 bad state. The expected total cost is
// O(√(νN/M)) D-applications, matching the known-M bound up to a constant.
//
// This needs a mid-circuit measurement; in the distributed-model
// discussion (Section 3) the paper notes deferred measurement covers the
// coordinator's own measurements, and here the measurement is local to the
// coordinator (flag register only).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "sampling/samplers.hpp"

namespace qs {

struct UnknownMResult {
  StateVector state;            ///< exactly |ψ, 0, 0⟩ on success
  CoordinatorLayout registers;
  QueryStats stats;             ///< accumulated over ALL attempts
  std::size_t attempts = 0;     ///< circuit restarts until the good outcome
  double fidelity = 0.0;
};

/// Run the unknown-M sampler. Throws after `max_attempts` consecutive
/// failures (an empty database can never succeed — with data present the
/// failure probability decays geometrically).
UnknownMResult run_unknown_m_sampler(const DistributedDatabase& db,
                                     QueryMode mode, Rng& rng,
                                     StatePrep prep = StatePrep::kHouseholder,
                                     std::size_t max_attempts = 200);

}  // namespace qs
