#include "sampling/samplers.hpp"

#include <cmath>

#include "common/require.hpp"
#include "sampling/traced_backend.hpp"

namespace qs {

std::vector<cplx> SamplerResult::output_amplitudes() const {
  const auto& layout = state.layout();
  const std::size_t universe = layout.dim(registers.elem);
  std::vector<cplx> amps(universe);
  std::vector<std::size_t> digits(3, 0);
  for (std::size_t i = 0; i < universe; ++i) {
    digits[registers.elem.value] = i;
    amps[i] = state.amplitude(layout.index_of(digits));
  }
  return amps;
}

StateVector target_full_state(const DistributedDatabase& db,
                              const StateBackendConfig& backend) {
  const auto regs = make_coordinator_layout(db.universe(), db.nu());
  StateVector target(regs.layout, backend);
  const auto target_amps = db.target_amplitudes();
  std::vector<std::size_t> digits(3, 0);
  if (target.is_sparse()) {
    // Build the ≤ N nonzeros directly; an O(dim) dense staging array would
    // defeat the sparse backend's whole point at big N.
    std::vector<std::uint64_t> indices;
    std::vector<cplx> values;
    indices.reserve(target_amps.size());
    values.reserve(target_amps.size());
    for (std::size_t i = 0; i < target_amps.size(); ++i) {
      if (target_amps[i] == cplx{0.0, 0.0}) continue;
      digits[regs.elem.value] = i;
      indices.push_back(regs.layout.index_of(digits));
      values.push_back(target_amps[i]);
    }
    target.set_sparse_amplitudes(std::move(indices), std::move(values));
    return target;
  }
  std::vector<cplx> amps(regs.layout.total_dim(), cplx{0.0, 0.0});
  for (std::size_t i = 0; i < target_amps.size(); ++i) {
    digits[regs.elem.value] = i;
    amps[regs.layout.index_of(digits)] = target_amps[i];
  }
  target.set_amplitudes(std::move(amps));
  return target;
}

namespace {

SamplerResult run_with_plan(const DistributedDatabase& db, QueryMode mode,
                            const AAPlan& plan,
                            const SamplerOptions& options);

SamplerResult run_with_mode(const DistributedDatabase& db, QueryMode mode,
                            const SamplerOptions& options) {
  const double universe = static_cast<double>(db.universe());
  const double nu = static_cast<double>(db.nu());
  const double m_total = static_cast<double>(db.total());
  QS_REQUIRE(m_total > 0, "cannot sample from an empty database");

  // a = M / (νN) — computable from public knowledge only (Eq. 7).
  const AAPlan plan = plan_zero_error(m_total / (nu * universe));
  return run_with_plan(db, mode, plan, options);
}

SamplerResult run_with_plan(const DistributedDatabase& db, QueryMode mode,
                            const AAPlan& plan,
                            const SamplerOptions& options) {
  db.reset_stats();
  SingleStateBackend backend(db, options.prep, options.transcript,
                             /*observer=*/{}, options.backend,
                             options.channel);
  const StateVector target = target_full_state(db, options.backend);

  std::vector<double> trajectory;
  std::function<void(std::size_t)> observer;
  if (options.record_trajectory) {
    observer = [&](std::size_t) {
      trajectory.push_back(pure_fidelity(target, backend.state()));
    };
  }

  static auto& t_runs = telemetry::counter("sampling.runs");
  static auto& t_run_ns = telemetry::histogram("sampling.run.ns");
  {
    telemetry::Span run_span("sampling.run", &t_run_ns);
    run_span.tag("mode", mode == QueryMode::kSequential ? 0 : 1);
    run_span.tag("machines", static_cast<std::int64_t>(db.num_machines()));
    t_runs.add();
    TelemetryBackend traced(backend);
    run_sampling_circuit(traced, mode, plan, observer);
  }

  SamplerResult result{std::move(backend.state()),
                       backend.registers(),
                       plan,
                       db.stats(),
                       0.0,
                       std::move(trajectory)};
  result.fidelity = pure_fidelity(target, result.state);
  return result;
}

}  // namespace

SamplerResult run_sequential_sampler(const DistributedDatabase& db,
                                     const SamplerOptions& options) {
  return run_with_mode(db, QueryMode::kSequential, options);
}

SamplerResult run_parallel_sampler(const DistributedDatabase& db,
                                   const SamplerOptions& options) {
  return run_with_mode(db, QueryMode::kParallel, options);
}

SamplerResult run_centralized_sampler(const DistributedDatabase& db,
                                      const SamplerOptions& options) {
  // Merge every machine's multiset onto one machine; the joint counts, M
  // and ν are unchanged, so the target state is identical.
  Dataset merged = Dataset::from_counts(db.joint_counts());
  DistributedDatabase centralized({std::move(merged)}, db.nu());
  return run_sequential_sampler(centralized, options);
}

std::uint64_t predicted_sequential_queries(const AAPlan& plan,
                                           std::size_t n) {
  return static_cast<std::uint64_t>(plan.d_applications()) * 2 * n;
}

std::uint64_t predicted_parallel_rounds(const AAPlan& plan) {
  return static_cast<std::uint64_t>(plan.d_applications()) * 4;
}

SamplerResult run_budgeted_sampler(const DistributedDatabase& db,
                                   QueryMode mode,
                                   std::size_t max_iterations,
                                   const SamplerOptions& options) {
  const double m_total = static_cast<double>(db.total());
  QS_REQUIRE(m_total > 0, "cannot sample from an empty database");
  AAPlan plan = plan_zero_error(
      m_total / (static_cast<double>(db.nu()) *
                 static_cast<double>(db.universe())));
  // Truncate to the budget; the final corrected iterate only runs if the
  // full plan fits (the correction angles are specific to ⌊m̃⌋ iterations).
  const std::size_t full_needed =
      plan.full_iterations + (plan.needs_final ? 1 : 0);
  if (max_iterations < full_needed) {
    plan.full_iterations = max_iterations;
    plan.needs_final = false;
  }
  return run_with_plan(db, mode, plan, options);
}

}  // namespace qs
