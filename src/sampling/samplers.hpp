// Top-level samplers: the paper's Theorem 4.3 (sequential), Theorem 4.5
// (parallel) and the centralized n=1 reference they extend.
//
// Each sampler builds the coordinator state over [elem, count, flag], plans
// zero-error amplitude amplification from the PUBLIC parameters (N, M, ν)
// only, runs the oblivious circuit against the database oracles, and
// returns the final state together with the query ledger. For a valid
// database the output fidelity against |ψ, 0, 0⟩ (Eq. 4) is 1 up to double
// rounding — asserted throughout the test suite.
#pragma once

#include <vector>

#include "distdb/distributed_database.hpp"
#include "distdb/ipc/channel.hpp"
#include "distdb/transcript.hpp"
#include "sampling/circuit.hpp"

namespace qs {

struct SamplerOptions {
  StatePrep prep = StatePrep::kHouseholder;
  /// If non-null, every oracle call is appended (obliviousness audits).
  Transcript* transcript = nullptr;
  /// Record fidelity-to-target after the preparation and each Q iterate.
  bool record_trajectory = false;
  /// Amplitude storage for the coordinator state AND the fidelity target
  /// (state_backend.hpp): dense by default; sparse pushes N past the dense
  /// memory ceiling at O(nnz) per kernel (docs/PERF.md has the selection
  /// heuristics). The circuit itself is backend-agnostic.
  StateBackendConfig backend = StateBackendConfig::dense();
  /// Oracle transport (distdb/ipc/channel.hpp): null routes oracles through
  /// the in-process Machine::apply_oracle; non-null hands every oracle
  /// application to the channel (e.g. the multi-process ipc transport).
  /// Not owned; must outlive the run. Oracles are exact permutations, so
  /// any correct channel yields a bit-identical SamplerResult.
  ipc::OracleChannel* channel = nullptr;
};

struct SamplerResult {
  StateVector state;               ///< final coordinator state
  CoordinatorLayout registers;     ///< its register handles
  AAPlan plan;                     ///< the amplitude-amplification plan used
  QueryStats stats;                ///< oracle-query ledger for this run
  double fidelity = 0.0;           ///< |⟨ψ,0,0|final⟩|²
  std::vector<double> trajectory;  ///< per-iteration fidelity (optional)

  /// Amplitudes on the element register conditioned on count=0, flag=0 —
  /// the sampling state the coordinator outputs.
  std::vector<cplx> output_amplitudes() const;
};

/// The target full state |ψ, 0, 0⟩ for a database, on the standard layout.
/// The sparse backend builds its M ≤ N nonzeros directly — no O(dim) dense
/// detour — which is what keeps the big-N fidelity check affordable.
StateVector target_full_state(const DistributedDatabase& db,
                              const StateBackendConfig& backend = {});

/// Theorem 4.3: sequential queries, O(n √(νN/M)) oracle calls.
SamplerResult run_sequential_sampler(const DistributedDatabase& db,
                                     const SamplerOptions& options = {});

/// Theorem 4.5: parallel queries, O(√(νN/M)) rounds.
SamplerResult run_parallel_sampler(const DistributedDatabase& db,
                                   const SamplerOptions& options = {});

/// Centralized reference: merge all machines into one and run the
/// sequential sampler — the classic (non-distributed) quantum sampling
/// algorithm the paper's construction generalises.
SamplerResult run_centralized_sampler(const DistributedDatabase& db,
                                      const SamplerOptions& options = {});

/// Predicted query counts from the plan (for the benches): the sequential
/// sampler spends 2n queries per D application, the parallel one 4 rounds.
std::uint64_t predicted_sequential_queries(const AAPlan& plan, std::size_t n);
std::uint64_t predicted_parallel_rounds(const AAPlan& plan);

/// Run the sampler with a HARD ITERATION BUDGET: at most `max_iterations`
/// Grover iterates (the final zero-error correction runs only if the full
/// plan fits the budget). Models the approximate algorithms of Section 5
/// (fidelity > 9/16 instead of exact) and feeds the fidelity-frontier
/// experiment F7: achievable fidelity as a function of query budget.
SamplerResult run_budgeted_sampler(const DistributedDatabase& db,
                                   QueryMode mode,
                                   std::size_t max_iterations,
                                   const SamplerOptions& options = {});

}  // namespace qs
