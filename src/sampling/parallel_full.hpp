// The LITERAL parallel-query circuit of Lemma 4.4, ancillas and all.
//
// The production parallel sampler applies the net effect of this circuit
// (a counter shift by c_i, costing 4 parallel rounds — see
// SingleStateBackend::parallel_total_shift). This file implements the
// lemma's construction register-by-register so the equivalence is a THEOREM
// WE TEST rather than an assumption:
//
//   |i,0⟩|0ⁿ,0ⁿ,0ⁿ⟩ → |i,0⟩|iⁿ,0ⁿ,1ⁿ⟩              (copy + set controls)
//                   → |i,0⟩|iⁿ, c_i1…c_in, 1ⁿ⟩       (parallel oracle O)
//                   → |i,c_i⟩|iⁿ, c_i1…c_in, 1ⁿ⟩     (coordinator adder)
//                   → |i,c_i⟩|iⁿ,0ⁿ,1ⁿ⟩              (parallel oracle O†)
//                   → |i,c_i⟩|0ⁿ,0ⁿ,0ⁿ⟩              (uncopy + clear)
//
// Exponential in n (the ancilla block has (N·(ν+1)·2)ⁿ states), so only
// for small validation instances; the tests compare its operator against
// the ideal D on the count=0, ancilla=0 subspace.
#pragma once

#include <vector>

#include "distdb/distributed_database.hpp"
#include "qsim/compiled_op.hpp"
#include "qsim/state_vector.hpp"
#include "sampling/backend.hpp"

namespace qs {

class ParallelFullCircuit {
 public:
  /// Builds the layout [elem, count, flag, elemʲ…, countʲ…, flagʲ…] for
  /// db's parameters. Throws if the total dimension would be unreasonable.
  explicit ParallelFullCircuit(const DistributedDatabase& db);

  const RegisterLayout& layout() const noexcept { return layout_; }
  RegisterId elem() const noexcept { return elem_; }
  RegisterId count() const noexcept { return count_; }
  RegisterId flag() const noexcept { return flag_; }

  /// Fresh all-zero state on this circuit's layout, on the requested
  /// backend (the lemma circuit keeps support on ≈ N of the (N(ν+1)2)ⁿ⁺¹
  /// ancilla states, so the sparse backend stretches the validation range).
  StateVector make_state(const StateBackendConfig& backend = {}) const {
    return StateVector(layout_, backend);
  }

  /// One round of the parallel oracle O (Eq. 3): every machine j applies
  /// Ô_j to its (elemʲ, countʲ, flagʲ) triple. Counts one parallel round.
  void apply_parallel_oracle(StateVector& state, bool adjoint) const;

  /// The composite |i, s⟩ → |i, s ± c_i⟩ of Lemma 4.4 (2 parallel rounds).
  void apply_total_shift(StateVector& state, bool adjoint) const;

  /// The full distributing operator D (or D†): shift, 𝒰, unshift —
  /// 4 parallel rounds, exactly as the lemma claims.
  void apply_distributing(StateVector& state, bool adjoint) const;

 private:
  const DistributedDatabase& db_;
  RegisterLayout layout_;
  RegisterId elem_, count_, flag_;
  std::vector<RegisterId> anc_elem_, anc_count_, anc_flag_;
  std::vector<Matrix> u_rotations_, u_rotations_adjoint_;
  // The coordinator-side moves of Lemma 4.4 are data-independent basis
  // relabellings, so the ctor lowers and FUSES each group once:
  //   pre_shift_  = set_controls ∘ copy      (2n value shifts → 1 table)
  //   post_shift_ = copy† ∘ set_controls     (2n value shifts → 1 table)
  //   adder_*_    = count ± Σ_j anc_count[j] (1 table each)
  //   u_*_        = 𝒰 per direction          (fiber-dense, 2×2 unrolled)
  // Each apply_total_shift then replays three table sweeps instead of
  // 2n+1 per-amplitude-dispatch kernels (docs/PERF.md).
  CompiledProgram pre_shift_, post_shift_;
  CompiledProgram adder_fwd_, adder_adj_;
  CompiledProgram u_fwd_, u_adj_;
};

}  // namespace qs
