// Statistical verification of sampler outputs.
//
// A downstream user cannot read amplitudes off real hardware; what they CAN
// do is measure repeatedly and test the histogram against the database's
// frequency vector c_i/M (the defining semantics of Section 3). This helper
// packages that check: draw `shots` computational-basis measurements of the
// element register and run a Pearson chi-square goodness-of-fit against the
// target distribution. A correct sampler yields uniformly-distributed
// p-values; a broken one collapses them toward 0.
#pragma once

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "distdb/distributed_database.hpp"
#include "sampling/samplers.hpp"

namespace qs {

struct VerificationResult {
  ChiSquareResult chi_square;
  double total_variation = 0.0;  ///< empirical vs target
  std::size_t shots = 0;
  /// Convenience verdict at significance alpha.
  bool consistent(double alpha = 0.001) const {
    return chi_square.p_value > alpha;
  }
};

/// Measure `state`'s element register `shots` times and test against the
/// database's target distribution.
VerificationResult verify_output_distribution(const StateVector& state,
                                              RegisterId elem,
                                              const DistributedDatabase& db,
                                              std::size_t shots, Rng& rng);

}  // namespace qs
