#include "sampling/traced_backend.hpp"

#include <string>

namespace qs {

TelemetryBackend::TelemetryBackend(SamplingBackend& inner)
    : inner_(inner),
      sequential_total_(telemetry::counter("sampling.oracle.sequential")),
      parallel_rounds_(telemetry::counter("sampling.parallel_rounds")),
      adjoint_calls_(telemetry::counter("sampling.oracle.adjoint")),
      oracle_ns_(telemetry::histogram("sampling.oracle.ns")) {
  per_machine_.reserve(inner.num_machines());
  for (std::size_t j = 0; j < inner.num_machines(); ++j) {
    per_machine_.push_back(&telemetry::counter("sampling.oracle.machine." +
                                               std::to_string(j)));
  }
}

std::size_t TelemetryBackend::num_machines() const {
  return inner_.num_machines();
}

void TelemetryBackend::prep_uniform(bool adjoint) {
  telemetry::Span span("schedule.F");
  span.tag("adjoint", adjoint ? 1 : 0);
  inner_.prep_uniform(adjoint);
}

void TelemetryBackend::phase_good(double phi) {
  telemetry::Span span("schedule.S_chi");
  inner_.phase_good(phi);
}

void TelemetryBackend::phase_initial(double phi) {
  telemetry::Span span("schedule.S_0");
  inner_.phase_initial(phi);
}

void TelemetryBackend::rotation_u(bool adjoint) {
  telemetry::Span span("schedule.U");
  span.tag("adjoint", adjoint ? 1 : 0);
  inner_.rotation_u(adjoint);
}

void TelemetryBackend::oracle(std::size_t j, bool adjoint) {
  telemetry::Span span("schedule.oracle", &oracle_ns_);
  span.tag("event", static_cast<std::int64_t>(event_index_));
  span.tag("machine", static_cast<std::int64_t>(j));
  span.tag("adjoint", adjoint ? 1 : 0);
  ++event_index_;
  sequential_total_.add();
  if (j < per_machine_.size()) per_machine_[j]->add();
  if (adjoint) adjoint_calls_.add();
  inner_.oracle(j, adjoint);
}

void TelemetryBackend::parallel_total_shift(bool adjoint) {
  // The composite spends one O and one O† round (Lemma 4.4), i.e. TWO
  // transcript events; the span covers both and advances the index by 2 so
  // later spans keep matching ProtocolOp::event.
  telemetry::Span span("schedule.parallel_shift", &oracle_ns_);
  span.tag("event", static_cast<std::int64_t>(event_index_));
  span.tag("rounds", 2);
  span.tag("adjoint", adjoint ? 1 : 0);
  event_index_ += 2;
  parallel_rounds_.add(2);
  adjoint_calls_.add();  // exactly one of the two rounds is the adjoint O†
  inner_.parallel_total_shift(adjoint);
}

void TelemetryBackend::global_phase(double angle) {
  telemetry::Span span("schedule.phase");
  inner_.global_phase(angle);
}

}  // namespace qs
