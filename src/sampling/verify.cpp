#include "sampling/verify.hpp"

#include "common/require.hpp"
#include "qsim/measure.hpp"

namespace qs {

VerificationResult verify_output_distribution(const StateVector& state,
                                              RegisterId elem,
                                              const DistributedDatabase& db,
                                              std::size_t shots, Rng& rng) {
  QS_REQUIRE(shots > 0, "verification needs at least one shot");
  const auto target = db.target_distribution();
  QS_REQUIRE(state.layout().dim(elem) == target.size(),
             "element register does not match the database universe");

  const auto histogram = histogram_register(state, elem, rng, shots);

  VerificationResult result;
  result.shots = shots;
  result.chi_square = chi_square_gof(histogram, target);
  result.total_variation =
      total_variation(normalize_histogram(histogram), target);
  return result;
}

}  // namespace qs
