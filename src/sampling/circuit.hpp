// The sampling circuit of Section 4, expressed once for both query models.
//
// Structure (Theorems 4.3 / 4.5): with A = D(F ⊗ I),
//
//   |final⟩ = Q(φ,ϕ) Q(π,π)^⌊m̃⌋ A |0⟩,
//   Q(φ,ϕ) = −A S_0(ϕ) A† S_χ(φ),
//
// where D is the distributing operator (Eq. 5) realised through oracle
// queries: sequentially via Lemma 4.2 (O_1…O_n, 𝒰, O_n†…O_1† — 2n queries)
// or in parallel via Lemma 4.4 (4 parallel rounds). The backend supplies
// the primitive operations; this file fixes their order — i.e. the
// oblivious schedule.
#pragma once

#include <cstdint>
#include <functional>

#include "sampling/amplitude_amplification.hpp"
#include "sampling/backend.hpp"

namespace qs {

enum class QueryMode : std::uint8_t { kSequential, kParallel };

/// Apply D (adjoint = false) or D† (adjoint = true) through oracle queries.
///
/// Both directions decompose as  D  = C† 𝒰  C  and  D† = C† 𝒰† C  where C
/// adds the multiplicities into the counter and C† removes them — so the
/// query schedule is identical for D and D† (obliviousness) and each
/// application costs 2n sequential queries or 4 parallel rounds.
void apply_distributing_operator(SamplingBackend& backend, QueryMode mode,
                                 bool adjoint);

/// One generalised Grover iterate Q(φ, ϕ) = −A S_0(ϕ) A† S_χ(φ).
void apply_q_iterate(SamplingBackend& backend, QueryMode mode, double varphi,
                     double phi);

/// Run the full zero-error sampling circuit. `after_iteration`, if given,
/// is invoked after the initial preparation (with index 0) and after each
/// Q iterate (with index 1, 2, ...) — used to record fidelity trajectories.
void run_sampling_circuit(
    SamplingBackend& backend, QueryMode mode, const AAPlan& plan,
    const std::function<void(std::size_t iteration)>& after_iteration = {});

}  // namespace qs
