// The ideal distributing operator D (Eq. 5), applied directly from the
// joint counts without oracle queries.
//
//   D |i, 0⟩ = √(c_i/ν) |i, 0⟩ + √((ν−c_i)/ν) |i, 1⟩
//
// extended unitarily as the elem-conditioned flag rotation by
// γ_i = arccos √(c_i/ν) (Lemma 4.1 guarantees a unitary extension exists;
// this is the canonical one, and it agrees with the oracle constructions of
// Lemmas 4.2 / 4.4 on the count = 0 subspace where the whole algorithm
// lives). Used as the reference in operator-level tests and as a fast
// "oracle-free" sampler backend for experiments that only need the state.
#pragma once

#include "distdb/distributed_database.hpp"
#include "qsim/state_vector.hpp"

namespace qs {

/// Apply the ideal D (or D†) to `state`, rotating `flag` conditioned on
/// `elem` by the database's joint multiplicities.
void apply_ideal_distributing(StateVector& state,
                              const DistributedDatabase& db, RegisterId elem,
                              RegisterId flag, bool adjoint);

}  // namespace qs
