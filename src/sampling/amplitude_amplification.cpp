#include "sampling/amplitude_amplification.hpp"

#include <cmath>
#include <numbers>
#include <tuple>
#include <utility>

#include "common/require.hpp"

namespace qs {

namespace {

using cplx = std::complex<double>;

cplx expi(double x) { return {std::cos(x), std::sin(x)}; }

}  // namespace

std::pair<cplx, cplx> q_step_two_level(cplx good, cplx bad, double theta,
                                       double varphi, double phi) {
  // Q = −A S_0(ϕ) A† S_χ(φ) restricted to span{good, bad}:
  //   A S_0(ϕ) A† = I + (e^{iϕ}−1)|Ψ⟩⟨Ψ|,  |Ψ⟩ = sinθ|g⟩ + cosθ|b⟩,
  //   S_χ(φ)      = e^{iφ} on |g⟩, identity on |b⟩.
  const double s = std::sin(theta);
  const double c = std::cos(theta);
  const cplx eph = expi(phi);
  const cplx evr = expi(varphi);
  const cplx k = eph - 1.0;
  const cplx q_gg = -evr * (1.0 + k * s * s);
  const cplx q_gb = -(k * s * c);
  const cplx q_bg = -evr * (k * s * c);
  const cplx q_bb = -(1.0 + k * c * c);
  return {q_gg * good + q_gb * bad, q_bg * good + q_bb * bad};
}

std::pair<cplx, cplx> evolve_two_level(const AAPlan& plan) {
  const double s = std::sin(plan.theta);
  const double c = std::cos(plan.theta);
  cplx good = s, bad = c;
  if (plan.already_exact) return {good, bad};
  constexpr double kPi = std::numbers::pi;
  for (std::size_t i = 0; i < plan.full_iterations; ++i) {
    std::tie(good, bad) = q_step_two_level(good, bad, plan.theta, kPi, kPi);
  }
  if (plan.needs_final) {
    std::tie(good, bad) = q_step_two_level(good, bad, plan.theta,
                                           plan.final_varphi, plan.final_phi);
  }
  return {good, bad};
}

std::size_t plain_iteration_count(double a) {
  QS_REQUIRE(a > 0.0 && a <= 1.0, "good probability must be in (0, 1]");
  const double theta = std::asin(std::sqrt(a));
  return static_cast<std::size_t>(std::floor(std::numbers::pi / (4 * theta)));
}

AAPlan plan_zero_error(double a) {
  QS_REQUIRE(a > 0.0 && a <= 1.0 + 1e-12,
             "good probability must be in (0, 1]");
  a = std::min(a, 1.0);

  AAPlan plan;
  plan.a = a;
  plan.theta = std::asin(std::sqrt(a));

  if (a >= 1.0 - 1e-15) {
    plan.already_exact = true;
    return plan;
  }

  constexpr double kPi = std::numbers::pi;
  const double theta = plan.theta;
  const double m_tilde = kPi / (4.0 * theta) - 0.5;
  plan.full_iterations = static_cast<std::size_t>(std::floor(m_tilde));
  const double reached =
      (2.0 * static_cast<double>(plan.full_iterations) + 1.0) * theta;

  // c = cot((2⌊m̃⌋+1)θ); zero means the π/(4θ)−1/2 count was integral and
  // the state already landed exactly on |good⟩.
  const double cot_reached = std::cos(reached) / std::sin(reached);
  if (std::abs(cot_reached) < 1e-12) {
    plan.needs_final = false;
    return plan;
  }
  plan.needs_final = true;

  // Solve cot(reached) = e^{iφ} sin2θ (−cos2θ + i cot(ϕ/2))^{-1} for
  // (φ, ϕ). Writing z = −cos2θ + i·cot(ϕ/2), the equation says
  // z = (sin2θ / c) e^{iφ}: the modulus fixes |cot(ϕ/2)| and the phase of z
  // fixes φ. Guaranteed solvable because c ≤ tan 2θ (paper, Section 4.1).
  const double sin2t = std::sin(2.0 * theta);
  const double cos2t = std::cos(2.0 * theta);
  const double c = cot_reached;
  const double disc = sin2t * sin2t / (c * c) - cos2t * cos2t;
  QS_ASSERT(disc >= -1e-12,
            "zero-error AA: c > tan(2θ); iteration count is inconsistent");
  const double cot_half_phi = std::sqrt(std::max(disc, 0.0));

  // Two sign choices for cot(ϕ/2); verify with the exact reduced dynamics
  // and keep the one that annihilates the bad amplitude.
  double best_residual = 2.0;
  for (const double sign : {+1.0, -1.0}) {
    const double chp = sign * cot_half_phi;
    AAPlan candidate = plan;
    candidate.final_phi = 2.0 * std::atan2(1.0, chp);  // ϕ ∈ (0, 2π)
    candidate.final_varphi = std::atan2(chp, -cos2t);  // φ = arg z
    const auto [good, bad] = evolve_two_level(candidate);
    const double residual = std::abs(bad);
    if (residual < best_residual) {
      best_residual = residual;
      plan = candidate;
    }
    (void)good;
  }
  QS_ASSERT(best_residual < 1e-9,
            "zero-error AA plan failed verification; residual bad amplitude "
            "too large");
  return plan;
}

}  // namespace qs
