// Execution backends for the sampling circuit.
//
// The coordinator's algorithm (Section 4) is a fixed, data-independent
// sequence of operations — that is what makes it oblivious. We express the
// circuit once, in run_sampling_circuit(), against this small interface;
// backends decide what an operation is applied TO:
//
//   * SingleStateBackend — one StateVector over [elem, count, flag]
//     (the production sampler);
//   * LockstepBackend (src/lowerbound) — two StateVectors evolved under the
//     same schedule, one seeing the true database and one seeing machine k
//     emptied, recording the potential D_t after every oracle call exactly
//     as Eq. (9)–(11) prescribe.
//
// The interface deliberately exposes ONLY operations the paper allows the
// coordinator: input-independent unitaries plus the machines' oracles.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "distdb/distributed_database.hpp"
#include "distdb/ipc/channel.hpp"
#include "distdb/transcript.hpp"
#include "qsim/compiled_op.hpp"
#include "qsim/state_vector.hpp"

namespace qs {

/// Which unitary realises F (the |0⟩ → |π⟩ preparation). Both satisfy
/// F|0⟩ = |π⟩; Householder costs O(dim) per application, dense QFT costs
/// O(N·dim) and is kept for cross-validation.
enum class StatePrep : std::uint8_t { kHouseholder, kQft };

/// Called after every oracle application. `machine` holds the machine index
/// for sequential queries and is empty for a parallel round.
using OracleObserver =
    std::function<void(std::optional<std::size_t> machine, bool adjoint)>;

class SamplingBackend {
 public:
  virtual ~SamplingBackend() = default;

  virtual std::size_t num_machines() const = 0;

  /// F (or F†) on the element register.
  virtual void prep_uniform(bool adjoint) = 0;

  /// S_χ(φ): multiply every flag = 0 ("good") component by e^{iφ}.
  virtual void phase_good(double phi) = 0;

  /// S_0(ϕ): multiply the all-zero basis state by e^{iϕ}.
  virtual void phase_initial(double phi) = 0;

  /// The input-independent rotation 𝒰 of Eq. (6) (or its adjoint).
  virtual void rotation_u(bool adjoint) = 0;

  /// Sequential oracle O_j / O_j† (Eq. 1). Costs one query to machine j.
  virtual void oracle(std::size_t j, bool adjoint) = 0;

  /// The net effect of the first (or, adjoint, third) step of Lemma 4.4:
  /// |i, s⟩ → |i, s ± c_i mod (ν+1)⟩ realised with the parallel oracle O.
  /// Costs exactly TWO parallel rounds (one O and one O†), as in the
  /// lemma's five-line derivation.
  virtual void parallel_total_shift(bool adjoint) = 0;

  /// Global phase (the leading minus sign of Q).
  virtual void global_phase(double angle) = 0;
};

/// Standard coordinator layout: element (dim N), counter (dim ν+1),
/// flag (dim 2) — the three registers of Section 3.
struct CoordinatorLayout {
  RegisterLayout layout;
  RegisterId elem;
  RegisterId count;
  RegisterId flag;
};

CoordinatorLayout make_coordinator_layout(std::size_t universe,
                                          std::uint64_t nu);

/// Production backend: applies every operation to one StateVector over the
/// database `db`. Does not own the database; `db` must outlive the backend.
/// `backend` selects the StateVector's storage (state_backend.hpp) — every
/// operation below dispatches through the facade, so the circuit code is
/// identical on the dense and sparse backends.
class SingleStateBackend final : public SamplingBackend {
 public:
  /// `channel` (distdb/ipc/channel.hpp) selects the oracle transport: null
  /// applies oracles in-process, non-null routes every application through
  /// the channel (bit-identical either way — oracles are exact
  /// permutations). Not owned; must outlive the backend.
  SingleStateBackend(const DistributedDatabase& db, StatePrep prep,
                     Transcript* transcript = nullptr,
                     OracleObserver observer = {},
                     const StateBackendConfig& backend = {},
                     ipc::OracleChannel* channel = nullptr);

  std::size_t num_machines() const override;
  void prep_uniform(bool adjoint) override;
  void phase_good(double phi) override;
  void phase_initial(double phi) override;
  void rotation_u(bool adjoint) override;
  void oracle(std::size_t j, bool adjoint) override;
  void parallel_total_shift(bool adjoint) override;
  void global_phase(double angle) override;

  const StateVector& state() const noexcept { return state_; }
  StateVector& state() noexcept { return state_; }
  const CoordinatorLayout& registers() const noexcept { return regs_; }

 private:
  const DistributedDatabase& db_;
  StatePrep prep_;
  Transcript* transcript_;
  OracleObserver observer_;
  ipc::OracleChannel* channel_;
  CoordinatorLayout regs_;
  StateVector state_;
  std::vector<cplx> householder_v_;
  Matrix qft_;
  std::vector<Matrix> u_rotations_;         // 𝒰: one 2×2 per counter value
  std::vector<Matrix> u_rotations_adjoint_;
  // 𝒰 lowered once per direction into fiber-dense compiled form (2×2
  // unrolled replay) — 𝒰 is data-independent, so compile-at-construction
  // is safe and every application is a pure table walk.
  CompiledOp u_compiled_;
  CompiledOp u_compiled_adjoint_;
  // Parallel total-shift table (Lemma 4.4's net counter shift), cached
  // against the database version so repeated AA iterations skip the O(N·n)
  // joint-count rebuild. Telemetry: sampling.total_shift.cache.{compile,hit}.
  mutable std::uint64_t shift_version_ = 0;
  mutable bool shift_valid_ = false;
  mutable std::vector<std::size_t> shift_forward_;
  mutable std::vector<std::size_t> shift_adjoint_;
  const std::vector<std::size_t>& total_shift(bool adjoint) const;
};

/// Precompute the 2×2 rotations of 𝒰 (Eq. 6) for counter values 0..ν:
/// R_c |0⟩ = √(c/ν)|0⟩ + √((ν−c)/ν)|1⟩, completed unitarily on |1⟩.
std::vector<Matrix> make_u_rotations(std::uint64_t nu, bool adjoint);

}  // namespace qs
