#include "sampling/classical.hpp"

#include "common/require.hpp"

namespace qs {

ClassicalScanResult classical_full_scan(const DistributedDatabase& db) {
  ClassicalScanResult result;
  result.counts.assign(db.universe(), 0);
  for (std::size_t j = 0; j < db.num_machines(); ++j) {
    const auto& data = db.machine(j).data();
    for (std::size_t i = 0; i < db.universe(); ++i) {
      result.counts[i] += data.count(i);  // one classical query
      ++result.queries;
    }
  }
  return result;
}

ClassicalScanResult classical_early_stop_scan(const DistributedDatabase& db) {
  const std::uint64_t m_total = db.total();  // public knowledge
  ClassicalScanResult result;
  result.counts.assign(db.universe(), 0);
  std::uint64_t found = 0;
  for (std::size_t i = 0; i < db.universe(); ++i) {
    for (std::size_t j = 0; j < db.num_machines(); ++j) {
      const std::uint64_t c = db.machine(j).data().count(i);
      ++result.queries;
      result.counts[i] += c;
      found += c;
      if (found == m_total) return result;
    }
  }
  return result;
}

ClassicalRejectionResult classical_rejection_sampling(
    const DistributedDatabase& db, std::size_t num_samples, Rng& rng) {
  QS_REQUIRE(db.total() > 0, "cannot sample from an empty database");
  ClassicalRejectionResult result;
  result.samples.reserve(num_samples);
  const double nu = static_cast<double>(db.nu());
  while (result.samples.size() < num_samples) {
    const auto i = static_cast<std::size_t>(rng.uniform_below(db.universe()));
    std::uint64_t c_i = 0;
    for (std::size_t j = 0; j < db.num_machines(); ++j) {
      c_i += db.machine(j).data().count(i);  // one classical query each
      ++result.queries;
    }
    if (rng.uniform01() < static_cast<double>(c_i) / nu) {
      result.samples.push_back(i);
    }
  }
  return result;
}

}  // namespace qs
