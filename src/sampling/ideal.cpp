#include "sampling/ideal.hpp"

#include <cmath>

#include "common/require.hpp"
#include "qsim/gates.hpp"

namespace qs {

void apply_ideal_distributing(StateVector& state,
                              const DistributedDatabase& db, RegisterId elem,
                              RegisterId flag, bool adjoint) {
  const auto& layout = state.layout();
  QS_REQUIRE(layout.dim(elem) == db.universe(),
             "element register dimension must equal the universe size");
  QS_REQUIRE(layout.dim(flag) == 2, "flag must be a qubit");

  const double nu = static_cast<double>(db.nu());
  const auto joint = db.joint_counts();
  std::vector<Matrix> rotations;
  rotations.reserve(joint.size());
  for (const auto c : joint) {
    const double cos_g =
        std::min(std::sqrt(static_cast<double>(c) / nu), 1.0);
    const double gamma = std::acos(cos_g);
    rotations.push_back(rotation_matrix(adjoint ? -gamma : gamma));
  }
  state.apply_conditioned_unitary(
      flag, [&](std::size_t fiber_base) -> const Matrix* {
        return &rotations[layout.digit(fiber_base, elem)];
      });
}

}  // namespace qs
