#include "sampling/hierarchical.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/require.hpp"
#include "distdb/communication.hpp"
#include "qsim/gates.hpp"

namespace qs {

void Partition::validate(std::size_t machines) const {
  QS_REQUIRE(!groups.empty(), "partition needs at least one group");
  std::vector<bool> seen(machines, false);
  std::size_t covered = 0;
  for (const auto& group : groups) {
    QS_REQUIRE(!group.empty(), "partition groups must be non-empty");
    for (const auto j : group) {
      QS_REQUIRE(j < machines, "machine index out of range in partition");
      QS_REQUIRE(!seen[j], "machine appears in two groups");
      seen[j] = true;
      ++covered;
    }
  }
  QS_REQUIRE(covered == machines, "partition must cover every machine");
}

Partition contiguous_partition(std::size_t machines, std::size_t num_groups) {
  QS_REQUIRE(num_groups >= 1 && num_groups <= machines,
             "group count must be in [1, n]");
  Partition partition;
  partition.groups.resize(num_groups);
  for (std::size_t j = 0; j < machines; ++j) {
    partition.groups[j * num_groups / machines].push_back(j);
  }
  return partition;
}

std::uint64_t hierarchical_rounds_per_d(const Partition& partition) {
  std::uint64_t rounds = 0;
  for (const auto& group : partition.groups)
    rounds += group.size() == 1 ? 2 : 4;
  return rounds;
}

namespace {

/// Execution state for the hierarchical circuit: one StateVector plus the
/// cost ledger. Group composites are applied as their net counter shift
/// (validated against the literal Lemma 4.4 circuit by the parallel_full
/// tests) and charged per the module comment.
class HierarchicalRun {
 public:
  HierarchicalRun(const DistributedDatabase& db, const Partition& partition,
                  StatePrep prep)
      : db_(db),
        partition_(partition),
        prep_(prep),
        regs_(make_coordinator_layout(db.universe(), db.nu())),
        state_(regs_.layout),
        householder_v_(uniform_prep_householder_vector(db.universe())),
        u_fwd_(make_u_rotations(db.nu(), false)),
        u_adj_(make_u_rotations(db.nu(), true)) {
    if (prep_ == StatePrep::kQft) qft_ = qft_matrix(db.universe());
    // Precompute per-group joint shift vectors.
    const std::size_t modulus = regs_.layout.dim(regs_.count);
    for (const auto& group : partition_.groups) {
      std::vector<std::size_t> shift(db.universe(), 0);
      for (const auto j : group) {
        const auto& counts = db.machine(j).data().counts();
        for (std::size_t i = 0; i < shift.size(); ++i)
          shift[i] = (shift[i] + static_cast<std::size_t>(counts[i])) %
                     modulus;
      }
      group_shift_.push_back(std::move(shift));
    }
  }

  void prep_uniform(bool adjoint) {
    if (prep_ == StatePrep::kHouseholder) {
      state_.apply_householder(regs_.elem, householder_v_);
    } else {
      state_.apply_unitary(regs_.elem, adjoint ? qft_.adjoint() : qft_);
    }
  }

  void group_shift(std::size_t g, bool subtract) {
    const std::size_t modulus = regs_.layout.dim(regs_.count);
    std::vector<std::size_t> shift = group_shift_[g];
    if (subtract) {
      for (auto& s : shift) s = (modulus - s) % modulus;
    }
    state_.apply_value_shift(regs_.count, regs_.elem, shift);
    const auto& group = partition_.groups[g];
    const std::uint64_t rounds = group.size() == 1 ? 1 : 2;
    group_rounds_ += rounds;
    machine_invocations_ +=
        group.size() == 1 ? 1 : 2 * static_cast<std::uint64_t>(group.size());
    if (rng_ != nullptr) inject_noise(g, rounds);
  }

  /// Optional trajectory noise (see run_noisy_hierarchical_sampler).
  void set_noise(const NoiseModel& noise, Rng& rng,
                 std::uint64_t elem_qubits, std::uint64_t counter_qubits) {
    noise_ = noise;
    rng_ = &rng;
    elem_qubits_ = elem_qubits;
    counter_qubits_ = counter_qubits;
  }

  void inject_noise(std::size_t g, std::uint64_t rounds) {
    for (std::uint64_t r = 0; r < rounds; ++r) {
      if (noise_.dephasing_per_round > 0.0) {
        apply_dephasing_trajectory(state_, regs_.elem,
                                   noise_.dephasing_per_round, *rng_);
      }
      if (noise_.depolarizing_per_round > 0.0) {
        apply_depolarizing_trajectory(state_, regs_.flag,
                                      noise_.depolarizing_per_round, *rng_);
      }
      if (noise_.dephasing_per_qubit_trip > 0.0) {
        const auto& group = partition_.groups[g];
        const double trips =
            group.size() == 1
                ? 2.0 * static_cast<double>(elem_qubits_ + counter_qubits_)
                : 2.0 * static_cast<double>(group.size()) *
                      static_cast<double>(elem_qubits_ + counter_qubits_ +
                                          1);
        const double p =
            1.0 - std::pow(1.0 - noise_.dephasing_per_qubit_trip, trips);
        apply_dephasing_trajectory(state_, regs_.elem, p, *rng_);
      }
    }
  }

  void rotation_u(bool adjoint) {
    const auto& rotations = adjoint ? u_adj_ : u_fwd_;
    const auto& layout = regs_.layout;
    const auto count = regs_.count;
    state_.apply_conditioned_unitary(
        regs_.flag, [&](std::size_t fiber_base) -> const Matrix* {
          return &rotations[layout.digit(fiber_base, count)];
        });
  }

  void apply_d(bool adjoint) {
    // D = C† 𝒰 C and D† = C† 𝒰† C, with C adding every group's counts
    // group-by-group (groups sequential, members parallel within).
    for (std::size_t g = 0; g < partition_.groups.size(); ++g)
      group_shift(g, /*subtract=*/false);
    rotation_u(adjoint);
    for (std::size_t g = partition_.groups.size(); g-- > 0;)
      group_shift(g, /*subtract=*/true);
  }

  void q_iterate(double varphi, double phi) {
    constexpr double kPi = std::numbers::pi;
    state_.apply_phase_on_register_value(
        regs_.flag, 0, cplx{std::cos(varphi), std::sin(varphi)});
    apply_d(true);
    prep_uniform(true);
    state_.apply_phase_on_basis_state(0, cplx{std::cos(phi), std::sin(phi)});
    prep_uniform(false);
    apply_d(false);
    state_.apply_global_phase(cplx{std::cos(kPi), std::sin(kPi)});
  }

  HierarchicalResult run(const AAPlan& plan) {
    constexpr double kPi = std::numbers::pi;
    prep_uniform(false);
    apply_d(false);
    if (!plan.already_exact) {
      for (std::size_t i = 0; i < plan.full_iterations; ++i)
        q_iterate(kPi, kPi);
      if (plan.needs_final) q_iterate(plan.final_varphi, plan.final_phi);
    }
    HierarchicalResult result{std::move(state_), regs_, plan, group_rounds_,
                              machine_invocations_, 0.0};
    return result;
  }

 private:
  const DistributedDatabase& db_;
  const Partition& partition_;
  StatePrep prep_;
  CoordinatorLayout regs_;
  StateVector state_;
  std::vector<cplx> householder_v_;
  Matrix qft_;
  std::vector<Matrix> u_fwd_, u_adj_;
  std::vector<std::vector<std::size_t>> group_shift_;
  std::uint64_t group_rounds_ = 0;
  NoiseModel noise_{};
  Rng* rng_ = nullptr;
  std::uint64_t elem_qubits_ = 0;
  std::uint64_t counter_qubits_ = 0;
  std::uint64_t machine_invocations_ = 0;
};

}  // namespace

HierarchicalResult run_hierarchical_sampler(const DistributedDatabase& db,
                                            const Partition& partition,
                                            StatePrep prep) {
  partition.validate(db.num_machines());
  const double a = static_cast<double>(db.total()) /
                   (static_cast<double>(db.nu()) *
                    static_cast<double>(db.universe()));
  QS_REQUIRE(db.total() > 0, "cannot sample from an empty database");
  const AAPlan plan = plan_zero_error(a);

  HierarchicalRun run(db, partition, prep);
  auto result = run.run(plan);
  result.fidelity = pure_fidelity(target_full_state(db), result.state);
  return result;
}

NoisyHierarchicalResult run_noisy_hierarchical_sampler(
    const DistributedDatabase& db, const Partition& partition,
    const NoiseModel& noise, std::size_t trajectories, Rng& rng,
    StatePrep prep) {
  partition.validate(db.num_machines());
  QS_REQUIRE(db.total() > 0, "cannot sample from an empty database");
  QS_REQUIRE(trajectories > 0, "need at least one trajectory");
  const double a = static_cast<double>(db.total()) /
                   (static_cast<double>(db.nu()) *
                    static_cast<double>(db.universe()));
  const AAPlan plan = plan_zero_error(a);
  const StateVector target = target_full_state(db);
  const auto elem_qubits = qubits_for_dimension(db.universe());
  const auto counter_qubits = qubits_for_dimension(db.nu() + 1);

  double sum = 0.0, sum_sq = 0.0;
  NoisyHierarchicalResult result;
  result.trajectories = trajectories;
  for (std::size_t t = 0; t < trajectories; ++t) {
    HierarchicalRun run(db, partition, prep);
    run.set_noise(noise, rng, elem_qubits, counter_qubits);
    auto one = run.run(plan);
    const double fidelity = pure_fidelity(target, one.state);
    sum += fidelity;
    sum_sq += fidelity * fidelity;
    result.group_rounds = one.group_rounds;
  }
  result.mean_fidelity = sum / static_cast<double>(trajectories);
  const double var =
      sum_sq / static_cast<double>(trajectories) -
      result.mean_fidelity * result.mean_fidelity;
  result.stddev_fidelity = std::sqrt(std::max(var, 0.0));
  return result;
}

}  // namespace qs
