#include "sampling/schedule.hpp"

#include "common/require.hpp"
#include "distdb/distributed_database.hpp"

namespace qs {

namespace {

/// A backend that records the schedule and does nothing else — the formal
/// witness that the circuit driver consults only public knowledge.
class DryRunBackend final : public SamplingBackend {
 public:
  DryRunBackend(std::size_t machines, Transcript& transcript)
      : machines_(machines), transcript_(transcript) {}

  std::size_t num_machines() const override { return machines_; }
  void prep_uniform(bool) override {}
  void phase_good(double) override {}
  void phase_initial(double) override {}
  void rotation_u(bool) override {}
  void global_phase(double) override {}

  void oracle(std::size_t j, bool adjoint) override {
    transcript_.record_sequential(j, adjoint);
  }
  void parallel_total_shift(bool) override {
    // The composite spends one O and one O† round (Lemma 4.4).
    transcript_.record_parallel_round(false);
    transcript_.record_parallel_round(true);
  }

 private:
  std::size_t machines_;
  Transcript& transcript_;
};

/// A dry-run backend that additionally reports the coordinator-local
/// unitaries, so the static analyzer can see the full C† 𝒰 C structure of
/// every distributing-operator application (Lemmas 4.2/4.4), not just the
/// oracle traffic.
class TracingBackend final : public SamplingBackend {
 public:
  TracingBackend(std::size_t machines,
                 const std::function<void(const ScheduleEvent&)>& visit)
      : machines_(machines), visit_(visit) {}

  std::size_t num_machines() const override { return machines_; }
  void prep_uniform(bool adjoint) override { local("F", adjoint); }
  void phase_good(double varphi) override { local("S_chi", false, varphi); }
  void phase_initial(double phi) override { local("S_0", false, phi); }
  void rotation_u(bool adjoint) override { local("U", adjoint); }
  void global_phase(double phase) override { local("phase", false, phase); }

  void oracle(std::size_t j, bool adjoint) override {
    visit_({ScheduleEvent::Kind::kOracle, j, adjoint, ""});
  }
  void parallel_total_shift(bool) override {
    // One O and one O† round, exactly as DryRunBackend records them.
    visit_({ScheduleEvent::Kind::kParallelRound, 0, false, ""});
    visit_({ScheduleEvent::Kind::kParallelRound, 0, true, ""});
  }

 private:
  void local(const char* label, bool adjoint, double phase = 0.0) {
    visit_({ScheduleEvent::Kind::kLocalUnitary, 0, adjoint, label, phase});
  }

  std::size_t machines_;
  const std::function<void(const ScheduleEvent&)>& visit_;
};

AAPlan plan_from(const PublicParams& params) {
  QS_REQUIRE(params.universe > 0 && params.machines > 0 && params.nu > 0,
             "invalid public parameters");
  QS_REQUIRE(params.total > 0, "cannot schedule sampling of an empty store");
  const double a = static_cast<double>(params.total) /
                   (static_cast<double>(params.nu) *
                    static_cast<double>(params.universe));
  QS_REQUIRE(a <= 1.0 + 1e-12, "M exceeds νN — inconsistent parameters");
  return plan_zero_error(a);
}

}  // namespace

PublicParams public_params_of(const DistributedDatabase& db) {
  return PublicParams{db.universe(), db.num_machines(), db.nu(), db.total()};
}

Transcript compile_schedule(const PublicParams& params, QueryMode mode) {
  const AAPlan plan = plan_from(params);
  Transcript transcript;
  DryRunBackend backend(params.machines, transcript);
  run_sampling_circuit(backend, mode, plan);
  return transcript;
}

Transcript compile_schedule(const DistributedDatabase& db, QueryMode mode) {
  return compile_schedule(public_params_of(db), mode);
}

void for_each_schedule_event(
    const PublicParams& params, QueryMode mode,
    const std::function<void(const ScheduleEvent&)>& visit) {
  QS_REQUIRE(static_cast<bool>(visit), "schedule visitor must be callable");
  const AAPlan plan = plan_from(params);
  TracingBackend backend(params.machines, visit);
  run_sampling_circuit(backend, mode, plan);
}

std::uint64_t compiled_schedule_length(const PublicParams& params,
                                       QueryMode mode) {
  const AAPlan plan = plan_from(params);
  const auto d = static_cast<std::uint64_t>(plan.d_applications());
  return mode == QueryMode::kSequential
             ? d * 2 * static_cast<std::uint64_t>(params.machines)
             : d * 4;
}

}  // namespace qs
