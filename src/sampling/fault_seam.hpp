// Oracle-interposition seam: where fault injection meets the hot path.
//
// The fault/recovery subsystem (src/faults, docs/ROBUSTNESS.md) must be
// able to interpose on every oracle event the circuit executes — to replay
// a recovered schedule in which a crashed machine's queries were deferred
// within their C block — without the sampling layer depending on the
// faults library (faults depends on sampling, not the reverse).
//
// This header is that seam: a THREAD-LOCAL pointer consulted by
// SingleStateBackend before each oracle application. Thread-local rather
// than process-global so that concurrent serving workers (src/serving,
// docs/SERVING.md) can each run an independently faulted preparation —
// job A's armed fault plan must never interpose on job B's schedule
// executing on another thread. A schedule always executes entirely on the
// thread that installed the scope, so thread locality loses nothing. The
// DISABLED cost — what every fault-free run pays — is one thread-local
// load and a never-taken branch per oracle event, the same shape as the
// telemetry enable flags, and is measured by bench/bench_fault_overhead.cpp
// and gated in CI via `dqs_trace --overhead --fault-baseline` (≤0.5% of
// the cheapest kernel, like the telemetry gate).
//
// Interposers may only PERMUTE machine indices within what the recovery
// planner proved protocol-equivalent (the sequential oracles O_j are
// commuting exact permutations, Eq. 1); the backend still performs the
// actual application, transcript recording and query accounting, so an
// interposer can never bypass the ledger or forge transcript evidence.
#pragma once

#include <cstddef>

namespace qs {

/// Interface consulted once per oracle event while installed. Implemented
/// by the recovery replayer in src/faults/recovery.cpp.
class OracleInterposer {
 public:
  virtual ~OracleInterposer() = default;

  /// The circuit is about to execute a sequential oracle on `scheduled`.
  /// Returns the machine to query instead (the recovered-schedule slot);
  /// an identity interposer returns `scheduled`.
  virtual std::size_t on_sequential(std::size_t scheduled, bool adjoint) = 0;

  /// The circuit is about to count one parallel oracle round.
  virtual void on_parallel_round(bool adjoint) = 0;
};

namespace detail {
inline thread_local OracleInterposer* oracle_interposer_ptr = nullptr;
}  // namespace detail

/// The calling thread's active interposer, or nullptr (the fault-free
/// fast path).
inline OracleInterposer* oracle_interposer() noexcept {
  return detail::oracle_interposer_ptr;
}

/// RAII installation on the CALLING THREAD; restores the previous
/// interposer on destruction so scopes nest (a recovered run inside a
/// recovered run is still exact). The schedule must execute on the thread
/// that holds the scope — true for every executor in this library.
class OracleInterposerScope {
 public:
  explicit OracleInterposerScope(OracleInterposer& interposer) noexcept
      : previous_(detail::oracle_interposer_ptr) {
    detail::oracle_interposer_ptr = &interposer;
  }

  OracleInterposerScope(const OracleInterposerScope&) = delete;
  OracleInterposerScope& operator=(const OracleInterposerScope&) = delete;

  ~OracleInterposerScope() { detail::oracle_interposer_ptr = previous_; }

 private:
  OracleInterposer* previous_;
};

}  // namespace qs
