// Classical baselines under the same multiplicity-query interface.
//
// The introduction argues that with classical communication the coordinator
// effectively has to ask every machine about every element — Θ(nN) queries
// — before it can sample exactly. These baselines make that concrete under
// a classical query model where one query returns one multiplicity c_ij:
//
//   * full_scan        — learn every c_ij (nN queries), then sample freely;
//   * early_stop_scan  — same, but stops as soon as the accumulated total
//                        reaches the public M (best case, still Θ(nN) in
//                        the worst case);
//   * rejection        — the classical analogue of the quantum algorithm:
//                        draw i uniformly, learn c_i with n queries, accept
//                        with probability c_i/ν. Expected n·νN/M queries
//                        PER SAMPLE — exactly the quadratic gap to the
//                        quantum n·√(νN/M).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "distdb/distributed_database.hpp"

namespace qs {

struct ClassicalScanResult {
  std::uint64_t queries = 0;            ///< multiplicity probes performed
  std::vector<std::uint64_t> counts;    ///< learned joint counts c_i
};

/// Learn the complete joint multiplicity vector: exactly n·N queries.
ClassicalScanResult classical_full_scan(const DistributedDatabase& db);

/// As full_scan, but stop as soon as the learned mass reaches M (which is
/// public). Unlearned entries are reported as 0 — correct because all mass
/// has been located.
ClassicalScanResult classical_early_stop_scan(const DistributedDatabase& db);

struct ClassicalRejectionResult {
  std::uint64_t queries = 0;
  std::vector<std::size_t> samples;
};

/// Rejection sampling: per attempt, pick i uniformly, query all n machines
/// (n queries), accept with probability c_i/ν. Produces exact samples from
/// the joint distribution; expected queries per sample = n·νN/M.
ClassicalRejectionResult classical_rejection_sampling(
    const DistributedDatabase& db, std::size_t num_samples, Rng& rng);

}  // namespace qs
