// Ahead-of-time compilation of the oblivious query schedule.
//
// Obliviousness (Section 3) means the entire coordinator↔machine
// communication pattern is a function of PUBLIC knowledge alone. This
// module makes that constructive: compile_schedule() produces the complete
// transcript from (N, n, ν, M) without ever touching a database, via a
// dry-run backend that performs no state evolution. The test suite then
// checks that real sampler runs on ANY database with those public
// parameters produce exactly the compiled transcript — obliviousness as an
// executable artifact rather than a proof obligation.
#pragma once

#include <cstdint>
#include <functional>

#include "distdb/transcript.hpp"
#include "sampling/circuit.hpp"

namespace qs {

/// The knowledge the coordinator is allowed to schedule from.
struct PublicParams {
  std::size_t universe = 0;   ///< N
  std::size_t machines = 0;   ///< n
  std::uint64_t nu = 0;       ///< ν
  std::uint64_t total = 0;    ///< M

  friend bool operator==(const PublicParams&, const PublicParams&) = default;
};

PublicParams public_params_of(const DistributedDatabase& db);

/// Compile the full oracle-call schedule of the zero-error sampler for the
/// given public parameters and query model.
Transcript compile_schedule(const PublicParams& params, QueryMode mode);

/// Convenience overload: compile from a database's PUBLIC parameters only.
/// Reads nothing but the public aggregates — the static obliviousness
/// audit (src/analysis) asserts this via the Dataset taint counters.
Transcript compile_schedule(const DistributedDatabase& db, QueryMode mode);

/// Number of oracle events the schedule will contain (cheap, no dry run):
/// d_applications · 2n for sequential, · 4 for parallel.
std::uint64_t compiled_schedule_length(const PublicParams& params,
                                       QueryMode mode);

/// One step of the compiled circuit as visited by for_each_schedule_event:
/// the oracle events of the Transcript plus the coordinator-LOCAL unitaries
/// between them, which a bare transcript omits. This is the iteration hook
/// the static analyzer lifts into its protocol IR — the labels let it check
/// that every distributing-operator application is the well-nested C† 𝒰 C
/// pattern of Lemmas 4.2/4.4.
struct ScheduleEvent {
  enum class Kind : std::uint8_t {
    kOracle,         // sequential O_j / O_j† (one query to machine j)
    kParallelRound,  // one collective round of O / O†
    kLocalUnitary,   // data-independent coordinator operation
  };
  Kind kind = Kind::kLocalUnitary;
  std::size_t machine = 0;  ///< kOracle only
  bool adjoint = false;     ///< kOracle / kParallelRound / kLocalUnitary
  /// kLocalUnitary: which operation — "F" (state prep), "U" (Eq. 6
  /// rotation), "S_chi", "S_0" (phase oracles), "phase" (global phase).
  const char* label = "";
  /// kLocalUnitary "S_chi" / "S_0" / "phase": the rotation angle (φ, ϕ, or
  /// the global phase). The abstract interpreter (src/analysis/abstint)
  /// replays the exact 2×2 reduced AA dynamics from these angles alone, so
  /// the zero-error guarantee is certified without simulating amplitudes.
  double phase = 0.0;
};

/// Dry-run the compiled circuit, visiting every event in schedule order.
/// Same validation and determinism guarantees as compile_schedule().
void for_each_schedule_event(
    const PublicParams& params, QueryMode mode,
    const std::function<void(const ScheduleEvent&)>& visit);

}  // namespace qs
