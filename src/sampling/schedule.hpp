// Ahead-of-time compilation of the oblivious query schedule.
//
// Obliviousness (Section 3) means the entire coordinator↔machine
// communication pattern is a function of PUBLIC knowledge alone. This
// module makes that constructive: compile_schedule() produces the complete
// transcript from (N, n, ν, M) without ever touching a database, via a
// dry-run backend that performs no state evolution. The test suite then
// checks that real sampler runs on ANY database with those public
// parameters produce exactly the compiled transcript — obliviousness as an
// executable artifact rather than a proof obligation.
#pragma once

#include <cstdint>

#include "distdb/transcript.hpp"
#include "sampling/circuit.hpp"

namespace qs {

/// The knowledge the coordinator is allowed to schedule from.
struct PublicParams {
  std::size_t universe = 0;   ///< N
  std::size_t machines = 0;   ///< n
  std::uint64_t nu = 0;       ///< ν
  std::uint64_t total = 0;    ///< M

  friend bool operator==(const PublicParams&, const PublicParams&) = default;
};

PublicParams public_params_of(const DistributedDatabase& db);

/// Compile the full oracle-call schedule of the zero-error sampler for the
/// given public parameters and query model.
Transcript compile_schedule(const PublicParams& params, QueryMode mode);

/// Number of oracle events the schedule will contain (cheap, no dry run):
/// d_applications · 2n for sequential, · 4 for parallel.
std::uint64_t compiled_schedule_length(const PublicParams& params,
                                       QueryMode mode);

}  // namespace qs
