// Hierarchical query architecture — the paper's future-work direction
// ("other types of architecture close to the practical scenario for a
// quantum network", Section 6), built from the same primitives.
//
// Machines are partitioned into g groups, each with a group leader. Within
// a group, the leader drives its members with the PARALLEL oracle of
// Eq. (3); across groups, the coordinator proceeds SEQUENTIALLY. One
// application of the distributing operator D costs, in leader↔coordinator
// rounds:
//
//   * 1 round per direction for a singleton group (its oracle adds
//     directly into the coordinator's counter, as in Lemma 4.2), and
//   * 2 rounds per direction for a larger group (the leader aggregates
//     member counts through ancillas, as in Lemma 4.4).
//
// So D costs Σ_g round(g) with round(g) ∈ {2, 4}: exactly 2n rounds when
// every group is a singleton (the sequential model) and exactly 4 when all
// machines share one group (the parallel model) — the architecture
// interpolates between Theorems 4.3 and 4.5, and the total sampler cost is
// Θ(g·√(νN/M)). Experiment F5 sweeps g to exhibit the interpolation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "qsim/noise.hpp"
#include "sampling/samplers.hpp"

namespace qs {

/// A partition of the machine indices {0, ..., n-1} into disjoint,
/// non-empty groups.
struct Partition {
  std::vector<std::vector<std::size_t>> groups;

  std::size_t num_groups() const noexcept { return groups.size(); }

  /// Throws unless the groups exactly cover {0, ..., machines-1}.
  void validate(std::size_t machines) const;
};

/// Split n machines into `num_groups` contiguous, balanced groups.
Partition contiguous_partition(std::size_t machines, std::size_t num_groups);

struct HierarchicalResult {
  StateVector state;
  CoordinatorLayout registers;
  AAPlan plan;
  /// Coordinator↔leader rounds consumed (the architecture's cost metric).
  std::uint64_t group_rounds = 0;
  /// Individual machine-oracle invocations (for cross-checking).
  std::uint64_t machine_invocations = 0;
  double fidelity = 0.0;
};

/// Rounds one D application costs under the partition (Σ_g round(g)).
std::uint64_t hierarchical_rounds_per_d(const Partition& partition);

/// Run the zero-error sampling circuit under the hierarchical architecture.
HierarchicalResult run_hierarchical_sampler(const DistributedDatabase& db,
                                            const Partition& partition,
                                            StatePrep prep = StatePrep::kHouseholder);

/// Noisy variant: the NoiseModel's per-round channels strike after every
/// GROUP round (the architecture's latency unit), and per-qubit-trip
/// dephasing scales with each group's wire traffic. Used by the
/// architecture advisor to rank hierarchies under real channels.
struct NoisyHierarchicalResult {
  double mean_fidelity = 0.0;
  double stddev_fidelity = 0.0;
  std::uint64_t group_rounds = 0;  ///< per trajectory
  std::size_t trajectories = 0;
};
NoisyHierarchicalResult run_noisy_hierarchical_sampler(
    const DistributedDatabase& db, const Partition& partition,
    const NoiseModel& noise, std::size_t trajectories, Rng& rng,
    StatePrep prep = StatePrep::kHouseholder);

}  // namespace qs
