#include "sampling/noisy_sampler.hpp"

#include <cmath>
#include <vector>

#include "common/require.hpp"
#include "distdb/communication.hpp"

namespace qs {

NoisyBackend::NoisyBackend(const DistributedDatabase& db, StatePrep prep,
                           const NoiseModel& noise, Rng& rng)
    : inner_(db, prep), db_(db), noise_(noise), rng_(rng) {
  if (noise_.dephasing_per_qubit_trip > 0.0) {
    const auto elem_q = qubits_for_dimension(db.universe());
    const auto counter_q = qubits_for_dimension(db.nu() + 1);
    // One sequential query: the element + counter registers travel there
    // and back.
    const double seq_trips = 2.0 * static_cast<double>(elem_q + counter_q);
    // One parallel round: n three-register bundles each way.
    const double par_trips = 2.0 * static_cast<double>(db.num_machines()) *
                             static_cast<double>(elem_q + counter_q + 1);
    const double p = noise_.dephasing_per_qubit_trip;
    transport_p_sequential_ = 1.0 - std::pow(1.0 - p, seq_trips);
    transport_p_parallel_ = 1.0 - std::pow(1.0 - p, par_trips);
  }
}

std::size_t NoisyBackend::num_machines() const {
  return inner_.num_machines();
}

void NoisyBackend::prep_uniform(bool adjoint) { inner_.prep_uniform(adjoint); }
void NoisyBackend::phase_good(double phi) { inner_.phase_good(phi); }
void NoisyBackend::phase_initial(double phi) { inner_.phase_initial(phi); }
void NoisyBackend::rotation_u(bool adjoint) { inner_.rotation_u(adjoint); }
void NoisyBackend::global_phase(double angle) { inner_.global_phase(angle); }

void NoisyBackend::inject_round_noise() {
  const auto& regs = inner_.registers();
  if (noise_.dephasing_per_round > 0.0) {
    apply_dephasing_trajectory(inner_.state(), regs.elem,
                               noise_.dephasing_per_round, rng_);
  }
  if (noise_.depolarizing_per_round > 0.0) {
    apply_depolarizing_trajectory(inner_.state(), regs.flag,
                                  noise_.depolarizing_per_round, rng_);
  }
}

void NoisyBackend::inject_transport_noise(double probability) {
  if (probability <= 0.0) return;
  apply_dephasing_trajectory(inner_.state(), inner_.registers().elem,
                             probability, rng_);
}

void NoisyBackend::oracle(std::size_t j, bool adjoint) {
  inner_.oracle(j, adjoint);
  inject_transport_noise(transport_p_sequential_);
  if (noise_.oracle_fault_rate > 0.0 &&
      rng_.bernoulli(noise_.oracle_fault_rate)) {
    // Corrupted answer: every multiplicity reported off by +1 (mod ν+1).
    const auto& regs = inner_.registers();
    const std::vector<std::size_t> ones(
        inner_.state().layout().dim(regs.elem), 1);
    inner_.state().apply_value_shift(regs.count, regs.elem, ones);
  }
  inject_round_noise();
}

void NoisyBackend::parallel_total_shift(bool adjoint) {
  inner_.parallel_total_shift(adjoint);
  // The composite spends two rounds; each is a noise opportunity.
  for (int round = 0; round < 2; ++round) {
    inject_transport_noise(transport_p_parallel_);
    if (noise_.oracle_fault_rate > 0.0 &&
        rng_.bernoulli(noise_.oracle_fault_rate)) {
      const auto& regs = inner_.registers();
      const std::vector<std::size_t> ones(
          inner_.state().layout().dim(regs.elem), 1);
      inner_.state().apply_value_shift(regs.count, regs.elem, ones);
    }
    inject_round_noise();
  }
}

NoisyRunResult run_noisy_sampler(const DistributedDatabase& db,
                                 QueryMode mode, const NoiseModel& noise,
                                 std::size_t trajectories, Rng& rng,
                                 StatePrep prep) {
  QS_REQUIRE(trajectories > 0, "need at least one trajectory");
  const double a = static_cast<double>(db.total()) /
                   (static_cast<double>(db.nu()) *
                    static_cast<double>(db.universe()));
  const AAPlan plan = plan_zero_error(a);
  const StateVector target = target_full_state(db);

  Accumulator fidelities;
  std::uint64_t rounds = 0;
  for (std::size_t t = 0; t < trajectories; ++t) {
    db.reset_stats();
    NoisyBackend backend(db, prep, noise, rng);
    run_sampling_circuit(backend, mode, plan);
    fidelities.add(pure_fidelity(target, backend.state()));
    if (t == 0) {
      const auto stats = db.stats();
      rounds = mode == QueryMode::kSequential ? stats.total_sequential()
                                              : stats.parallel_rounds;
    }
  }

  NoisyRunResult result;
  result.mean_fidelity = fidelities.mean();
  result.stddev_fidelity = fidelities.stddev();
  result.min_fidelity = fidelities.min();
  result.trajectories = trajectories;
  result.noisy_rounds_per_trajectory = rounds;
  return result;
}

}  // namespace qs
