#include "sampling/circuit.hpp"

#include <numbers>

namespace qs {

void apply_distributing_operator(SamplingBackend& backend, QueryMode mode,
                                 bool adjoint) {
  if (mode == QueryMode::kSequential) {
    const std::size_t n = backend.num_machines();
    for (std::size_t j = 0; j < n; ++j) backend.oracle(j, /*adjoint=*/false);
    backend.rotation_u(adjoint);
    for (std::size_t j = n; j-- > 0;) backend.oracle(j, /*adjoint=*/true);
  } else {
    backend.parallel_total_shift(/*adjoint=*/false);
    backend.rotation_u(adjoint);
    backend.parallel_total_shift(/*adjoint=*/true);
  }
}

void apply_q_iterate(SamplingBackend& backend, QueryMode mode, double varphi,
                     double phi) {
  // Q(φ,ϕ) = −A S_0(ϕ) A† S_χ(φ) with A = D (F ⊗ I); rightmost factor
  // first.
  backend.phase_good(varphi);                         // S_χ(φ)
  apply_distributing_operator(backend, mode, true);   // D†
  backend.prep_uniform(/*adjoint=*/true);             // F†
  backend.phase_initial(phi);                         // S_0(ϕ)
  backend.prep_uniform(/*adjoint=*/false);            // F
  apply_distributing_operator(backend, mode, false);  // D
  backend.global_phase(std::numbers::pi);             // leading −1
}

void run_sampling_circuit(
    SamplingBackend& backend, QueryMode mode, const AAPlan& plan,
    const std::function<void(std::size_t iteration)>& after_iteration) {
  constexpr double kPi = std::numbers::pi;

  // A|0⟩ = D |π, 0, 0⟩  (Eq. 7).
  backend.prep_uniform(/*adjoint=*/false);
  apply_distributing_operator(backend, mode, /*adjoint=*/false);
  if (after_iteration) after_iteration(0);
  if (plan.already_exact) return;

  for (std::size_t i = 0; i < plan.full_iterations; ++i) {
    apply_q_iterate(backend, mode, kPi, kPi);
    if (after_iteration) after_iteration(i + 1);
  }
  if (plan.needs_final) {
    apply_q_iterate(backend, mode, plan.final_varphi, plan.final_phi);
    if (after_iteration) after_iteration(plan.full_iterations + 1);
  }
}

}  // namespace qs
