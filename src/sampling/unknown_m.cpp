#include "sampling/unknown_m.hpp"

#include <cmath>
#include <numbers>

#include "common/require.hpp"
#include "qsim/controlled.hpp"

namespace qs {

UnknownMResult run_unknown_m_sampler(const DistributedDatabase& db,
                                     QueryMode mode, Rng& rng,
                                     StatePrep prep,
                                     std::size_t max_attempts) {
  constexpr double kPi = std::numbers::pi;
  constexpr double kLambda = 6.0 / 5.0;  // BBHT growth factor
  // Beyond √(νN) iterations the rotation has certainly wrapped; cap there.
  const double m_cap = std::sqrt(static_cast<double>(db.nu()) *
                                 static_cast<double>(db.universe())) +
                       1.0;

  db.reset_stats();
  double m = 1.0;
  for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    const auto bound = static_cast<std::uint64_t>(std::ceil(m));
    const auto j = static_cast<std::size_t>(rng.uniform_below(bound));

    // Fresh preparation + j plain Grover iterates. Stats accumulate on the
    // shared database ledger across attempts.
    SingleStateBackend backend(db, prep);
    backend.prep_uniform(false);
    apply_distributing_operator(backend, mode, false);
    for (std::size_t q = 0; q < j; ++q) {
      // One Q(π, π) iterate, phrased through the shared circuit driver.
      apply_q_iterate(backend, mode, kPi, kPi);
    }

    // Coordinator-local measurement of the flag register.
    const auto outcome =
        measure_and_collapse(backend.state(), backend.registers().flag, rng);
    if (outcome == 0) {
      // Exact collapse onto |ψ, 0, 0⟩.
      UnknownMResult result{std::move(backend.state()),
                            backend.registers(), db.stats(), attempt, 0.0};
      result.fidelity =
          pure_fidelity(target_full_state(db), result.state);
      return result;
    }
    m = std::min(kLambda * m, m_cap);
  }
  QS_REQUIRE(false,
             "unknown-M sampler failed repeatedly — the database is "
             "(almost certainly) empty");
  // Unreachable.
  return UnknownMResult{StateVector(RegisterLayout{}), {}, {}, 0, 0.0};
}

}  // namespace qs
