// Protocol IR for the static schedule analyzer (dqs-verify).
//
// The paper's correctness claims are STRUCTURAL: the coordinator's schedule
// is a function of public knowledge alone (Section 3), every
// distributing-operator application decomposes as the well-nested C† 𝒰 C
// query pattern of Lemmas 4.2/4.4, and the total oracle cost matches the
// closed forms of Theorems 4.3/4.5. This module lifts compiled schedules
// and recorded transcripts into a typed protocol program over MICRO-OPS —
// explicit send / apply / receive steps plus collective round brackets —
// so checker passes (passes.hpp) can verify those claims without
// simulating a single amplitude. Mirrors the compile-to-IR-then-verify
// route CUDA-Q takes for circuit validation.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "distdb/transcript.hpp"
#include "sampling/schedule.hpp"

namespace qs::analysis {

/// Micro-operations of the communication protocol. A sequential transcript
/// event O_j lowers to kSend(j) · kOracle(j) · kRecv(j); a parallel round
/// lowers to kParallelBegin · kParallelOracle · kParallelEnd. Compiled
/// lifts additionally carry kLocalUnitary markers for the coordinator-side
/// operations between queries (F, 𝒰, S_χ, S_0).
enum class OpKind : std::uint8_t {
  kSend,            // coordinator ships [elem, count] bundle to a machine
  kOracle,          // that machine applies O_j / O_j† (needs the bundle)
  kRecv,            // the machine returns the bundle to the coordinator
  kLocalUnitary,    // data-independent coordinator operation
  kParallelBegin,   // collective round opens: bundle broadcast to all
  kParallelOracle,  // every machine applies O / O† simultaneously
  kParallelEnd,     // collective round closes: bundle gathered back
};

/// Sentinel for ops that do not originate from a transcript event.
inline constexpr std::size_t kNoEvent =
    std::numeric_limits<std::size_t>::max();

/// Two-point taint lattice for the noninterference/taint domain
/// (abstint/domains.hpp): kPublic < kContent. An op is kPublic when its
/// existence, position and every field are functions of PublicParams alone;
/// kContent marks influence from dataset contents. All in-tree lifts emit
/// kPublic ops by construction — lift_compiled walks
/// for_each_schedule_event, which closes over nothing but PublicParams, and
/// lift_transcript/lift_events only reshape recorded event structure — so a
/// kContent label can only enter through a lift that consulted the
/// database, which is exactly what the taint domain must reject
/// (Section 3's obliviousness requirement, proved statically).
enum class TaintLabel : std::uint8_t {
  kPublic = 0,   ///< determined by (N, n, ν, M) and the query mode
  kContent = 1,  ///< influenced by dataset contents
};

struct ProtocolOp {
  OpKind kind = OpKind::kLocalUnitary;
  std::size_t machine = 0;  ///< kSend / kOracle / kRecv
  bool adjoint = false;     ///< oracle-carrying and local-unitary ops
  std::string label;        ///< kLocalUnitary: "F", "U", "S_chi", "S_0", …
  /// Transcript event this op was lowered from (micro-ops of one event
  /// share it); kNoEvent for pure-local ops.
  std::size_t event = kNoEvent;
  /// kLocalUnitary "S_chi" / "S_0" / "phase": the rotation angle. The
  /// abstract interpreter's amplitude-class domain (abstint/) replays the
  /// reduced 2×2 AA dynamics from these angles to certify zero-error
  /// termination without simulating.
  double phase = 0.0;
  /// Provenance label for the taint domain; kPublic for every op a
  /// data-blind lift produces.
  TaintLabel taint = TaintLabel::kPublic;

  friend bool operator==(const ProtocolOp&, const ProtocolOp&) = default;
};

/// A typed protocol program: the micro-op stream plus the public knowledge
/// it is claimed to be a function of. All checker passes take this.
struct ProtocolProgram {
  PublicParams params;
  QueryMode mode = QueryMode::kSequential;
  std::vector<ProtocolOp> ops;
  /// Number of transcript events the program was lowered from.
  std::size_t num_events = 0;
  /// True when the lift included coordinator-local unitaries (compiled
  /// lifts do; bare transcript lifts cannot know where they were).
  bool has_local_unitaries = false;
};

/// Lower a recorded transcript into a protocol program. Oracle events only
/// (has_local_unitaries = false).
ProtocolProgram lift_transcript(const Transcript& transcript,
                                const PublicParams& params, QueryMode mode);

/// Same lowering from a bare event sequence — the entry point for
/// recovered schedules (abstint/recovered.hpp), whose executed order lives
/// outside a Transcript.
ProtocolProgram lift_events(const std::vector<TranscriptEvent>& events,
                            const PublicParams& params, QueryMode mode);

/// Compile the schedule for (params, mode) via the sampling layer's
/// for_each_schedule_event hook and lower it, local unitaries included.
ProtocolProgram lift_compiled(const PublicParams& params, QueryMode mode);

/// One machine-readable finding of a checker pass.
struct Diagnostic {
  std::string pass;                  ///< checker id, e.g. "adjoint-nesting"
  std::optional<std::size_t> event;  ///< offending transcript event index
  std::string message;               ///< what is wrong
  std::string fix_hint;              ///< how a correct schedule avoids it
};

/// "[pass] event <k>: message (fix: hint)" — one line, grep-friendly.
std::string to_string(const Diagnostic& d);

}  // namespace qs::analysis
