// The canonical (N, n, ν, M) sweep the analyzer certifies.
//
// standard_grid() spans the parameter ranges the test suite and the bench
// harness exercise (bench_util.hpp additionally verifies every database a
// bench actually constructs, so runtime-chosen ν values are covered too),
// including the degenerate corners: a single machine (n = 1), full
// occupancy (M = N with unit capacity), and the zero-Grover-iterate case
// a = M/(νN) = 1 where A|0⟩ is already the target (plan.already_exact).
#pragma once

#include <cstdint>
#include <vector>

#include "sampling/schedule.hpp"

namespace qs::analysis {

inline std::vector<PublicParams> standard_grid() {
  std::vector<PublicParams> grid;
  // Broad sweep: universe × machines × capacity, with M at the low end,
  // midway and at the νN ceiling.
  for (const std::size_t universe : {4u, 16u, 64u, 256u}) {
    for (const std::size_t machines : {1u, 2u, 3u, 8u}) {
      for (const std::uint64_t nu : {1u, 2u, 5u}) {
        const std::uint64_t ceiling = nu * universe;
        for (const std::uint64_t total :
             {std::uint64_t{1}, ceiling / 2, ceiling}) {
          if (total == 0) continue;
          grid.push_back({universe, machines, nu, total});
        }
      }
    }
  }
  // Named degenerate corners (some repeat sweep points; harmless).
  grid.push_back({1, 1, 1, 1});     // smallest legal instance, a = 1
  grid.push_back({8, 1, 3, 9});     // single machine, fractional a
  grid.push_back({16, 4, 1, 16});   // M = N at unit capacity (a = 1)
  grid.push_back({32, 2, 4, 128});  // M = νN exactly — zero Grover iterates
  return grid;
}

}  // namespace qs::analysis
