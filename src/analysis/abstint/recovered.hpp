// Recovery-liveness domain: certifying fault-recovered schedules.
//
// The fault-recovery layer (src/faults) may permute a C block's queries
// (deferred slots re-enter as a work list), mirror the executed order in
// the matching C† block, and re-issue failed attempts charged to a
// separate retry ledger. This module generalizes the ownership/liveness
// reasoning to those schedules: a RecoveredSchedule carries the executed
// event order PLUS the per-event attempt counts and the retry ledger, and
// check_recovery_liveness() verifies the whole recovery contract
// statically — block-permutation-only reordering, mirrored adjoints, no
// displaced collective rounds, and retry cost fully ledgered so the
// primary Thm 4.3/4.5 budgets still certify. src/faults converts a live
// RecoveryOutcome into this struct (to_recovered_schedule), keeping the
// analysis layer free of any dependency on the fault machinery.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/ir.hpp"
#include "distdb/query_stats.hpp"
#include "distdb/transcript.hpp"

namespace qs::analysis {

struct RecoveredSchedule {
  /// The recovered primary schedule in executed order.
  std::vector<TranscriptEvent> events;
  /// Attempts consumed per event, including the success (≥ 1).
  std::vector<std::uint32_t> attempts;
  /// Whether the event executed out of canonical block order.
  std::vector<std::uint8_t> displaced;
  /// Failed/re-issued attempts, charged separately from the primary ledger.
  QueryStats retry;
  std::uint64_t failed_attempts = 0;  ///< == retry ledger total
  std::uint64_t backoff_events = 0;   ///< logical events spent waiting
};

/// The trivial recovery of a fault-free schedule: every event executed
/// once, in place, with an empty retry ledger. Baseline for tests and
/// mutation fixtures.
RecoveredSchedule identity_recovery(const Transcript& schedule,
                                    std::size_t machines);

/// Lower recovered events into a protocol program (same micro-op lowering
/// as lift_transcript).
ProtocolProgram lift_recovered(const RecoveredSchedule& recovered,
                               const PublicParams& params, QueryMode mode);

/// The recovery-liveness checks, reported under the "recovery-liveness"
/// pass id:
///   * the schedule has the canonical d·(2n sequential / 4 parallel) block
///     shape, each C block a permutation of O_0…O_{n-1} and each C† block
///     its exact mirror (Lemma 4.2 queries commute within a block — any
///     other reordering is unsound);
///   * collective rounds are never displaced (their order is fixed);
///   * every event consumed ≥ 1 attempt, re-issued attempts are covered by
///     the failed-attempt count, and the failed attempts are fully charged
///     to the retry ledger (sized to the machine count) — so the primary
///     budget the cost domain certifies is exactly the fault-free one.
std::vector<Diagnostic> check_recovery_liveness(
    const RecoveredSchedule& recovered, const PublicParams& params,
    QueryMode mode);

}  // namespace qs::analysis
