#include "analysis/abstint/recovered.hpp"

#include <optional>
#include <string>

#include "sampling/amplitude_amplification.hpp"

namespace qs::analysis {

namespace {

constexpr const char* kPass = "recovery-liveness";

std::string str(std::uint64_t v) { return std::to_string(v); }

}  // namespace

RecoveredSchedule identity_recovery(const Transcript& schedule,
                                    std::size_t machines) {
  RecoveredSchedule recovered;
  recovered.events = schedule.events();
  recovered.attempts.assign(recovered.events.size(), 1);
  recovered.displaced.assign(recovered.events.size(), 0);
  recovered.retry.sequential_per_machine.assign(machines, 0);
  return recovered;
}

ProtocolProgram lift_recovered(const RecoveredSchedule& recovered,
                               const PublicParams& params, QueryMode mode) {
  return lift_events(recovered.events, params, mode);
}

std::vector<Diagnostic> check_recovery_liveness(
    const RecoveredSchedule& recovered, const PublicParams& params,
    QueryMode mode) {
  std::vector<Diagnostic> out;
  const auto& events = recovered.events;

  if (recovered.attempts.size() != events.size() ||
      recovered.displaced.size() != events.size()) {
    out.push_back({kPass, std::nullopt,
                   "attempt/displacement annotations do not cover the "
                   "schedule (" + str(recovered.attempts.size()) + "/" +
                       str(recovered.displaced.size()) + " for " +
                       str(events.size()) + " event(s))",
                   "annotate every recovered event exactly once"});
    return out;
  }

  std::uint64_t reissued = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (recovered.attempts[i] == 0) {
      out.push_back({kPass, i,
                     "event consumed zero attempts but appears in the "
                     "executed schedule",
                     "a landed event costs at least its own attempt"});
    } else {
      reissued += recovered.attempts[i] - 1;
    }
    if (recovered.displaced[i] != 0 && mode == QueryMode::kParallel) {
      out.push_back({kPass, i,
                     "a collective round executed out of order",
                     "parallel rounds are order-fixed: recovery may only "
                     "wait them out, never displace them"});
    }
  }

  // Retry accounting: every failed attempt is charged to the retry ledger,
  // and every re-issue is covered by a failed attempt. (Deferred work-list
  // visits restart an event's attempt counter, so re-issues can undercount
  // failures — hence ≤, not ==.)
  const std::uint64_t charged =
      recovered.retry.total_sequential() + recovered.retry.parallel_rounds;
  if (recovered.failed_attempts != charged) {
    out.push_back({kPass, std::nullopt,
                   str(recovered.failed_attempts) + " failed attempt(s) "
                   "but the retry ledger charges " + str(charged),
                   "charge every failed attempt to the retry QueryStats so "
                   "the primary Thm 4.3/4.5 budget stays fault-free"});
  }
  if (reissued > recovered.failed_attempts) {
    out.push_back({kPass, std::nullopt,
                   "events consumed " + str(reissued) + " re-issued "
                   "attempt(s) but only " + str(recovered.failed_attempts) +
                       " failure(s) are on the ledger",
                   "every attempt beyond the first must correspond to a "
                   "ledgered failure"});
  }
  if (recovered.retry.sequential_per_machine.size() != params.machines) {
    out.push_back({kPass, std::nullopt,
                   "retry ledger tracks " +
                       str(recovered.retry.sequential_per_machine.size()) +
                       " machine(s) for an n=" + str(params.machines) +
                       " database",
                   "size the retry ledger from the public machine count"});
  }

  // Block shape: recovery may permute within a C block and must mirror the
  // executed order in the matching C† block; everything else is fixed.
  if (params.universe == 0 || params.machines == 0 || params.nu == 0 ||
      params.total == 0 || params.total > params.nu * params.universe) {
    out.push_back({kPass, std::nullopt,
                   "inconsistent public parameters — cannot derive the "
                   "canonical block shape",
                   "recover only schedules over valid public knowledge"});
    return out;
  }
  const AAPlan plan = plan_zero_error(
      static_cast<double>(params.total) /
      (static_cast<double>(params.nu) *
       static_cast<double>(params.universe)));
  const auto d = static_cast<std::uint64_t>(plan.d_applications());
  const std::size_t n = params.machines;
  const std::size_t block =
      mode == QueryMode::kSequential ? 2 * n : std::size_t{4};
  if (events.size() != d * block) {
    out.push_back({kPass, std::nullopt,
                   "recovered schedule has " + str(events.size()) +
                       " event(s); the canonical shape is d·" + str(block) +
                       " = " + str(d * block),
                   "recovery re-orders events but never adds or drops "
                   "primary ones"});
    return out;
  }
  for (std::uint64_t b = 0; b < d; ++b) {
    const std::size_t base = static_cast<std::size_t>(b) * block;
    if (mode == QueryMode::kSequential) {
      std::vector<bool> seen(n, false);
      for (std::size_t k = 0; k < n; ++k) {
        const auto& ev = events[base + k];
        if (ev.kind != QueryKind::kSequential || ev.adjoint ||
            ev.machine >= n || seen[ev.machine]) {
          out.push_back({kPass, base + k,
                         "C block " + str(b) + " is not a permutation of "
                         "O_0…O_" + str(n - 1),
                         "Lemma 4.2 queries commute WITHIN a block — "
                         "recovery may permute a C block but must touch "
                         "every machine exactly once"});
          break;
        }
        seen[ev.machine] = true;
      }
      for (std::size_t k = 0; k < n; ++k) {
        const auto& fwd = events[base + n - 1 - k];
        const auto& adj = events[base + n + k];
        if (adj.kind != QueryKind::kSequential || !adj.adjoint ||
            adj.machine != fwd.machine) {
          out.push_back({kPass, base + n + k,
                         "C† block " + str(b) + " does not mirror its C "
                         "block's executed order",
                         "adjoints close queries in LIFO order: the C† "
                         "block replays the executed C block reversed"});
          break;
        }
      }
    } else {
      for (std::size_t k = 0; k < 4; ++k) {
        const auto& ev = events[base + k];
        const bool want_adjoint = (k % 2) == 1;
        if (ev.kind != QueryKind::kParallelRound ||
            ev.adjoint != want_adjoint) {
          out.push_back({kPass, base + k,
                         "collective block " + str(b) + " is not the "
                         "O O† O O† shape of Lemma 4.4",
                         "parallel rounds are order-fixed under recovery"});
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace qs::analysis
