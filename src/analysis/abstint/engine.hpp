// Abstract-interpretation engine over the protocol IR.
//
// interpret() executes a ProtocolProgram over the abstract domains of
// domains.hpp instead of amplitudes: one walk of the micro-op stream feeds
// the cost, amplitude-class and support domains simultaneously and emits
// Diagnostics under the pass ids "cost-domain", "amplitude-domain" and
// "support-domain" when a domain's facts contradict the paper's closed
// forms (Thms 4.3/4.5, zero-error AA, bounded support growth). The verifier
// (verifier.hpp) runs the engine alongside the structural passes, so every
// dqs_verify entry point — including the recovered transcripts dqs_chaos
// certifies — is gated by the domains; certificate.hpp serializes the
// resulting facts as dqs-cert-v1 schedule certificates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/abstint/domains.hpp"
#include "analysis/ir.hpp"

namespace qs::analysis {

struct AbstractResult {
  CostFacts cost;
  AmplitudeFacts amplitude;
  SupportFacts support;
  TaintFacts taint;
  std::vector<Diagnostic> diagnostics;
};

/// Run every abstract domain over the program in one micro-op walk.
///
/// Programs without local unitaries (bare transcript lifts) still get full
/// cost facts from their own ops; the amplitude and support domains then
/// derive their facts from the schedule compiled for the program's public
/// parameters ("closed-form" derivation) — sound because verify_transcript
/// separately certifies the transcript IS that schedule.
AbstractResult interpret(const ProtocolProgram& program);

/// The taint domain alone — one label join over the ops, no replay. Cheap
/// enough to run on every verify: this is the static obliviousness proof
/// that replaces the 3×-recompilation differential check when
/// VerifyOptions::static_obliviousness_proof is set (and what
/// bench_a2_static_obliv measures against that dynamic pass).
TaintFacts taint_of(const ProtocolProgram& program);

/// The support bound after EACH op of the program (same transfer function
/// as interpret); trace[i] bounds the support once ops[0..i] have executed.
/// Differential tests compare this per-op trace against the dense
/// simulator's observed support.
std::vector<std::uint64_t> support_trace(const ProtocolProgram& program);

/// Canonical ids of the abstract domains (including the recovery-liveness
/// domain of recovered.hpp), mirroring pass_names() for the structural
/// passes. The kill-matrix-completeness lint rule reads this registry:
/// every id must have a mutation fixture that kills it.
const std::vector<std::string>& domain_names();

}  // namespace qs::analysis
