#include "analysis/abstint/cert_io.hpp"

#include <cmath>
#include <iomanip>
#include <limits>

#include "telemetry/export.hpp"

namespace qs::analysis::cert_io {

namespace {

using telemetry::json::Value;

const char* type_name(Value::Type type) {
  switch (type) {
    case Value::Type::kNull: return "null";
    case Value::Type::kBool: return "a boolean";
    case Value::Type::kNumber: return "a number";
    case Value::Type::kString: return "a string";
    case Value::Type::kArray: return "an array";
    case Value::Type::kObject: return "an object";
  }
  return "an unknown value";
}

}  // namespace

std::string num(double v) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  return os.str();
}

void emit_u64_array(std::ostringstream& os,
                    const std::vector<std::uint64_t>& values) {
  os << '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) os << ',';
    os << values[i];
  }
  os << ']';
}

void emit_certificate_body(std::ostringstream& os, const Certificate& cert) {
  os << "\"params\": {\"universe\": " << cert.params.universe
     << ", \"machines\": " << cert.params.machines
     << ", \"nu\": " << cert.params.nu
     << ", \"total\": " << cert.params.total << "},\n\"mode\": \""
     << (cert.mode == QueryMode::kSequential ? "sequential" : "parallel")
     << "\",\n";

  const CostFacts& c = cert.cost;
  os << "\"cost\": {\"d\": " << c.d << ", \"forward_per_machine\": ";
  emit_u64_array(os, c.forward_per_machine);
  os << ", \"adjoint_per_machine\": ";
  emit_u64_array(os, c.adjoint_per_machine);
  os << ", \"sequential_total\": " << c.sequential_total
     << ", \"parallel_rounds\": " << c.parallel_rounds
     << ", \"sends\": " << c.sends << ", \"recvs\": " << c.recvs
     << ", \"closed_form\": " << c.closed_form
     << ", \"matches_closed_form\": " << bool_str(c.matches_closed_form)
     << "},\n";

  const AmplitudeFacts& a = cert.amplitude;
  os << "\"amplitude\": {\"a\": " << num(a.a) << ", \"theta\": "
     << num(a.theta) << ", \"iterations\": " << a.iterations
     << ", \"needs_final\": " << bool_str(a.needs_final)
     << ", \"already_exact\": " << bool_str(a.already_exact)
     << ", \"derivation\": \"" << telemetry::json_escape(a.derivation)
     << "\", \"success_probability\": " << num(a.success_probability)
     << ", \"residual_bad\": " << num(a.residual_bad)
     << ", \"zero_error\": " << bool_str(a.zero_error) << "},\n";

  const SupportFacts& s = cert.support;
  os << "\"support\": {\"dimension\": " << s.dimension
     << ", \"after_prep\": " << s.after_prep << ", \"bound\": " << s.bound
     << ", \"growth_f\": " << s.growth_f << ", \"growth_u\": " << s.growth_u
     << "},\n";

  const RecoveryFacts& r = cert.recovery;
  os << "\"recovery\": {\"present\": " << bool_str(r.present);
  if (r.present) {
    os << ", \"retry_per_machine\": ";
    emit_u64_array(os, r.retry.sequential_per_machine);
    os << ", \"retry_parallel_rounds\": " << r.retry.parallel_rounds
       << ", \"failed_attempts\": " << r.failed_attempts
       << ", \"backoff_events\": " << r.backoff_events
       << ", \"displaced_events\": " << r.displaced_events
       << ", \"reissued_attempts\": " << r.reissued_attempts;
  }
  os << "},\n\"diagnostics\": [";
  for (std::size_t i = 0; i < cert.diagnostics.size(); ++i) {
    if (i != 0) os << ", ";
    os << '"' << telemetry::json_escape(cert.diagnostics[i]) << '"';
  }
  os << "]";
}

void ParseCtx::fail(const std::string& path, const std::string& reason) {
  if (failed) return;
  failed = true;
  error.path = path;
  error.reason = reason;
}

const Value* field(const Value& v, const std::string& path, const char* key,
                   ParseCtx& ctx) {
  if (ctx.failed) return nullptr;
  if (!v.is_object()) {
    ctx.fail(path, std::string("expected an object, found ") +
                       type_name(v.type));
    return nullptr;
  }
  const auto it = v.object.find(key);
  if (it == v.object.end()) {
    ctx.fail(path + "." + key, "required field is missing");
    return nullptr;
  }
  return &it->second;
}

std::uint64_t read_u64(const Value& v, const std::string& path,
                       ParseCtx& ctx) {
  if (ctx.failed) return 0;
  if (v.type != Value::Type::kNumber) {
    ctx.fail(path, std::string("expected a number, found ") +
                       type_name(v.type));
    return 0;
  }
  if (v.number < 0 || std::floor(v.number) != v.number) {
    ctx.fail(path, "expected a non-negative integer, found " +
                       num(v.number));
    return 0;
  }
  return static_cast<std::uint64_t>(v.number);
}

double read_num(const Value& v, const std::string& path, ParseCtx& ctx) {
  if (ctx.failed) return 0.0;
  if (v.type != Value::Type::kNumber) {
    ctx.fail(path, std::string("expected a number, found ") +
                       type_name(v.type));
    return 0.0;
  }
  return v.number;
}

bool read_bool(const Value& v, const std::string& path, ParseCtx& ctx) {
  if (ctx.failed) return false;
  if (v.type != Value::Type::kBool) {
    ctx.fail(path, std::string("expected a boolean, found ") +
                       type_name(v.type));
    return false;
  }
  return v.boolean;
}

std::string read_string(const Value& v, const std::string& path,
                        ParseCtx& ctx) {
  if (ctx.failed) return {};
  if (v.type != Value::Type::kString) {
    ctx.fail(path, std::string("expected a string, found ") +
                       type_name(v.type));
    return {};
  }
  return v.string;
}

std::vector<std::uint64_t> read_u64_array(const Value& v,
                                          const std::string& path,
                                          ParseCtx& ctx) {
  std::vector<std::uint64_t> out;
  if (ctx.failed) return out;
  if (!v.is_array()) {
    ctx.fail(path, std::string("expected an array, found ") +
                       type_name(v.type));
    return out;
  }
  out.reserve(v.array.size());
  for (std::size_t i = 0; i < v.array.size(); ++i) {
    out.push_back(
        read_u64(v.array[i], path + "[" + std::to_string(i) + "]", ctx));
    if (ctx.failed) break;
  }
  return out;
}

std::uint64_t field_u64(const Value& v, const std::string& path,
                        const char* key, ParseCtx& ctx) {
  const Value* f = field(v, path, key, ctx);
  return f == nullptr ? 0 : read_u64(*f, path + "." + key, ctx);
}

double field_num(const Value& v, const std::string& path, const char* key,
                 ParseCtx& ctx) {
  const Value* f = field(v, path, key, ctx);
  return f == nullptr ? 0.0 : read_num(*f, path + "." + key, ctx);
}

bool field_bool(const Value& v, const std::string& path, const char* key,
                ParseCtx& ctx) {
  const Value* f = field(v, path, key, ctx);
  return f != nullptr && read_bool(*f, path + "." + key, ctx);
}

std::string field_string(const Value& v, const std::string& path,
                         const char* key, ParseCtx& ctx) {
  const Value* f = field(v, path, key, ctx);
  return f == nullptr ? std::string() : read_string(*f, path + "." + key, ctx);
}

std::vector<std::uint64_t> field_u64_array(const Value& v,
                                           const std::string& path,
                                           const char* key, ParseCtx& ctx) {
  const Value* f = field(v, path, key, ctx);
  return f == nullptr ? std::vector<std::uint64_t>()
                      : read_u64_array(*f, path + "." + key, ctx);
}

bool read_certificate_body(const Value& doc, Certificate& cert,
                           ParseCtx& ctx) {
  if (const Value* p = field(doc, "$", "params", ctx)) {
    cert.params.universe = field_u64(*p, "$.params", "universe", ctx);
    cert.params.machines = field_u64(*p, "$.params", "machines", ctx);
    cert.params.nu = field_u64(*p, "$.params", "nu", ctx);
    cert.params.total = field_u64(*p, "$.params", "total", ctx);
  }

  const std::string mode = field_string(doc, "$", "mode", ctx);
  if (!ctx.failed) {
    if (mode == "sequential") {
      cert.mode = QueryMode::kSequential;
    } else if (mode == "parallel") {
      cert.mode = QueryMode::kParallel;
    } else {
      ctx.fail("$.mode", "unknown query mode '" + mode + "'");
    }
  }

  if (const Value* c = field(doc, "$", "cost", ctx)) {
    cert.cost.d = field_u64(*c, "$.cost", "d", ctx);
    cert.cost.forward_per_machine =
        field_u64_array(*c, "$.cost", "forward_per_machine", ctx);
    cert.cost.adjoint_per_machine =
        field_u64_array(*c, "$.cost", "adjoint_per_machine", ctx);
    cert.cost.sequential_total =
        field_u64(*c, "$.cost", "sequential_total", ctx);
    cert.cost.parallel_rounds = field_u64(*c, "$.cost", "parallel_rounds", ctx);
    cert.cost.sends = field_u64(*c, "$.cost", "sends", ctx);
    cert.cost.recvs = field_u64(*c, "$.cost", "recvs", ctx);
    cert.cost.closed_form = field_u64(*c, "$.cost", "closed_form", ctx);
    cert.cost.matches_closed_form =
        field_bool(*c, "$.cost", "matches_closed_form", ctx);
  }

  if (const Value* a = field(doc, "$", "amplitude", ctx)) {
    cert.amplitude.a = field_num(*a, "$.amplitude", "a", ctx);
    cert.amplitude.theta = field_num(*a, "$.amplitude", "theta", ctx);
    cert.amplitude.iterations =
        field_u64(*a, "$.amplitude", "iterations", ctx);
    cert.amplitude.needs_final =
        field_bool(*a, "$.amplitude", "needs_final", ctx);
    cert.amplitude.already_exact =
        field_bool(*a, "$.amplitude", "already_exact", ctx);
    cert.amplitude.derivation =
        field_string(*a, "$.amplitude", "derivation", ctx);
    cert.amplitude.success_probability =
        field_num(*a, "$.amplitude", "success_probability", ctx);
    cert.amplitude.residual_bad =
        field_num(*a, "$.amplitude", "residual_bad", ctx);
    cert.amplitude.zero_error =
        field_bool(*a, "$.amplitude", "zero_error", ctx);
  }

  if (const Value* s = field(doc, "$", "support", ctx)) {
    cert.support.dimension = field_u64(*s, "$.support", "dimension", ctx);
    cert.support.after_prep = field_u64(*s, "$.support", "after_prep", ctx);
    cert.support.bound = field_u64(*s, "$.support", "bound", ctx);
    cert.support.growth_f = field_u64(*s, "$.support", "growth_f", ctx);
    cert.support.growth_u = field_u64(*s, "$.support", "growth_u", ctx);
  }

  if (const Value* r = field(doc, "$", "recovery", ctx)) {
    cert.recovery.present = field_bool(*r, "$.recovery", "present", ctx);
    if (!ctx.failed && cert.recovery.present) {
      cert.recovery.retry.sequential_per_machine =
          field_u64_array(*r, "$.recovery", "retry_per_machine", ctx);
      cert.recovery.retry.parallel_rounds =
          field_u64(*r, "$.recovery", "retry_parallel_rounds", ctx);
      cert.recovery.failed_attempts =
          field_u64(*r, "$.recovery", "failed_attempts", ctx);
      cert.recovery.backoff_events =
          field_u64(*r, "$.recovery", "backoff_events", ctx);
      cert.recovery.displaced_events =
          field_u64(*r, "$.recovery", "displaced_events", ctx);
      cert.recovery.reissued_attempts =
          field_u64(*r, "$.recovery", "reissued_attempts", ctx);
    }
  }

  if (const Value* d = field(doc, "$", "diagnostics", ctx)) {
    if (!d->is_array()) {
      ctx.fail("$.diagnostics", std::string("expected an array, found ") +
                                    type_name(d->type));
    } else {
      for (std::size_t i = 0; i < d->array.size(); ++i) {
        cert.diagnostics.push_back(read_string(
            d->array[i], "$.diagnostics[" + std::to_string(i) + "]", ctx));
        if (ctx.failed) break;
      }
    }
  }
  return !ctx.failed;
}

}  // namespace qs::analysis::cert_io
