#include "analysis/abstint/certificate.hpp"

#include <sstream>
#include <utility>

#include "analysis/abstint/cert_io.hpp"
#include "analysis/abstint/engine.hpp"
#include "analysis/verifier.hpp"
#include "common/require.hpp"
#include "telemetry/export.hpp"
#include "telemetry/json.hpp"

namespace qs::analysis {

namespace {

void fill_diagnostics(Certificate& cert, const VerifyReport& report) {
  cert.diagnostics.reserve(report.diagnostics.size());
  for (const auto& d : report.diagnostics) {
    cert.diagnostics.push_back(to_string(d));
  }
}

void fill_facts(Certificate& cert, const ProtocolProgram& program) {
  const AbstractResult res = interpret(program);
  cert.cost = res.cost;
  cert.amplitude = res.amplitude;
  cert.support = res.support;
}

}  // namespace

Certificate certify_compiled(const PublicParams& params, QueryMode mode) {
  Certificate cert;
  cert.params = params;
  cert.mode = mode;
  // Surface parameter problems as a dirty certificate instead of an
  // exception, so sweeps certify every grid point (mirrors verify_compiled).
  try {
    const ProtocolProgram program = lift_compiled(params, mode);
    fill_facts(cert, program);
    fill_diagnostics(cert, verify_program(program));
  } catch (const ContractViolation& e) {
    cert.diagnostics.push_back(
        std::string("schedule compilation rejected the public parameters: ") +
        e.what());
  }
  return cert;
}

Certificate certify_transcript(const Transcript& transcript,
                               const PublicParams& params, QueryMode mode) {
  Certificate cert;
  cert.params = params;
  cert.mode = mode;
  fill_facts(cert, lift_transcript(transcript, params, mode));
  fill_diagnostics(cert, verify_transcript(transcript, params, mode));
  return cert;
}

Certificate certify_recovered(const RecoveredSchedule& recovered,
                              const PublicParams& params, QueryMode mode) {
  Certificate cert;
  cert.params = params;
  cert.mode = mode;
  const ProtocolProgram program = lift_recovered(recovered, params, mode);
  fill_facts(cert, program);

  cert.recovery.present = true;
  cert.recovery.retry = recovered.retry;
  cert.recovery.failed_attempts = recovered.failed_attempts;
  cert.recovery.backoff_events = recovered.backoff_events;
  for (const auto flag : recovered.displaced) {
    if (flag != 0) ++cert.recovery.displaced_events;
  }
  for (const auto attempts : recovered.attempts) {
    if (attempts > 0) cert.recovery.reissued_attempts += attempts - 1;
  }

  VerifyReport report = verify_program(program);
  for (auto& d : check_recovery_liveness(recovered, params, mode)) {
    report.diagnostics.push_back(std::move(d));
  }
  fill_diagnostics(cert, report);
  return cert;
}

std::string to_json(const Certificate& cert) {
  std::ostringstream os;
  os << "{\n\"schema\": \"" << telemetry::json_escape(cert.schema)
     << "\",\n";
  cert_io::emit_certificate_body(os, cert);
  os << "\n}\n";
  return os.str();
}

std::string CertificateParseError::to_string() const {
  return "certificate parse error at " + path + ": " + reason;
}

CertificateParseResult parse_certificate_checked(const std::string& text) {
  CertificateParseResult result;
  cert_io::ParseCtx ctx;
  telemetry::json::Value doc;
  try {
    doc = telemetry::json::parse(text);
  } catch (const ContractViolation& e) {
    ctx.fail("$", std::string("document is not valid JSON: ") + e.what());
    result.error = ctx.error;
    return result;
  }
  result.certificate.schema =
      cert_io::field_string(doc, "$", "schema", ctx);
  if (!ctx.failed && result.certificate.schema != "dqs-cert-v1") {
    ctx.fail("$.schema", "not a dqs-cert-v1 document: schema is '" +
                             result.certificate.schema + "'");
  }
  if (!ctx.failed) {
    (void)cert_io::read_certificate_body(doc, result.certificate, ctx);
  }
  if (ctx.failed) result.error = ctx.error;
  return result;
}

Certificate parse_certificate(const std::string& text) {
  CertificateParseResult result = parse_certificate_checked(text);
  QS_REQUIRE(result.ok(), result.error->to_string());
  return std::move(result.certificate);
}

bool primary_facts_equal(const Certificate& a, const Certificate& b) {
  const bool amplitude_equal =
      a.amplitude.a == b.amplitude.a &&
      a.amplitude.theta == b.amplitude.theta &&
      a.amplitude.iterations == b.amplitude.iterations &&
      a.amplitude.needs_final == b.amplitude.needs_final &&
      a.amplitude.already_exact == b.amplitude.already_exact &&
      a.amplitude.success_probability == b.amplitude.success_probability &&
      a.amplitude.residual_bad == b.amplitude.residual_bad &&
      a.amplitude.zero_error == b.amplitude.zero_error;
  return a.params == b.params && a.mode == b.mode && a.cost == b.cost &&
         amplitude_equal && a.support == b.support;
}

}  // namespace qs::analysis
