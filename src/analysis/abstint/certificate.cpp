#include "analysis/abstint/certificate.hpp"

#include <iomanip>
#include <limits>
#include <sstream>

#include "analysis/abstint/engine.hpp"
#include "analysis/verifier.hpp"
#include "common/require.hpp"
#include "telemetry/export.hpp"
#include "telemetry/json.hpp"

namespace qs::analysis {

namespace {

/// max_digits10 renders doubles so that strtod reproduces them exactly —
/// the certificate JSON round-trip is bit-for-bit.
std::string num(double v) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  return os.str();
}

void emit_u64_array(std::ostringstream& os,
                    const std::vector<std::uint64_t>& values) {
  os << '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) os << ',';
    os << values[i];
  }
  os << ']';
}

const char* bool_str(bool b) { return b ? "true" : "false"; }

std::uint64_t u64(const telemetry::json::Value& v) {
  return static_cast<std::uint64_t>(v.as_number());
}

std::vector<std::uint64_t> u64_array(const telemetry::json::Value& v) {
  QS_REQUIRE(v.is_array(), "dqs-cert-v1: expected an array");
  std::vector<std::uint64_t> out;
  out.reserve(v.array.size());
  for (const auto& e : v.array) out.push_back(u64(e));
  return out;
}

void fill_diagnostics(Certificate& cert, const VerifyReport& report) {
  cert.diagnostics.reserve(report.diagnostics.size());
  for (const auto& d : report.diagnostics) {
    cert.diagnostics.push_back(to_string(d));
  }
}

void fill_facts(Certificate& cert, const ProtocolProgram& program) {
  const AbstractResult res = interpret(program);
  cert.cost = res.cost;
  cert.amplitude = res.amplitude;
  cert.support = res.support;
}

}  // namespace

Certificate certify_compiled(const PublicParams& params, QueryMode mode) {
  Certificate cert;
  cert.params = params;
  cert.mode = mode;
  // Surface parameter problems as a dirty certificate instead of an
  // exception, so sweeps certify every grid point (mirrors verify_compiled).
  try {
    const ProtocolProgram program = lift_compiled(params, mode);
    fill_facts(cert, program);
    fill_diagnostics(cert, verify_program(program));
  } catch (const ContractViolation& e) {
    cert.diagnostics.push_back(
        std::string("schedule compilation rejected the public parameters: ") +
        e.what());
  }
  return cert;
}

Certificate certify_transcript(const Transcript& transcript,
                               const PublicParams& params, QueryMode mode) {
  Certificate cert;
  cert.params = params;
  cert.mode = mode;
  fill_facts(cert, lift_transcript(transcript, params, mode));
  fill_diagnostics(cert, verify_transcript(transcript, params, mode));
  return cert;
}

Certificate certify_recovered(const RecoveredSchedule& recovered,
                              const PublicParams& params, QueryMode mode) {
  Certificate cert;
  cert.params = params;
  cert.mode = mode;
  const ProtocolProgram program = lift_recovered(recovered, params, mode);
  fill_facts(cert, program);

  cert.recovery.present = true;
  cert.recovery.retry = recovered.retry;
  cert.recovery.failed_attempts = recovered.failed_attempts;
  cert.recovery.backoff_events = recovered.backoff_events;
  for (const auto flag : recovered.displaced) {
    if (flag != 0) ++cert.recovery.displaced_events;
  }
  for (const auto attempts : recovered.attempts) {
    if (attempts > 0) cert.recovery.reissued_attempts += attempts - 1;
  }

  VerifyReport report = verify_program(program);
  for (auto& d : check_recovery_liveness(recovered, params, mode)) {
    report.diagnostics.push_back(std::move(d));
  }
  fill_diagnostics(cert, report);
  return cert;
}

std::string to_json(const Certificate& cert) {
  std::ostringstream os;
  os << "{\n\"schema\": \"" << telemetry::json_escape(cert.schema)
     << "\",\n\"params\": {\"universe\": " << cert.params.universe
     << ", \"machines\": " << cert.params.machines
     << ", \"nu\": " << cert.params.nu
     << ", \"total\": " << cert.params.total << "},\n\"mode\": \""
     << (cert.mode == QueryMode::kSequential ? "sequential" : "parallel")
     << "\",\n";

  const CostFacts& c = cert.cost;
  os << "\"cost\": {\"d\": " << c.d << ", \"forward_per_machine\": ";
  emit_u64_array(os, c.forward_per_machine);
  os << ", \"adjoint_per_machine\": ";
  emit_u64_array(os, c.adjoint_per_machine);
  os << ", \"sequential_total\": " << c.sequential_total
     << ", \"parallel_rounds\": " << c.parallel_rounds
     << ", \"sends\": " << c.sends << ", \"recvs\": " << c.recvs
     << ", \"closed_form\": " << c.closed_form
     << ", \"matches_closed_form\": " << bool_str(c.matches_closed_form)
     << "},\n";

  const AmplitudeFacts& a = cert.amplitude;
  os << "\"amplitude\": {\"a\": " << num(a.a) << ", \"theta\": "
     << num(a.theta) << ", \"iterations\": " << a.iterations
     << ", \"needs_final\": " << bool_str(a.needs_final)
     << ", \"already_exact\": " << bool_str(a.already_exact)
     << ", \"derivation\": \"" << telemetry::json_escape(a.derivation)
     << "\", \"success_probability\": " << num(a.success_probability)
     << ", \"residual_bad\": " << num(a.residual_bad)
     << ", \"zero_error\": " << bool_str(a.zero_error) << "},\n";

  const SupportFacts& s = cert.support;
  os << "\"support\": {\"dimension\": " << s.dimension
     << ", \"after_prep\": " << s.after_prep << ", \"bound\": " << s.bound
     << ", \"growth_f\": " << s.growth_f << ", \"growth_u\": " << s.growth_u
     << "},\n";

  const RecoveryFacts& r = cert.recovery;
  os << "\"recovery\": {\"present\": " << bool_str(r.present);
  if (r.present) {
    os << ", \"retry_per_machine\": ";
    emit_u64_array(os, r.retry.sequential_per_machine);
    os << ", \"retry_parallel_rounds\": " << r.retry.parallel_rounds
       << ", \"failed_attempts\": " << r.failed_attempts
       << ", \"backoff_events\": " << r.backoff_events
       << ", \"displaced_events\": " << r.displaced_events
       << ", \"reissued_attempts\": " << r.reissued_attempts;
  }
  os << "},\n\"diagnostics\": [";
  for (std::size_t i = 0; i < cert.diagnostics.size(); ++i) {
    if (i != 0) os << ", ";
    os << '"' << telemetry::json_escape(cert.diagnostics[i]) << '"';
  }
  os << "]\n}\n";
  return os.str();
}

Certificate parse_certificate(const std::string& text) {
  const auto doc = telemetry::json::parse(text);
  Certificate cert;
  cert.schema = doc.at("schema").as_string();
  QS_REQUIRE(cert.schema == "dqs-cert-v1",
             "not a dqs-cert-v1 document: schema is '" + cert.schema + "'");

  const auto& p = doc.at("params");
  cert.params.universe = u64(p.at("universe"));
  cert.params.machines = u64(p.at("machines"));
  cert.params.nu = u64(p.at("nu"));
  cert.params.total = u64(p.at("total"));

  const auto& mode = doc.at("mode").as_string();
  QS_REQUIRE(mode == "sequential" || mode == "parallel",
             "dqs-cert-v1: unknown mode '" + mode + "'");
  cert.mode =
      mode == "sequential" ? QueryMode::kSequential : QueryMode::kParallel;

  const auto& c = doc.at("cost");
  cert.cost.d = u64(c.at("d"));
  cert.cost.forward_per_machine = u64_array(c.at("forward_per_machine"));
  cert.cost.adjoint_per_machine = u64_array(c.at("adjoint_per_machine"));
  cert.cost.sequential_total = u64(c.at("sequential_total"));
  cert.cost.parallel_rounds = u64(c.at("parallel_rounds"));
  cert.cost.sends = u64(c.at("sends"));
  cert.cost.recvs = u64(c.at("recvs"));
  cert.cost.closed_form = u64(c.at("closed_form"));
  cert.cost.matches_closed_form = c.at("matches_closed_form").as_bool();

  const auto& a = doc.at("amplitude");
  cert.amplitude.a = a.at("a").as_number();
  cert.amplitude.theta = a.at("theta").as_number();
  cert.amplitude.iterations = u64(a.at("iterations"));
  cert.amplitude.needs_final = a.at("needs_final").as_bool();
  cert.amplitude.already_exact = a.at("already_exact").as_bool();
  cert.amplitude.derivation = a.at("derivation").as_string();
  cert.amplitude.success_probability =
      a.at("success_probability").as_number();
  cert.amplitude.residual_bad = a.at("residual_bad").as_number();
  cert.amplitude.zero_error = a.at("zero_error").as_bool();

  const auto& s = doc.at("support");
  cert.support.dimension = u64(s.at("dimension"));
  cert.support.after_prep = u64(s.at("after_prep"));
  cert.support.bound = u64(s.at("bound"));
  cert.support.growth_f = u64(s.at("growth_f"));
  cert.support.growth_u = u64(s.at("growth_u"));

  const auto& r = doc.at("recovery");
  cert.recovery.present = r.at("present").as_bool();
  if (cert.recovery.present) {
    cert.recovery.retry.sequential_per_machine =
        u64_array(r.at("retry_per_machine"));
    cert.recovery.retry.parallel_rounds = u64(r.at("retry_parallel_rounds"));
    cert.recovery.failed_attempts = u64(r.at("failed_attempts"));
    cert.recovery.backoff_events = u64(r.at("backoff_events"));
    cert.recovery.displaced_events = u64(r.at("displaced_events"));
    cert.recovery.reissued_attempts = u64(r.at("reissued_attempts"));
  }

  const auto& diagnostics = doc.at("diagnostics");
  QS_REQUIRE(diagnostics.is_array(),
             "dqs-cert-v1: diagnostics must be an array");
  for (const auto& d : diagnostics.array) {
    cert.diagnostics.push_back(d.as_string());
  }
  return cert;
}

bool primary_facts_equal(const Certificate& a, const Certificate& b) {
  const bool amplitude_equal =
      a.amplitude.a == b.amplitude.a &&
      a.amplitude.theta == b.amplitude.theta &&
      a.amplitude.iterations == b.amplitude.iterations &&
      a.amplitude.needs_final == b.amplitude.needs_final &&
      a.amplitude.already_exact == b.amplitude.already_exact &&
      a.amplitude.success_probability == b.amplitude.success_probability &&
      a.amplitude.residual_bad == b.amplitude.residual_bad &&
      a.amplitude.zero_error == b.amplitude.zero_error;
  return a.params == b.params && a.mode == b.mode && a.cost == b.cost &&
         amplitude_equal && a.support == b.support;
}

}  // namespace qs::analysis
