// Shared JSON plumbing for dqs-cert-v1 and dqs-tv-v1 certificates.
//
// The dqs-tv-v1 document (analysis/tv/certificate.hpp) is a strict
// superset of dqs-cert-v1: same body (params, mode, cost, amplitude,
// support, recovery, diagnostics), different schema tag, two extra
// sections. Both writers emit the body through emit_certificate_body() and
// both checked parsers read it through read_certificate_body(), so the
// formats cannot drift apart.
//
// The readers are NON-THROWING: every accessor takes a ParseCtx and a JSON
// path ("$.cost.forward_per_machine[2]"); the first shape mismatch records
// a CertificateParseError and every later accessor short-circuits, so a
// malformed document yields one precise structured error instead of an
// exception from whichever field happened to be read first.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/abstint/certificate.hpp"
#include "telemetry/json.hpp"

namespace qs::analysis::cert_io {

/// max_digits10 renders doubles so that strtod reproduces them exactly —
/// the certificate JSON round-trip is bit-for-bit.
std::string num(double v);

void emit_u64_array(std::ostringstream& os,
                    const std::vector<std::uint64_t>& values);

inline const char* bool_str(bool b) { return b ? "true" : "false"; }

/// Emit everything between the schema line and the closing brace: from
/// `"params"` through `"diagnostics": […]`, with no trailing comma — the
/// caller appends either `\n}` (dqs-cert-v1) or its extra sections
/// (dqs-tv-v1).
void emit_certificate_body(std::ostringstream& os, const Certificate& cert);

/// First-failure-wins error context for the non-throwing readers.
struct ParseCtx {
  CertificateParseError error;
  bool failed = false;

  void fail(const std::string& path, const std::string& reason);
};

/// Object member lookup: nullptr (and a recorded error) when `v` is not an
/// object or lacks `key`. `path` is the parent's JSON path.
const telemetry::json::Value* field(const telemetry::json::Value& v,
                                    const std::string& path, const char* key,
                                    ParseCtx& ctx);

std::uint64_t read_u64(const telemetry::json::Value& v,
                       const std::string& path, ParseCtx& ctx);
double read_num(const telemetry::json::Value& v, const std::string& path,
                ParseCtx& ctx);
bool read_bool(const telemetry::json::Value& v, const std::string& path,
               ParseCtx& ctx);
std::string read_string(const telemetry::json::Value& v,
                        const std::string& path, ParseCtx& ctx);
std::vector<std::uint64_t> read_u64_array(const telemetry::json::Value& v,
                                          const std::string& path,
                                          ParseCtx& ctx);

/// Convenience: look up `key` in object `v` and read it with the matching
/// typed reader; on a recorded failure the zero value is returned.
std::uint64_t field_u64(const telemetry::json::Value& v,
                        const std::string& path, const char* key,
                        ParseCtx& ctx);
double field_num(const telemetry::json::Value& v, const std::string& path,
                 const char* key, ParseCtx& ctx);
bool field_bool(const telemetry::json::Value& v, const std::string& path,
                const char* key, ParseCtx& ctx);
std::string field_string(const telemetry::json::Value& v,
                         const std::string& path, const char* key,
                         ParseCtx& ctx);
std::vector<std::uint64_t> field_u64_array(const telemetry::json::Value& v,
                                           const std::string& path,
                                           const char* key, ParseCtx& ctx);

/// Read the shared certificate body (everything but the schema) from a
/// parsed document into `cert`. Returns false — with ctx.error set — on
/// the first shape mismatch.
bool read_certificate_body(const telemetry::json::Value& doc,
                           Certificate& cert, ParseCtx& ctx);

}  // namespace qs::analysis::cert_io
