#include "analysis/abstint/engine.hpp"

#include <cmath>
#include <complex>
#include <optional>
#include <utility>

#include "common/require.hpp"
#include "sampling/amplitude_amplification.hpp"

namespace qs::analysis {

namespace {

std::string str(std::uint64_t v) { return std::to_string(v); }

bool params_valid(const PublicParams& p) {
  return p.universe > 0 && p.machines > 0 && p.nu > 0 && p.total > 0 &&
         p.total <= p.nu * p.universe;
}

/// The (φ, ϕ) pair of one Q(φ, ϕ) iterate read off the op stream.
struct IteratePhases {
  double varphi = 0.0;
  double phi = 0.0;
};

/// Extract the AA iterate phases from a compiled program's local-unitary
/// markers: each Q iterate opens with S_χ(φ) and closes with S_0(ϕ) plus
/// one global-phase marker (the leading −1 of Q).
std::vector<IteratePhases> collect_iterates(const ProtocolProgram& program,
                                            std::vector<Diagnostic>& out) {
  constexpr const char* kPass = "amplitude-domain";
  std::vector<IteratePhases> iterates;
  std::uint64_t global_phases = 0;
  bool open = false;
  double varphi = 0.0;
  for (const auto& op : program.ops) {
    if (op.kind != OpKind::kLocalUnitary) continue;
    if (op.label == "S_chi") {
      if (open) {
        out.push_back({kPass, std::nullopt,
                       "S_χ applied twice without an S_0 between them",
                       "every Q iterate is S_χ(φ) … S_0(ϕ) exactly once"});
      }
      open = true;
      varphi = op.phase;
    } else if (op.label == "S_0") {
      if (!open) {
        out.push_back({kPass, std::nullopt,
                       "S_0 with no opening S_χ — not a Q iterate",
                       "every Q iterate is S_χ(φ) … S_0(ϕ) exactly once"});
        continue;
      }
      iterates.push_back({varphi, op.phase});
      open = false;
    } else if (op.label == "phase") {
      ++global_phases;
    }
  }
  if (open) {
    out.push_back({kPass, std::nullopt,
                   "S_χ is never closed by an S_0",
                   "every Q iterate is S_χ(φ) … S_0(ϕ) exactly once"});
  }
  if (global_phases != iterates.size()) {
    out.push_back({kPass, std::nullopt,
                   "saw " + str(global_phases) + " global-phase marker(s) "
                   "for " + str(iterates.size()) + " Q iterate(s)",
                   "Q = −A S_0 A† S_χ carries exactly one leading −1 per "
                   "iterate"});
  }
  return iterates;
}

/// Replay the reduced 2×2 dynamics from (sinθ, cosθ) through the given
/// iterate phases — the identical q_step_two_level sequence
/// evolve_two_level() applies for an uncorrupted plan, so the two paths
/// agree bit for bit on clean schedules.
std::pair<std::complex<double>, std::complex<double>> replay(
    double theta, const std::vector<IteratePhases>& iterates) {
  std::complex<double> good{std::sin(theta), 0.0};
  std::complex<double> bad{std::cos(theta), 0.0};
  for (const auto& it : iterates) {
    std::tie(good, bad) =
        q_step_two_level(good, bad, theta, it.varphi, it.phi);
  }
  return {good, bad};
}

void finish_amplitude(AmplitudeFacts& facts, const AAPlan& plan,
                      std::complex<double> good, std::complex<double> bad,
                      std::vector<Diagnostic>& out) {
  facts.a = plan.a;
  facts.theta = plan.theta;
  facts.needs_final = plan.needs_final;
  facts.already_exact = plan.already_exact;
  facts.success_probability = std::norm(good);
  facts.residual_bad = std::abs(bad);
  facts.zero_error = facts.residual_bad < 1e-9;
  if (!facts.zero_error) {
    out.push_back({"amplitude-domain", std::nullopt,
                   "replayed AA trajectory leaves residual bad amplitude " +
                       std::to_string(facts.residual_bad) +
                       " — the schedule is not zero-error",
                   "run ⌊m̃⌋ Q(π,π) iterates plus the corrected final "
                   "Q(φ,ϕ) of BHMT Theorem 4"});
  }
}

/// Walk `program`'s ops through the support domain, also counting the
/// growth operators. Returns the facts; per-op trace optionally captured.
SupportFacts walk_support(const ProtocolProgram& program,
                          std::vector<std::uint64_t>* trace) {
  const PublicParams& p = program.params;
  SupportFacts facts;
  facts.dimension = p.universe * (p.nu + 1) * 2;
  std::uint64_t s = 1;  // |0, 0, 0⟩
  facts.bound = s;
  for (const auto& op : program.ops) {
    s = support_after(s, op, p.universe, facts.dimension);
    if (op.kind == OpKind::kLocalUnitary) {
      if (op.label == "F") ++facts.growth_f;
      if (op.label == "U") {
        ++facts.growth_u;
        // A|0⟩ = D F|0⟩ is complete once the first 𝒰 has applied (the
        // closing oracles of its C† are permutations): record the
        // preparation-state bound here.
        if (facts.growth_u == 1) facts.after_prep = s;
      }
    }
    if (s > facts.bound) facts.bound = s;
    if (trace != nullptr) trace->push_back(s);
  }
  return facts;
}

/// The per-op kind/label shorthand used in taint diagnostics.
std::string op_brief(const ProtocolOp& op) {
  switch (op.kind) {
    case OpKind::kSend: return "send(machine " + str(op.machine) + ")";
    case OpKind::kOracle: return "oracle(machine " + str(op.machine) + ")";
    case OpKind::kRecv: return "recv(machine " + str(op.machine) + ")";
    case OpKind::kLocalUnitary: return "local unitary \"" + op.label + "\"";
    case OpKind::kParallelBegin: return "parallel round open";
    case OpKind::kParallelOracle: return "parallel oracle";
    case OpKind::kParallelEnd: return "parallel round close";
  }
  return "op";
}

}  // namespace

QueryStats to_query_stats(const CostFacts& facts) {
  QueryStats stats;
  stats.sequential_per_machine.resize(facts.forward_per_machine.size(), 0);
  for (std::size_t j = 0; j < facts.forward_per_machine.size(); ++j) {
    stats.sequential_per_machine[j] =
        facts.forward_per_machine[j] + facts.adjoint_per_machine[j];
  }
  stats.parallel_rounds = facts.parallel_rounds;
  return stats;
}

std::uint64_t support_after(std::uint64_t s, const ProtocolOp& op,
                            std::uint64_t universe, std::uint64_t dimension) {
  if (op.kind != OpKind::kLocalUnitary) return s;  // transfer or permutation
  std::uint64_t factor = 1;
  if (op.label == "F") factor = universe;  // dense on the element register
  if (op.label == "U") factor = 2;         // 2×2 on the flag register
  if (factor == 1) return s;               // S_χ / S_0 / phase: diagonal
  const std::uint64_t grown = s * factor;
  return (grown / factor != s || grown > dimension) ? dimension : grown;
}

std::vector<std::uint64_t> support_trace(const ProtocolProgram& program) {
  std::vector<std::uint64_t> trace;
  trace.reserve(program.ops.size());
  (void)walk_support(program, &trace);
  return trace;
}

TaintFacts taint_of(const ProtocolProgram& program) {
  TaintFacts facts;
  for (const auto& op : program.ops) {
    if (op.taint == TaintLabel::kContent) {
      ++facts.content_ops;
      facts.max_taint = 1;
    } else {
      ++facts.public_ops;
    }
  }
  facts.oblivious_statically_proven = params_valid(program.params) &&
                                      !program.ops.empty() &&
                                      facts.content_ops == 0;
  return facts;
}

AbstractResult interpret(const ProtocolProgram& program) {
  constexpr const char* kCost = "cost-domain";
  AbstractResult res;
  const PublicParams& p = program.params;
  res.taint = taint_of(program);
  // --- taint/noninterference domain: one label join, no replay -----------
  for (std::size_t k = 0; k < program.ops.size(); ++k) {
    const auto& op = program.ops[k];
    if (op.taint != TaintLabel::kContent) continue;
    res.diagnostics.push_back(
        {"taint-domain",
         op.event == kNoEvent ? std::nullopt
                              : std::optional<std::size_t>(op.event),
         "micro-op #" + str(k) + " (" + op_brief(op) +
             ") is tainted by dataset contents — the schedule is not a "
             "function of public knowledge alone (Section 3)",
         "route data-dependent work through the oracles; the coordinator's "
         "control flow must derive from (N, n, ν, M) only"});
  }
  if (!params_valid(p)) {
    res.diagnostics.push_back(
        {kCost, std::nullopt,
         "inconsistent public parameters (need 0 < M ≤ νN, n ≥ 1): N=" +
             str(p.universe) + " n=" + str(p.machines) + " ν=" + str(p.nu) +
             " M=" + str(p.total),
         "interpret only schedules over valid public knowledge"});
    return res;
  }
  const AAPlan plan = plan_zero_error(
      static_cast<double>(p.total) /
      (static_cast<double>(p.nu) * static_cast<double>(p.universe)));
  const auto d = static_cast<std::uint64_t>(plan.d_applications());
  const auto n = static_cast<std::uint64_t>(p.machines);

  // --- cost domain: one per-op accumulation over the program itself ------
  CostFacts& cost = res.cost;
  cost.d = d;
  cost.forward_per_machine.assign(p.machines, 0);
  cost.adjoint_per_machine.assign(p.machines, 0);
  std::uint64_t begins = 0;
  std::uint64_t ends = 0;
  for (const auto& op : program.ops) {
    switch (op.kind) {
      case OpKind::kSend:
        ++cost.sends;
        break;
      case OpKind::kRecv:
        ++cost.recvs;
        break;
      case OpKind::kOracle:
        ++cost.sequential_total;
        if (op.machine < p.machines) {
          ++(op.adjoint ? cost.adjoint_per_machine
                        : cost.forward_per_machine)[op.machine];
        }
        break;
      case OpKind::kParallelOracle:
        ++cost.parallel_rounds;
        break;
      case OpKind::kParallelBegin:
        ++begins;
        break;
      case OpKind::kParallelEnd:
        ++ends;
        break;
      case OpKind::kLocalUnitary:
        break;
    }
  }
  const bool seq = program.mode == QueryMode::kSequential;
  cost.closed_form = seq ? d * 2 * n : d * 4;
  const std::uint64_t actual =
      seq ? cost.sequential_total : cost.parallel_rounds;
  cost.matches_closed_form = actual == cost.closed_form;
  if (!cost.matches_closed_form) {
    res.diagnostics.push_back(
        {kCost, std::nullopt,
         "per-op accumulation counts " + str(actual) +
             (seq ? " sequential queries" : " parallel rounds") +
             " but the closed form " + (seq ? "d·2n" : "d·4") + " with d=" +
             str(d) + " gives " + str(cost.closed_form),
         seq ? "every D application is C† 𝒰 C: n queries out, n back "
               "(Lemma 4.2)"
             : "every D application costs exactly 4 collective rounds "
               "(Lemma 4.4)"});
  }
  // Transfer accounting: every sequential oracle is bracketed by exactly
  // one send and one receive; a transfer with no query in between moves
  // the registers for free — cost the runtime ledger would never see.
  if (cost.sends != cost.sequential_total ||
      cost.recvs != cost.sequential_total) {
    res.diagnostics.push_back(
        {kCost, std::nullopt,
         str(cost.sends) + " send(s) / " + str(cost.recvs) +
             " receive(s) for " + str(cost.sequential_total) +
             " sequential quer(ies) — unmatched register transfers",
         "each O_j costs exactly one round trip; transfers without a "
         "query are unaccounted communication"});
  }
  if (begins != cost.parallel_rounds || ends != cost.parallel_rounds) {
    res.diagnostics.push_back(
        {kCost, std::nullopt,
         str(begins) + " open(s) / " + str(ends) + " close(s) for " +
             str(cost.parallel_rounds) + " collective round(s)",
         "each parallel round broadcasts and gathers exactly once"});
  }

  // --- amplitude-class domain --------------------------------------------
  AmplitudeFacts& amp = res.amplitude;
  if (program.has_local_unitaries) {
    amp.derivation = "op-stream";
    const auto iterates = collect_iterates(program, res.diagnostics);
    amp.iterations = iterates.size();
    const std::uint64_t planned =
        plan.already_exact
            ? 0
            : plan.full_iterations + (plan.needs_final ? 1u : 0u);
    if (amp.iterations != planned) {
      res.diagnostics.push_back(
          {"amplitude-domain", std::nullopt,
           "schedule performs " + str(amp.iterations) +
               " Q iterate(s) but the zero-error plan prescribes " +
               str(planned),
           "⌊m̃⌋ = ⌊π/(4θ) − 1/2⌋ full iterates plus the corrected final "
           "one"});
    }
    const auto [good, bad] = replay(plan.theta, iterates);
    finish_amplitude(amp, plan, good, bad, res.diagnostics);
  } else {
    amp.derivation = "closed-form";
    amp.iterations =
        plan.already_exact
            ? 0
            : plan.full_iterations + (plan.needs_final ? 1u : 0u);
    const auto [good, bad] = evolve_two_level(plan);
    finish_amplitude(amp, plan, good, bad, res.diagnostics);
  }

  // --- support/sparsity domain -------------------------------------------
  if (program.has_local_unitaries) {
    res.support = walk_support(program, nullptr);
    if (res.support.growth_f != d) {
      res.diagnostics.push_back(
          {"support-domain", std::nullopt,
           "schedule applies F " + str(res.support.growth_f) +
               " time(s); a d=" + str(d) + " schedule applies it exactly d "
               "times (one preparation + two per iterate)",
           "each extra F multiplies the support bound by N — the "
           "structured-backend gate would be voided"});
    }
    if (res.support.growth_u != d) {
      res.diagnostics.push_back(
          {"support-domain", std::nullopt,
           "schedule applies 𝒰 " + str(res.support.growth_u) +
               " time(s); one per distributing-operator application "
               "(d=" + str(d) + ") is required",
           "𝒰 sits once inside every C† 𝒰 C block (Lemmas 4.2/4.4)"});
    }
  } else {
    // Bare transcript: derive the support walk from the schedule compiled
    // for the same public knowledge (verify_transcript separately certifies
    // the transcript equals that schedule).
    res.support = walk_support(lift_compiled(p, program.mode), nullptr);
  }
  return res;
}

const std::vector<std::string>& domain_names() {
  // dqs-lint: pass-registry-begin
  static const std::vector<std::string> names = {
      "cost-domain",
      "amplitude-domain",
      "support-domain",
      "recovery-liveness",
      "taint-domain",
  };
  // dqs-lint: pass-registry-end
  return names;
}

}  // namespace qs::analysis
