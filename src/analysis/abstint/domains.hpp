// Abstract domains for the protocol-IR abstract interpreter (dqs-abstint).
//
// Each domain is a small lattice of FACTS about a schedule that the engine
// (engine.hpp) computes by walking the micro-op stream once, instead of
// simulating amplitudes:
//
//   CostFacts       exact per-machine oracle and transfer counts, checked
//                   per-op against the Theorem 4.3/4.5 closed forms;
//   AmplitudeFacts  the AA trajectory (θ, iterate count, final phases)
//                   replayed through the exact reduced 2×2 dynamics, giving
//                   the success probability and the zero-error certificate;
//   SupportFacts    an upper bound on statevector support after every
//                   micro-op — oracles/sends/shifts are permutations and
//                   phase oracles are diagonal (support preserved), while F
//                   grows support by ≤ N and 𝒰 by ≤ 2. These are the
//                   "max support ≤ S" facts that will later gate dense-vs-
//                   structured backend selection (ROADMAP item 2);
//   TaintFacts      noninterference over the dataset-content taint lattice
//                   (ir.hpp TaintLabel): the join of all op labels. When it
//                   is kPublic, the entire micro-op sequence — control
//                   flow, communication pattern, unitary markers — is a
//                   function of PublicParams alone, which proves the
//                   Section 3 obliviousness property statically instead of
//                   by perturbed recompilation (passes.cpp).
//
// The facts are plain aggregates with defaulted equality so certificates
// (certificate.hpp) can be compared bit-for-bit after a JSON round-trip.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/ir.hpp"
#include "distdb/query_stats.hpp"

namespace qs::analysis {

/// Cost domain: the per-op ledger the engine accumulates. All counts are
/// exact (no abstraction loss) — the domain exists to cross-check the
/// aggregate closed forms against a per-op accounting of the same walk.
struct CostFacts {
  /// d — applications of the distributing operator, from the zero-error
  /// plan for the public parameters.
  std::uint64_t d = 0;
  std::vector<std::uint64_t> forward_per_machine;
  std::vector<std::uint64_t> adjoint_per_machine;
  std::uint64_t sequential_total = 0;  ///< all kOracle micro-ops
  std::uint64_t parallel_rounds = 0;   ///< all kParallelOracle micro-ops
  std::uint64_t sends = 0;             ///< kSend micro-ops
  std::uint64_t recvs = 0;             ///< kRecv micro-ops
  /// Theorem 4.3/4.5 closed form for the mode: d·2n or d·4.
  std::uint64_t closed_form = 0;
  bool matches_closed_form = false;

  friend bool operator==(const CostFacts&, const CostFacts&) = default;
};

/// The cost facts in the shape of the runtime query ledger, so differential
/// tests can compare the static derivation against an executed run with
/// QueryStats::operator== directly.
QueryStats to_query_stats(const CostFacts& facts);

/// Amplitude-class domain: the two-level AA trajectory. `derivation` records
/// how the numbers were obtained — "op-stream" when the program carried the
/// coordinator-local unitaries (compiled lifts: the S_χ/S_0 angles are read
/// off the ops and replayed), "closed-form" when it did not (bare transcript
/// lifts: the plan for the public parameters is evolved instead). Both paths
/// apply the identical q_step_two_level sequence, so the numbers agree bit
/// for bit on uncorrupted schedules.
struct AmplitudeFacts {
  double a = 0.0;      ///< good probability M/(νN)
  double theta = 0.0;  ///< arcsin √a
  /// Q iterates in the schedule (full + final corrected).
  std::uint64_t iterations = 0;
  bool needs_final = false;
  bool already_exact = false;
  std::string derivation;  ///< "op-stream" | "closed-form"
  double success_probability = 0.0;  ///< |good|² after the replayed walk
  double residual_bad = 0.0;         ///< |bad| after the replayed walk
  /// True iff residual_bad < 1e-9 — the zero-error certificate.
  bool zero_error = false;

  friend bool operator==(const AmplitudeFacts&,
                         const AmplitudeFacts&) = default;
};

/// Support/sparsity domain over the coordinator state [elem, count, flag]
/// of dimension N·(ν+1)·2.
struct SupportFacts {
  std::uint64_t dimension = 0;   ///< N·(ν+1)·2
  std::uint64_t after_prep = 0;  ///< bound right after A|0⟩ = D F|0⟩
  std::uint64_t bound = 0;       ///< max over the whole walk
  std::uint64_t growth_f = 0;    ///< F/F† applications seen (each ≤ ×N)
  std::uint64_t growth_u = 0;    ///< 𝒰/𝒰† applications seen (each ≤ ×2)

  friend bool operator==(const SupportFacts&, const SupportFacts&) = default;
};

/// Taint/noninterference domain over the protocol IR. The transfer function
/// is the lattice join: one pass over the ops accumulates the least upper
/// bound of their TaintLabels. No structural facts are re-derived here —
/// the domain sees only provenance labels, so a taint finding can never
/// shadow (or be shadowed by) a structural pass.
struct TaintFacts {
  std::uint64_t public_ops = 0;   ///< ops labelled TaintLabel::kPublic
  std::uint64_t content_ops = 0;  ///< ops labelled TaintLabel::kContent
  /// Join of all labels: 0 = kPublic, 1 = kContent.
  std::uint8_t max_taint = 0;
  /// The static obliviousness verdict: true when the program is non-empty,
  /// its public parameters are well-formed, and every op is kPublic — i.e.
  /// the schedule is PROVEN a function of public knowledge alone.
  bool oblivious_statically_proven = false;

  friend bool operator==(const TaintFacts&, const TaintFacts&) = default;
};

/// The support-domain transfer function: the bound after applying one
/// micro-op to a state of support ≤ s. Permutations (sends, oracles, total
/// shifts) and diagonals (S_χ, S_0, global phase) preserve support; F is
/// dense on the element register (×N) and 𝒰 acts on the flag (×2); all
/// growth saturates at the full dimension. Exposed so the differential
/// tests apply the exact same rule the engine does.
std::uint64_t support_after(std::uint64_t s, const ProtocolOp& op,
                            std::uint64_t universe, std::uint64_t dimension);

}  // namespace qs::analysis
