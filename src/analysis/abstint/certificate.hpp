// dqs-cert-v1: machine-checkable schedule certificates.
//
// A Certificate bundles the abstract-interpretation facts (domains.hpp)
// for one (PublicParams, QueryMode) schedule — exact query costs, the AA
// success probability with the zero-error bit, the support bound, and (for
// recovered schedules) the separately-ledgered retry cost — together with
// every diagnostic the verifier and the domains raised. to_json() emits
// the dqs-cert-v1 JSON document (doubles at max_digits10, so a JSON
// round-trip reproduces the certificate bit for bit; parse_certificate()
// reads it back via the in-tree telemetry JSON reader). The differential
// test grid proves the certificates sound against executed runs, and
// `dqs_verify --abstint` emits them per grid point.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/abstint/domains.hpp"
#include "analysis/abstint/recovered.hpp"
#include "analysis/ir.hpp"
#include "distdb/query_stats.hpp"

namespace qs::analysis {

/// Recovery cost facts, present only on certificates of recovered
/// schedules. Kept apart from CostFacts so the primary budget a recovered
/// certificate proves is EXACTLY the fault-free one.
struct RecoveryFacts {
  bool present = false;
  QueryStats retry;
  std::uint64_t failed_attempts = 0;
  std::uint64_t backoff_events = 0;
  std::uint64_t displaced_events = 0;
  std::uint64_t reissued_attempts = 0;  ///< Σ (attempts − 1)

  friend bool operator==(const RecoveryFacts&,
                         const RecoveryFacts&) = default;
};

struct Certificate {
  std::string schema = "dqs-cert-v1";
  PublicParams params;
  QueryMode mode = QueryMode::kSequential;
  CostFacts cost;
  AmplitudeFacts amplitude;
  SupportFacts support;
  RecoveryFacts recovery;
  /// Rendered to_string(Diagnostic) lines from every pass and domain.
  std::vector<std::string> diagnostics;

  bool clean() const noexcept { return diagnostics.empty(); }

  friend bool operator==(const Certificate&, const Certificate&) = default;
};

/// Certify the schedule compiled from public knowledge (op-stream
/// derivations: the certificate covers the coordinator-local unitaries).
Certificate certify_compiled(const PublicParams& params, QueryMode mode);

/// Certify a recorded transcript (closed-form amplitude/support
/// derivations; cost facts from the transcript's own events).
Certificate certify_transcript(const Transcript& transcript,
                               const PublicParams& params, QueryMode mode);

/// Certify a fault-recovered schedule: the structural passes and domains
/// over the executed order, the recovery-liveness checks, and the retry
/// cost recorded under `recovery` — separate from the primary facts.
Certificate certify_recovered(const RecoveredSchedule& recovered,
                              const PublicParams& params, QueryMode mode);

/// The dqs-cert-v1 JSON document (stable key order, no timestamps).
std::string to_json(const Certificate& cert);

/// Structured certificate parse failure, mirroring TranscriptParseError
/// (distdb/transcript.hpp): `path` is the JSON path of the offending field
/// ("$.cost.forward_per_machine[2]", or "$" for document-level problems),
/// `reason` says what was wrong with it.
struct CertificateParseError {
  std::string path;
  std::string reason;

  /// "certificate parse error at <path>: <reason>" — one line.
  std::string to_string() const;

  friend bool operator==(const CertificateParseError&,
                         const CertificateParseError&) = default;
};

/// Outcome of parse_certificate_checked(): on failure `certificate` holds
/// whatever fields parsed before the first mismatch — inspect `error`.
struct CertificateParseResult {
  Certificate certificate;
  std::optional<CertificateParseError> error;

  bool ok() const noexcept { return !error.has_value(); }
};

/// Parse a dqs-cert-v1 document without throwing: malformed JSON, a wrong
/// schema tag, missing fields and type mismatches all come back as one
/// structured CertificateParseError naming the exact field.
CertificateParseResult parse_certificate_checked(const std::string& text);

/// Parse a dqs-cert-v1 document; throws qs::ContractViolation carrying the
/// structured error's message on schema or shape mismatches. Thin wrapper
/// over parse_certificate_checked().
Certificate parse_certificate(const std::string& text);

/// True when two certificates agree on every PRIMARY fact — parameters,
/// mode, cost, amplitude numbers (the derivation route may differ) and
/// support. Recovery facts and diagnostics are deliberately excluded: a
/// recovered schedule must match its fault-free twin here while carrying
/// its retry cost separately.
bool primary_facts_equal(const Certificate& a, const Certificate& b);

}  // namespace qs::analysis
