#include "analysis/verifier.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/abstint/engine.hpp"
#include "analysis/passes.hpp"
#include "analysis/tv/harness.hpp"
#include "common/require.hpp"

namespace qs::analysis {

namespace {

void append(std::vector<Diagnostic>& into, std::vector<Diagnostic> from) {
  for (auto& d : from) into.push_back(std::move(d));
}

}  // namespace

std::string VerifyReport::render() const {
  std::ostringstream os;
  for (const auto& d : diagnostics) os << to_string(d) << '\n';
  return os.str();
}

VerifyReport verify_program(const ProtocolProgram& program) {
  VerifyReport report;
  append(report.diagnostics, check_adjoint_nesting(program));
  append(report.diagnostics, check_ownership(program));
  append(report.diagnostics, check_query_budget(program));
  append(report.diagnostics, check_load_balance(program));
  // The abstract domains (abstint/) run alongside the structural passes on
  // every entry point, so cost/probability/support corruption is flagged
  // even where the aggregate checks above still balance.
  append(report.diagnostics, interpret(program).diagnostics);
  return report;
}

VerifyReport verify_transcript(const Transcript& transcript,
                               const PublicParams& params, QueryMode mode,
                               const QueryStats* run_stats) {
  VerifyReport report = verify_program(lift_transcript(transcript, params,
                                                       mode));

  // A recorded transcript must be bit-identical to the schedule compiled
  // from public knowledge alone — otherwise the run leaked data into its
  // communication pattern (Section 3). Skip when the parameters are
  // already reported as inconsistent.
  if (params.universe > 0 && params.machines > 0 && params.nu > 0 &&
      params.total > 0 && params.total <= params.nu * params.universe) {
    const Transcript reference = compile_schedule(params, mode);
    if (transcript != reference) {
      std::size_t first = 0;
      const std::size_t limit =
          std::min(transcript.size(), reference.size());
      while (first < limit &&
             transcript.events()[first] == reference.events()[first]) {
        ++first;
      }
      report.diagnostics.push_back(
          {"obliviousness", first,
           "recorded transcript diverges from the schedule compiled from "
           "(N, n, ν, M) — lengths " +
               std::to_string(transcript.size()) + " vs " +
               std::to_string(reference.size()),
           "an oblivious run replays the compiled schedule exactly; any "
           "divergence means the coordinator consulted the data"});
    }
  }

  if (run_stats != nullptr) {
    try {
      const QueryStats derived = stats_of(transcript, params.machines);
      if (!(derived == *run_stats)) {
        report.diagnostics.push_back(
            {"query-budget", std::nullopt,
             "the run's QueryStats ledger disagrees with the counts "
             "derived from its own transcript",
             "every oracle application must be recorded exactly once and "
             "charged exactly once (Thms 4.3/4.5 count queries)"});
      }
    } catch (const ContractViolation&) {
      // stats_of rejects out-of-range machines; the ownership pass has
      // already reported the root cause.
    }
  }
  return report;
}

VerifyReport verify_compiled(const PublicParams& params, QueryMode mode,
                             const VerifyOptions& options) {
  VerifyReport report;
  // Lifting compiles the schedule; surface parameter problems as a
  // diagnostic instead of an exception so sweeps report every grid point.
  ProtocolProgram program;
  try {
    program = lift_compiled(params, mode);
    report = verify_program(program);
  } catch (const ContractViolation& e) {
    report.diagnostics.push_back(
        {"query-budget", std::nullopt,
         std::string("schedule compilation rejected the public "
                     "parameters: ") + e.what(),
         "sweep only parameters with 0 < M ≤ νN"});
    return report;
  }
  // The static proof (taint domain) discharges obliviousness without the
  // 3×-recompilation dynamic pass; the dynamic pass stays as a fallback
  // for programs the noninterference argument cannot cover.
  const bool statically_proven =
      options.static_obliviousness_proof &&
      taint_of(program).oblivious_statically_proven;
  if (options.obliviousness_trials > 0 && !statically_proven) {
    append(report.diagnostics,
           certify_obliviousness(params, mode, options.obliviousness_trials,
                                 options.seed));
  }
  if (options.translation_validation) {
    try {
      append(report.diagnostics,
             tv::run_translation_validation(params, mode).diagnostics);
    } catch (const ContractViolation& e) {
      report.diagnostics.push_back(
          {"translation-validation", std::nullopt,
           std::string("translation validation rejected the public "
                       "parameters: ") + e.what(),
           "sweep only parameters with 0 < M ≤ νN"});
    }
  }
  return report;
}

}  // namespace qs::analysis
