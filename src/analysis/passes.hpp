// Checker passes over the protocol IR (see ir.hpp).
//
// Each pass verifies one structural claim of the paper and returns
// machine-readable diagnostics (empty = certified):
//
//   adjoint-nesting   every O_j / parallel round has a matching adjoint in
//                     properly nested C† 𝒰 C order (Lemmas 4.2/4.4),
//                     verified by a pushdown matcher;
//   ownership         abstract interpretation of the register bundle's
//                     location — a borrow checker for the Transport moves
//                     of Section 3 (no query to a machine that does not
//                     currently hold the registers, no overlapping sends,
//                     quiescent termination);
//   query-budget      oracle counts equal the closed forms of Theorems
//                     4.3/4.5 (d·2n sequential queries, d·4 parallel
//                     rounds), cross-checked against
//                     compiled_schedule_length();
//   load-balance      the sequential sampler queries every machine exactly
//                     2d times (d forward + d adjoint) — a flat histogram;
//   obliviousness     the schedule is a function of PublicParams alone:
//                     compilation over dataset-perturbed databases yields
//                     bit-identical transcripts, and the Dataset taint
//                     counters prove the dry-run path never read contents.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/ir.hpp"
#include "common/rng.hpp"
#include "distdb/distributed_database.hpp"

namespace qs::analysis {

std::vector<Diagnostic> check_adjoint_nesting(const ProtocolProgram& program);
std::vector<Diagnostic> check_ownership(const ProtocolProgram& program);
std::vector<Diagnostic> check_query_budget(const ProtocolProgram& program);
std::vector<Diagnostic> check_load_balance(const ProtocolProgram& program);

/// Obliviousness certification is the one pass that runs the compiler
/// rather than inspecting a given program: it compiles the schedule for
/// `params` over `trials` freshly perturbed databases (same public
/// knowledge, different contents) and demands transcript identity plus
/// zero content reads. Deterministic given `seed`.
std::vector<Diagnostic> certify_obliviousness(const PublicParams& params,
                                              QueryMode mode,
                                              std::size_t trials,
                                              std::uint64_t seed);

/// The five pass ids above, in canonical order.
const std::vector<std::string>& pass_names();

/// A random database whose PUBLIC parameters equal `params` exactly:
/// M occurrences spread over n machines with every joint multiplicity
/// ≤ ν. Used by the obliviousness pass and its tests. Requires valid
/// params (0 < M ≤ νN).
DistributedDatabase perturbed_database(const PublicParams& params, Rng& rng);

}  // namespace qs::analysis
