#include "analysis/ir.hpp"

#include <sstream>

#include "common/require.hpp"

namespace qs::analysis {

namespace {

void lower_sequential(std::vector<ProtocolOp>& ops, std::size_t machine,
                      bool adjoint, std::size_t event) {
  ops.push_back({OpKind::kSend, machine, adjoint, "", event});
  ops.push_back({OpKind::kOracle, machine, adjoint, "", event});
  ops.push_back({OpKind::kRecv, machine, adjoint, "", event});
}

void lower_parallel(std::vector<ProtocolOp>& ops, bool adjoint,
                    std::size_t event) {
  ops.push_back({OpKind::kParallelBegin, 0, adjoint, "", event});
  ops.push_back({OpKind::kParallelOracle, 0, adjoint, "", event});
  ops.push_back({OpKind::kParallelEnd, 0, adjoint, "", event});
}

}  // namespace

ProtocolProgram lift_transcript(const Transcript& transcript,
                                const PublicParams& params, QueryMode mode) {
  return lift_events(transcript.events(), params, mode);
}

ProtocolProgram lift_events(const std::vector<TranscriptEvent>& events,
                            const PublicParams& params, QueryMode mode) {
  ProtocolProgram program;
  program.params = params;
  program.mode = mode;
  program.num_events = events.size();
  program.ops.reserve(events.size() * 3);
  for (std::size_t e = 0; e < events.size(); ++e) {
    const auto& ev = events[e];
    if (ev.kind == QueryKind::kSequential) {
      lower_sequential(program.ops, ev.machine, ev.adjoint, e);
    } else {
      lower_parallel(program.ops, ev.adjoint, e);
    }
  }
  return program;
}

ProtocolProgram lift_compiled(const PublicParams& params, QueryMode mode) {
  ProtocolProgram program;
  program.params = params;
  program.mode = mode;
  program.has_local_unitaries = true;
  std::size_t event = 0;
  for_each_schedule_event(params, mode, [&](const ScheduleEvent& ev) {
    switch (ev.kind) {
      case ScheduleEvent::Kind::kOracle:
        lower_sequential(program.ops, ev.machine, ev.adjoint, event++);
        break;
      case ScheduleEvent::Kind::kParallelRound:
        lower_parallel(program.ops, ev.adjoint, event++);
        break;
      case ScheduleEvent::Kind::kLocalUnitary:
        program.ops.push_back({OpKind::kLocalUnitary, 0, ev.adjoint, ev.label,
                               kNoEvent, ev.phase});
        break;
    }
  });
  program.num_events = event;
  return program;
}

std::string to_string(const Diagnostic& d) {
  std::ostringstream os;
  os << '[' << d.pass << "] ";
  if (d.event.has_value()) {
    os << "event " << *d.event << ": ";
  } else {
    os << "schedule: ";
  }
  os << d.message;
  if (!d.fix_hint.empty()) os << " (fix: " << d.fix_hint << ')';
  return os.str();
}

}  // namespace qs::analysis
