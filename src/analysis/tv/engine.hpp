// Translation-validation engine for the compiled-operator pipeline.
//
// Compiled-operator correctness used to rest on dynamic evidence: the
// randomized differential grid in tests/test_kernel_equivalence.cpp
// samples states and compares kernels. TvValidator instead PROVES each
// individual lowering and each CompiledOp::fused peephole equivalent to
// its reference operator semantics, symbolically (symbolic.hpp):
//
//   permutation    replay the reference map on every basis state and
//                  demand table identity + bijectivity + the inverse
//                  table (the dense gather-replay path) inverting it
//                                                               (0 ULP)
//   value shift    evaluate the affine relabelling from the view's
//                  geometry, demand table identity              (0 ULP)
//   re-lowering    shift_to_permutation(source) == table        (0 ULP)
//   perm fusion    compose_permutations(t1, t2) == fused table  (0 ULP)
//   shift fusion   (s1 + s2) mod d == fused shifts              (0 ULP)
//   diagonal       reference phase map vs factors, operator-norm ≤ 1e-12
//   diag fusion    pointwise product vs fused factors,     norm ≤ 1e-12
//   fiber dense    reference selector matrices vs pooled rows over EVERY
//                  fiber (a period-compressed table is re-proved across
//                  the full range, independently of the compiler's
//                  stream check), Frobenius norm ≤ 1e-12 per fiber
//
// TvRecorder arms a validator as the thread's CompileObserver for a scope,
// so every compile that happens inside — including the real sampling
// backend's — is validated at the only moment both sides of the lowering
// exist. Failures become Diagnostics under the "translation-validation"
// pass id; tv_pass_names() is the lint-checked registry guaranteeing a
// mutation fixture kills the checker.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "analysis/ir.hpp"
#include "analysis/tv/symbolic.hpp"
#include "qsim/compiled_op.hpp"
#include "qsim/linalg.hpp"
#include "qsim/register_layout.hpp"

namespace qs::analysis::tv {

/// Operator-norm budget for the inexact obligations (diagonal and
/// fiber-dense): fusion reassociates exactly one multiplication per
/// factor, so anything past 1e-12 is a real miscompile, not rounding.
inline constexpr double kOperatorNormTolerance = 1e-12;

/// Accumulates proof obligations and their verdicts. Stateless between
/// check_* calls except for the growing fact/diagnostic lists, so one
/// validator can cover a whole compilation scope.
class TvValidator {
 public:
  void check_permutation(const CompiledOp& op,
                         const std::function<std::size_t(std::size_t)>& map);
  void check_diagonal(const CompiledOp& op,
                      const std::function<cplx(std::size_t)>& phase);
  void check_fiber_dense(
      const CompiledOp& op, const RegisterLayout& layout, RegisterId target,
      const std::function<const Matrix*(std::size_t)>& selector);
  void check_value_shift(const CompiledOp& op,
                         std::span<const std::size_t> shift_per_cond_value);
  void check_lowered(const CompiledOp& source, const CompiledOp& permutation);
  void check_fused(const CompiledOp& first, const CompiledOp& second,
                   const CompiledOp& result);

  const TvFacts& facts() const noexcept { return facts_; }
  const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diagnostics_;
  }

 private:
  /// Record one obligation; emits a Diagnostic when it failed.
  void record(TvProof proof, const std::string& detail);

  TvFacts facts_;
  std::vector<Diagnostic> diagnostics_;
};

/// Scope guard that installs a TvValidator as the calling thread's
/// CompileObserver and forwards every event to the matching check_*. The
/// previously installed observer is restored on destruction, so scopes
/// nest.
class TvRecorder final : public CompileObserver {
 public:
  explicit TvRecorder(TvValidator& validator);
  ~TvRecorder() override;

  void on_permutation(
      const CompiledOp& op,
      const std::function<std::size_t(std::size_t)>& map) override;
  void on_diagonal(const CompiledOp& op,
                   const std::function<cplx(std::size_t)>& phase) override;
  void on_fiber_dense(
      const CompiledOp& op, const RegisterLayout& layout, RegisterId target,
      const std::function<const Matrix*(std::size_t)>& selector) override;
  void on_value_shift(
      const CompiledOp& op,
      std::span<const std::size_t> shift_per_cond_value) override;
  void on_lowered(const CompiledOp& source,
                  const CompiledOp& permutation) override;
  void on_fused(const CompiledOp& first, const CompiledOp& second,
                const CompiledOp& result) override;

 private:
  TvValidator& validator_;
  CompileObserver* previous_;
};

/// Canonical ids of the translation-validation checkers, mirroring
/// pass_names() / domain_names(). The kill-matrix-completeness lint rule
/// reads this registry: every id must have a mutation fixture that kills
/// it (mutations.cpp).
const std::vector<std::string>& tv_pass_names();

}  // namespace qs::analysis::tv
