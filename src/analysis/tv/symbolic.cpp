#include "analysis/tv/symbolic.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace qs::analysis::tv {

const char* kind_name(CompiledOp::Kind kind) {
  switch (kind) {
    case CompiledOp::Kind::kPermutation: return "kPermutation";
    case CompiledOp::Kind::kDiagonal: return "kDiagonal";
    case CompiledOp::Kind::kFiberDense: return "kFiberDense";
    case CompiledOp::Kind::kValueShift: return "kValueShift";
  }
  return "unknown";
}

bool is_bijection(std::span<const std::uint32_t> table) {
  std::vector<bool> seen(table.size(), false);
  for (const std::uint32_t y : table) {
    if (y >= table.size() || seen[y]) return false;
    seen[y] = true;
  }
  return true;
}

std::vector<std::uint32_t> compose_permutations(
    std::span<const std::uint32_t> first,
    std::span<const std::uint32_t> second) {
  QS_REQUIRE(first.size() == second.size(),
             "permutation composition needs equal dimensions");
  std::vector<std::uint32_t> out(first.size());
  for (std::size_t x = 0; x < first.size(); ++x) out[x] = second[first[x]];
  return out;
}

std::vector<cplx> compose_diagonals(std::span<const cplx> first,
                                    std::span<const cplx> second) {
  QS_REQUIRE(first.size() == second.size(),
             "diagonal composition needs equal dimensions");
  std::vector<cplx> out(first.size());
  for (std::size_t x = 0; x < first.size(); ++x) out[x] = first[x] * second[x];
  return out;
}

double diagonal_distance(std::span<const cplx> a, std::span<const cplx> b) {
  QS_REQUIRE(a.size() == b.size(),
             "diagonal distance needs equal dimensions");
  double worst = 0.0;
  for (std::size_t x = 0; x < a.size(); ++x) {
    worst = std::max(worst, std::abs(a[x] - b[x]));
  }
  return worst;
}

double frobenius_distance(std::span<const cplx> a, std::span<const cplx> b) {
  QS_REQUIRE(a.size() == b.size(),
             "Frobenius distance needs equal sizes");
  double sum = 0.0;
  for (std::size_t x = 0; x < a.size(); ++x) sum += std::norm(a[x] - b[x]);
  return std::sqrt(sum);
}

std::vector<std::uint32_t> shift_to_permutation(
    const CompiledOp::ValueShiftView& view, std::size_t dim) {
  QS_REQUIRE(view.target_dim > 0 && view.cond_dim > 0,
             "value-shift view has degenerate geometry");
  std::vector<std::uint32_t> table(dim);
  for (std::size_t x = 0; x < dim; ++x) {
    // Flag gate of Eq. (2): the shift acts only on the |1⟩ flag branch.
    if (view.has_flag && (x / view.flag_stride) % 2 != 1) {
      table[x] = static_cast<std::uint32_t>(x);
      continue;
    }
    const std::size_t c = (x / view.cond_stride) % view.cond_dim;
    const std::size_t old_digit = (x / view.target_stride) % view.target_dim;
    const std::size_t new_digit =
        (old_digit + view.shifts[c] % view.target_dim) % view.target_dim;
    table[x] = static_cast<std::uint32_t>(
        x + (new_digit - old_digit) * view.target_stride);
  }
  return table;
}

}  // namespace qs::analysis::tv
