// dqs-tv-v1: translation-validation schedule certificates.
//
// A TvCertificate extends the dqs-cert-v1 format (abstint/certificate.hpp)
// with two sections: "tv" — the symbolic proof obligations discharged for
// the point's compiled-operator pipeline (harness.hpp) — and "taint" — the
// noninterference verdict of the taint domain, i.e. the STATIC obliviousness
// proof, together with its relation to the dynamic perturbed-recompilation
// pass ("agree" / "disagree" / "skipped"). The JSON body is shared with
// dqs-cert-v1 through cert_io.hpp, so the two formats cannot drift; a
// dqs-tv-v1 document round-trips bit for bit like its base format, and
// `dqs_verify --tv --cert-dir` writes one per grid point.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "analysis/abstint/certificate.hpp"
#include "analysis/abstint/domains.hpp"
#include "analysis/abstint/recovered.hpp"
#include "analysis/tv/symbolic.hpp"

namespace qs::analysis::tv {

struct TvCertificate {
  std::string schema = "dqs-tv-v1";
  /// The full dqs-cert-v1 facts for the point (its schema member keeps the
  /// base tag; only the document-level tag differs). TV and taint
  /// diagnostics are appended to base.diagnostics so clean() is one check.
  Certificate base;
  TvFacts tv;
  TaintFacts taint;
  /// Relation between the static taint verdict and the dynamic
  /// perturbed-recompilation obliviousness pass: "agree", "disagree", or
  /// "skipped" (cross-check not run).
  std::string dynamic_cross_check = "skipped";

  bool clean() const noexcept {
    return base.clean() && tv.failed == 0 && taint.content_ops == 0 &&
           dynamic_cross_check != "disagree";
  }

  friend bool operator==(const TvCertificate&,
                         const TvCertificate&) = default;
};

struct TvOptions {
  /// Perturbed-database trials for the dynamic cross-check; 0 skips it.
  std::size_t obliviousness_trials = 3;
  std::uint64_t seed = 0x5eed;
};

/// Certify (params, mode): base dqs-cert-v1 facts, symbolic translation
/// validation of the compiled pipeline, the static taint proof, and —
/// when trials > 0 — the differential cross-check against the dynamic
/// obliviousness pass.
TvCertificate certify_tv(const PublicParams& params, QueryMode mode,
                         const TvOptions& options = {});

/// Certify a fault-recovered schedule: the dqs-cert-v1 recovered facts,
/// the same pipeline validation, and the taint proof over the RECOVERED
/// program — recovery planning never consults the database (faults/
/// recovery.hpp), so obliviousness must survive recovery statically. The
/// dynamic cross-check does not apply (recovered orders are not
/// recompiled) and is recorded as "skipped".
TvCertificate certify_tv_recovered(const RecoveredSchedule& recovered,
                                   const PublicParams& params,
                                   QueryMode mode);

/// The dqs-tv-v1 JSON document (stable key order, no timestamps).
std::string to_json(const TvCertificate& cert);

/// Outcome of parse_tv_certificate_checked(); mirrors
/// CertificateParseResult.
struct TvCertificateParseResult {
  TvCertificate certificate;
  std::optional<CertificateParseError> error;

  bool ok() const noexcept { return !error.has_value(); }
};

/// Parse a dqs-tv-v1 document without throwing; malformed input comes back
/// as one structured CertificateParseError naming the exact field.
TvCertificateParseResult parse_tv_certificate_checked(
    const std::string& text);

/// Parse a dqs-tv-v1 document; throws qs::ContractViolation carrying the
/// structured error's message on schema or shape mismatches.
TvCertificate parse_tv_certificate(const std::string& text);

}  // namespace qs::analysis::tv
