#include "analysis/tv/engine.hpp"

#include <algorithm>
#include <sstream>

#include "common/require.hpp"

namespace qs::analysis::tv {

namespace {

constexpr const char* kPass = "translation-validation";

std::string brief(const TvProof& proof) {
  std::ostringstream out;
  out << proof.rule << " obligation for " << proof.kind << " (dim "
      << proof.dim << ")";
  return out.str();
}

/// The dense replay path gathers through the op's INVERSE table; a
/// permutation op is only correct if that table really inverts the forward
/// one. On a certified bijection, inv[table[x]] == x for every x proves it.
bool inverse_consistent(std::span<const std::uint32_t> table,
                        std::span<const std::uint32_t> inverse) {
  if (inverse.size() != table.size()) return false;
  for (std::size_t x = 0; x < table.size(); ++x) {
    if (inverse[table[x]] != x) return false;
  }
  return true;
}

}  // namespace

void TvValidator::record(TvProof proof, const std::string& detail) {
  const bool fusion = proof.rule.rfind("fuse-", 0) == 0;
  (fusion ? facts_.fusions : facts_.lowerings) += 1;
  facts_.max_error = std::max(facts_.max_error, proof.max_error);
  if (!proof.ok) {
    facts_.failed += 1;
    diagnostics_.push_back(
        {kPass, std::nullopt, brief(proof) + " FAILED: " + detail,
         "the compiled representation must equal the reference operator "
         "semantics — exactly for permutations/shifts, within the 1e-12 "
         "operator-norm budget for diagonal/dense"});
  }
  facts_.proofs.push_back(std::move(proof));
}

void TvValidator::check_permutation(
    const CompiledOp& op, const std::function<std::size_t(std::size_t)>& map) {
  TvProof proof{"lower-permutation", kind_name(op.kind()), op.dim(), 0.0,
                true, true};
  const auto table = op.permutation_table();
  std::string detail;
  if (!is_bijection(table)) {
    proof.ok = false;
    detail = "compiled table is not a bijection";
  }
  for (std::size_t x = 0; proof.ok && x < table.size(); ++x) {
    const std::size_t want = map(x);
    if (table[x] != want) {
      proof.ok = false;
      detail = "table[" + std::to_string(x) + "] = " +
               std::to_string(table[x]) + " but the reference map gives " +
               std::to_string(want);
    }
  }
  if (proof.ok && !inverse_consistent(table, op.permutation_inverse_table())) {
    proof.ok = false;
    detail = "inverse table does not invert the forward table";
  }
  record(std::move(proof), detail);
}

void TvValidator::check_diagonal(
    const CompiledOp& op, const std::function<cplx(std::size_t)>& phase) {
  TvProof proof{"lower-diagonal", kind_name(op.kind()), op.dim(), 0.0, false,
                true};
  const auto factors = op.diagonal_factors();
  std::vector<cplx> reference(factors.size());
  for (std::size_t x = 0; x < reference.size(); ++x) reference[x] = phase(x);
  proof.max_error = diagonal_distance(reference, factors);
  proof.ok = proof.max_error <= kOperatorNormTolerance;
  const std::string detail =
      "operator-norm distance " + std::to_string(proof.max_error) +
      " to the reference phase map exceeds 1e-12";
  record(std::move(proof), detail);
}

void TvValidator::check_fiber_dense(
    const CompiledOp& op, const RegisterLayout& layout, RegisterId target,
    const std::function<const Matrix*(std::size_t)>& selector) {
  TvProof proof{"lower-fiber-dense", kind_name(op.kind()), op.dim(), 0.0,
                false, true};
  const std::size_t d = layout.dim(target);
  const std::size_t s = layout.stride(target);
  const auto pool = op.fiber_matrix_pool();
  const auto mat_of = op.fiber_matrix_of();
  const std::size_t period = op.fiber_period();
  const std::size_t count = op.dim() / d;
  std::string detail;
  if (period == 0 ? mat_of.size() != count
                  : (mat_of.size() != period || count % period != 0)) {
    proof.ok = false;
    detail = "fiber table size is neither the fiber count nor a verified "
             "period dividing it";
  }
  // Walk EVERY fiber: a period-compressed table must match the reference
  // selector over the whole range, not just the stored window — this is
  // the independent proof of the compiler's periodicity claim.
  for (std::size_t f = 0; proof.ok && f < count; ++f) {
    const std::uint32_t entry = mat_of[period == 0 ? f : f % period];
    const std::size_t base = (f / s) * d * s + (f % s);
    const Matrix* reference = selector(base);
    if (reference == nullptr) {
      if (entry != StateVector::kFiberIdentity) {
        proof.ok = false;
        detail = "fiber " + std::to_string(f) +
                 " compiled a matrix where the reference is identity";
      }
      continue;
    }
    if (entry == StateVector::kFiberIdentity) {
      proof.ok = false;
      detail = "fiber " + std::to_string(f) +
               " compiled identity where the reference selects a matrix";
      continue;
    }
    const std::size_t offset = std::size_t{entry} * d * d;
    if (offset + d * d > pool.size()) {
      proof.ok = false;
      detail = "fiber " + std::to_string(f) + " pool index out of range";
      continue;
    }
    const double dist = frobenius_distance(pool.subspan(offset, d * d),
                                           reference->data());
    proof.max_error = std::max(proof.max_error, dist);
    if (dist > kOperatorNormTolerance) {
      proof.ok = false;
      detail = "fiber " + std::to_string(f) + " matrix drifts " +
               std::to_string(dist) + " (Frobenius) from the reference";
    }
  }
  record(std::move(proof), detail);
}

void TvValidator::check_value_shift(
    const CompiledOp& op, std::span<const std::size_t> shift_per_cond_value) {
  TvProof proof{"lower-value-shift", kind_name(op.kind()), op.dim(), 0.0,
                true, true};
  const auto view = op.value_shift_view();
  std::string detail;
  if (view.shifts.size() != shift_per_cond_value.size()) {
    proof.ok = false;
    detail = "compiled " + std::to_string(view.shifts.size()) +
             " shifts for " + std::to_string(shift_per_cond_value.size()) +
             " condition values";
  }
  for (std::size_t c = 0; proof.ok && c < view.shifts.size(); ++c) {
    const std::size_t want = shift_per_cond_value[c] % view.target_dim;
    if (view.shifts[c] != want) {
      proof.ok = false;
      detail = "shift[" + std::to_string(c) + "] = " +
               std::to_string(view.shifts[c]) +
               " but the reference reduces to " + std::to_string(want);
    }
  }
  record(std::move(proof), detail);
}

void TvValidator::check_lowered(const CompiledOp& source,
                                const CompiledOp& permutation) {
  TvProof proof{"lower-to-permutation", kind_name(permutation.kind()),
                permutation.dim(), 0.0, true, true};
  std::string detail;
  if (source.kind() != CompiledOp::Kind::kValueShift ||
      permutation.kind() != CompiledOp::Kind::kPermutation ||
      source.dim() != permutation.dim()) {
    proof.ok = false;
    detail = "re-lowering must take a value shift to a permutation of the "
             "same dimension";
  } else {
    const auto expected =
        shift_to_permutation(source.value_shift_view(), source.dim());
    const auto table = permutation.permutation_table();
    if (!is_bijection(table)) {
      proof.ok = false;
      detail = "lowered table is not a bijection";
    } else if (!std::equal(expected.begin(), expected.end(), table.begin(),
                           table.end())) {
      proof.ok = false;
      detail = "lowered table differs from the affine relabelling the "
               "shift geometry prescribes";
    } else if (!inverse_consistent(
                   table, permutation.permutation_inverse_table())) {
      proof.ok = false;
      detail = "lowered inverse table does not invert the forward table";
    }
  }
  record(std::move(proof), detail);
}

void TvValidator::check_fused(const CompiledOp& first,
                              const CompiledOp& second,
                              const CompiledOp& result) {
  switch (result.kind()) {
    // The symbolic engine discharges every CompiledOp kind below; the
    // tv-exhaustiveness lint rule cross-checks this list against the
    // op-kind registry markers in qsim/compiled_op.hpp.
    // dqs-lint: tv-handled-kinds-begin
    //   kPermutation  kDiagonal  kFiberDense  kValueShift
    // dqs-lint: tv-handled-kinds-end
    case CompiledOp::Kind::kPermutation: {
      TvProof proof{"fuse-permutation", kind_name(result.kind()),
                    result.dim(), 0.0, true, true};
      const auto expected = compose_permutations(first.permutation_table(),
                                                 second.permutation_table());
      const auto table = result.permutation_table();
      proof.ok = std::equal(expected.begin(), expected.end(), table.begin(),
                            table.end()) &&
                 inverse_consistent(table,
                                    result.permutation_inverse_table());
      record(std::move(proof),
             "fused table differs from second ∘ first composition (or its "
             "inverse table does not invert it)");
      return;
    }
    case CompiledOp::Kind::kDiagonal: {
      TvProof proof{"fuse-diagonal", kind_name(result.kind()), result.dim(),
                    0.0, false, true};
      const auto expected = compose_diagonals(first.diagonal_factors(),
                                              second.diagonal_factors());
      proof.max_error =
          diagonal_distance(expected, result.diagonal_factors());
      proof.ok = proof.max_error <= kOperatorNormTolerance;
      const std::string detail =
          "fused factors drift " + std::to_string(proof.max_error) +
          " (operator norm) from the pointwise product";
      record(std::move(proof), detail);
      return;
    }
    case CompiledOp::Kind::kValueShift: {
      TvProof proof{"fuse-value-shift", kind_name(result.kind()),
                    result.dim(), 0.0, true, true};
      const auto v1 = first.value_shift_view();
      const auto v2 = second.value_shift_view();
      const auto vr = result.value_shift_view();
      std::string detail;
      if (vr.target_dim != v1.target_dim ||
          vr.target_stride != v1.target_stride ||
          vr.cond_dim != v1.cond_dim || vr.cond_stride != v1.cond_stride ||
          vr.has_flag != v1.has_flag || vr.flag_stride != v1.flag_stride) {
        proof.ok = false;
        detail = "fused shift changed the replay geometry";
      }
      for (std::size_t c = 0; proof.ok && c < vr.shifts.size(); ++c) {
        const std::size_t want =
            (v1.shifts[c] + v2.shifts[c]) % v1.target_dim;
        if (vr.shifts[c] != want) {
          proof.ok = false;
          detail = "fused shift[" + std::to_string(c) +
                   "] differs from (s1 + s2) mod d";
        }
      }
      record(std::move(proof), detail);
      return;
    }
    case CompiledOp::Kind::kFiberDense: {
      // can_fuse() rejects fiber-dense pairs; reaching here means the
      // peephole fused what it must not.
      TvProof proof{"fuse-fiber-dense", kind_name(result.kind()),
                    result.dim(), 0.0, false, false};
      record(std::move(proof),
             "fiber-dense ops must never fuse (no matrix-product pool)");
      return;
    }
  }
}

TvRecorder::TvRecorder(TvValidator& validator)
    : validator_(validator), previous_(set_compile_observer(this)) {}

TvRecorder::~TvRecorder() { set_compile_observer(previous_); }

void TvRecorder::on_permutation(
    const CompiledOp& op, const std::function<std::size_t(std::size_t)>& map) {
  validator_.check_permutation(op, map);
}

void TvRecorder::on_diagonal(const CompiledOp& op,
                             const std::function<cplx(std::size_t)>& phase) {
  validator_.check_diagonal(op, phase);
}

void TvRecorder::on_fiber_dense(
    const CompiledOp& op, const RegisterLayout& layout, RegisterId target,
    const std::function<const Matrix*(std::size_t)>& selector) {
  validator_.check_fiber_dense(op, layout, target, selector);
}

void TvRecorder::on_value_shift(
    const CompiledOp& op, std::span<const std::size_t> shift_per_cond_value) {
  validator_.check_value_shift(op, shift_per_cond_value);
}

void TvRecorder::on_lowered(const CompiledOp& source,
                            const CompiledOp& permutation) {
  validator_.check_lowered(source, permutation);
}

void TvRecorder::on_fused(const CompiledOp& first, const CompiledOp& second,
                          const CompiledOp& result) {
  validator_.check_fused(first, second, result);
}

const std::vector<std::string>& tv_pass_names() {
  // dqs-lint: pass-registry-begin
  static const std::vector<std::string> names = {
      "translation-validation",
  };
  // dqs-lint: pass-registry-end
  return names;
}

}  // namespace qs::analysis::tv
