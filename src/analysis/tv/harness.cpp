#include "analysis/tv/harness.hpp"

#include <cmath>
#include <numbers>
#include <utility>
#include <vector>

#include "analysis/passes.hpp"
#include "analysis/tv/engine.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "qsim/compiled_op.hpp"
#include "sampling/amplitude_amplification.hpp"
#include "sampling/backend.hpp"

namespace qs::analysis::tv {

namespace {

/// Deterministic seed for the perturbed database the oracle shapes are
/// compiled from: a fixed base mixed with the public parameters, so equal
/// points always validate the identical pipeline.
std::uint64_t harness_seed(const PublicParams& p, QueryMode mode) {
  std::uint64_t seed = 0x7e57c0de5eedull;
  seed ^= std::uint64_t{p.universe} * 0x9e3779b97f4a7c15ull;
  seed ^= std::uint64_t{p.machines} << 17;
  seed ^= p.nu << 34;
  seed ^= p.total << 3;
  seed ^= mode == QueryMode::kParallel ? 0x1ull : 0x0ull;
  return seed;
}

/// The Eq. (1) shift table of one machine: c_ij mod (ν+1) (or its negation
/// for O_j†), read from the public-facing multiplicity accessors — the
/// same closed form Machine's private oracle cache compiles.
std::vector<std::size_t> shift_table(const Machine& m, std::size_t modulus,
                                     bool adjoint) {
  std::vector<std::size_t> shifts(m.data().universe());
  for (std::size_t i = 0; i < shifts.size(); ++i) {
    const std::size_t c = static_cast<std::size_t>(m.data().count(i)) % modulus;
    shifts[i] = adjoint ? (modulus - c) % modulus : c;
  }
  return shifts;
}

/// Compile the representative program through the real entry points while
/// a TvRecorder is armed. Covers all four CompiledOp kinds, the
/// value-shift re-lowering and all three fusion rules.
void compile_representative_program(const PublicParams& params,
                                    QueryMode mode) {
  const auto regs = make_coordinator_layout(params.universe, params.nu);
  const RegisterLayout& layout = regs.layout;
  const std::size_t modulus = params.nu + 1;

  Rng rng(harness_seed(params, mode));
  const DistributedDatabase db = perturbed_database(params, rng);

  const AAPlan plan = plan_zero_error(
      static_cast<double>(params.total) /
      (static_cast<double>(params.nu) * static_cast<double>(params.universe)));

  CompiledProgram program;

  // One Q iterate's phase oracles: S_χ(φ) marks the good (flag = 1)
  // branch, S_0(ϕ) the all-zero state; adjacent diagonals exercise the
  // fuse-diagonal peephole.
  const double varphi = plan.already_exact ? std::numbers::pi : plan.theta;
  const cplx chi_phase{std::cos(varphi), std::sin(varphi)};
  program.push(CompiledOp::diagonal(layout, [&](std::size_t x) {
    return layout.digit(x, regs.flag) == 1 ? chi_phase : cplx{1.0, 0.0};
  }));
  program.push(CompiledOp::diagonal(layout, [&](std::size_t x) {
    return x == 0 ? cplx{-1.0, 0.0} : cplx{1.0, 0.0};
  }));

  // The Eq. (1) oracle shape O_j for the first machines, counting the
  // perturbed database's actual shift tables; two adjacent shifts with
  // identical geometry exercise fuse-value-shift.
  const std::size_t probes = params.machines < 2 ? params.machines : 2;
  for (std::size_t j = 0; j < probes; ++j) {
    program.push(CompiledOp::value_shift(
        layout, regs.count, regs.elem,
        shift_table(db.machine(j), modulus, false)));
  }

  // The flag-controlled Ô_j shape of Eq. (2).
  program.push(CompiledOp::controlled_value_shift(
      layout, regs.count, regs.elem, regs.flag,
      shift_table(db.machine(0), modulus, mode == QueryMode::kParallel)));

  // 𝒰 (Eq. 6): one 2×2 rotation on the flag per counter value — the
  // kFiberDense lowering, with the same count-digit selector the
  // production backend uses.
  const std::vector<Matrix> rotations = make_u_rotations(params.nu, false);
  program.push(CompiledOp::fiber_dense(
      layout, regs.flag, [&](std::size_t fiber_base) {
        return &rotations[layout.digit(fiber_base, regs.count)];
      }));

  (void)program.fuse();

  // Re-lowering: a value shift IS an affine relabelling; prove the
  // explicit table agrees, then fuse it with the Lemma 4.4 coordinator
  // adder (counter += 1 mod ν+1) to exercise fuse-permutation.
  const CompiledOp shift = CompiledOp::value_shift(
      layout, regs.count, regs.elem, shift_table(db.machine(0), modulus, true));
  CompiledProgram perms;
  perms.push(shift.lowered_to_permutation());
  perms.push(CompiledOp::permutation(layout, [&](std::size_t x) {
    const std::size_t c = layout.digit(x, regs.count);
    return layout.with_digit(x, regs.count, (c + 1) % modulus);
  }));
  (void)perms.fuse();

  // Finally, the production pipeline itself: constructing the backend
  // compiles 𝒰 and 𝒰† through the same observer.
  const SingleStateBackend backend(db, StatePrep::kHouseholder);
  (void)backend;
}

}  // namespace

TvRun run_translation_validation(const PublicParams& params, QueryMode mode) {
  QS_REQUIRE(params.universe > 0 && params.machines > 0 && params.nu > 0,
             "invalid public parameters");
  QS_REQUIRE(params.total > 0 && params.total <= params.nu * params.universe,
             "need 0 < M ≤ νN to realise the public parameters");
  TvValidator validator;
  {
    TvRecorder recorder(validator);
    compile_representative_program(params, mode);
  }
  TvRun run;
  run.facts = validator.facts();
  run.diagnostics = validator.diagnostics();
  // An empty run means the observer never fired — that is a harness bug,
  // not a clean certificate.
  QS_REQUIRE(run.facts.lowerings > 0 && run.facts.fusions > 0,
             "translation validation observed no compilations");
  return run;
}

}  // namespace qs::analysis::tv
