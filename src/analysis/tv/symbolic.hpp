// Symbolic operator forms for translation validation (dqs-tv).
//
// Every operator the compiled layer (qsim/compiled_op.hpp) emits has a
// closed symbolic form: a permutation table is an explicit bijection on
// [0, dim) that composes by table lookup, a diagonal is a phase map that
// composes pointwise, a value shift is an affine relabelling over
// Z_modulus, and a fiber-dense block is a bounded-norm matrix acting on
// disjoint fibers. This header is the algebra the translation-validation
// engine (engine.hpp) computes in: composition, distance, and the expected
// permutation of an affine shift — all exact integer/index arithmetic
// except the two norm distances, which bound floating-point drift.
//
// TvProof / TvFacts are the engine's output shape: plain aggregates with
// defaulted equality so dqs-tv-v1 certificates (certificate.hpp) survive a
// JSON round trip bit for bit.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "qsim/compiled_op.hpp"
#include "qsim/linalg.hpp"

namespace qs::analysis::tv {

/// One discharged (or failed) proof obligation: `rule` names the lowering
/// or peephole being validated ("lower-permutation", "fuse-diagonal", …),
/// `kind` the CompiledOp kind of the result, `dim` its dimension.
/// `exact` records whether the obligation demanded bit-identity (0 ULP —
/// permutations and shifts move amplitudes without arithmetic) or the
/// 1e-12 operator-norm budget (diagonal / fiber-dense, where fusion
/// reassociates one multiplication); `max_error` is the worst distance
/// actually observed, always 0 for exact obligations that hold.
struct TvProof {
  std::string rule;
  std::string kind;
  std::uint64_t dim = 0;
  double max_error = 0.0;
  bool exact = false;
  bool ok = false;

  friend bool operator==(const TvProof&, const TvProof&) = default;
};

/// Aggregated facts of one validation run: how many lowerings and fusions
/// were proved, how many obligations failed, and the worst norm distance
/// seen across the inexact ones.
struct TvFacts {
  std::uint64_t lowerings = 0;  ///< compile/lower obligations discharged
  std::uint64_t fusions = 0;    ///< fused() peepholes discharged
  std::uint64_t failed = 0;     ///< obligations that did NOT hold
  double max_error = 0.0;
  std::vector<TvProof> proofs;

  bool all_ok() const { return failed == 0; }

  friend bool operator==(const TvFacts&, const TvFacts&) = default;
};

/// "kPermutation" / "kDiagonal" / "kFiberDense" / "kValueShift".
const char* kind_name(CompiledOp::Kind kind);

/// True iff `table` is a bijection on [0, table.size()).
bool is_bijection(std::span<const std::uint32_t> table);

/// Exact composition `second ∘ first` of two permutation tables:
/// result[x] = second[first[x]]. Requires equal sizes.
std::vector<std::uint32_t> compose_permutations(
    std::span<const std::uint32_t> first, std::span<const std::uint32_t> second);

/// Pointwise product of two phase maps — the symbolic form of fusing two
/// diagonal operators. Requires equal sizes.
std::vector<cplx> compose_diagonals(std::span<const cplx> first,
                                    std::span<const cplx> second);

/// sup_x |a[x] − b[x]| — the exact operator norm of the difference of the
/// two diagonal operators with these factor arrays.
double diagonal_distance(std::span<const cplx> a, std::span<const cplx> b);

/// Frobenius distance ‖a − b‖_F between two equally-sized coefficient
/// arrays (matrix pools, state vectors). Upper-bounds the operator norm of
/// the difference, so proving it ≤ 1e-12 proves the operator-norm bound.
double frobenius_distance(std::span<const cplx> a, std::span<const cplx> b);

/// The permutation table a value shift MUST lower to: the affine
/// relabelling x → x with its target digit advanced by shifts[cond(x)]
/// mod target_dim, gated on the flag qubit when `has_flag` — evaluated
/// from the view's geometry alone, independently of the compiled kernel's
/// own index arithmetic.
std::vector<std::uint32_t> shift_to_permutation(
    const CompiledOp::ValueShiftView& view, std::size_t dim);

}  // namespace qs::analysis::tv
