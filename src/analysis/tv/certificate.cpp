#include "analysis/tv/certificate.hpp"

#include <sstream>
#include <utility>

#include "analysis/abstint/cert_io.hpp"
#include "analysis/abstint/engine.hpp"
#include "analysis/passes.hpp"
#include "analysis/tv/harness.hpp"
#include "common/require.hpp"
#include "telemetry/export.hpp"
#include "telemetry/json.hpp"

namespace qs::analysis::tv {

namespace {

/// Append the harness outcome (facts + rendered diagnostics) to a
/// certificate whose base facts are already filled.
void attach_tv_run(TvCertificate& cert, const PublicParams& params,
                   QueryMode mode) {
  try {
    TvRun run = run_translation_validation(params, mode);
    cert.tv = std::move(run.facts);
    for (const auto& d : run.diagnostics) {
      cert.base.diagnostics.push_back(to_string(d));
    }
  } catch (const ContractViolation& e) {
    cert.base.diagnostics.push_back(
        std::string("translation validation rejected the public "
                    "parameters: ") +
        e.what());
  }
}

}  // namespace

TvCertificate certify_tv(const PublicParams& params, QueryMode mode,
                         const TvOptions& options) {
  TvCertificate cert;
  cert.base = certify_compiled(params, mode);
  attach_tv_run(cert, params, mode);

  // Static obliviousness: the taint join over the lifted program.
  try {
    cert.taint = taint_of(lift_compiled(params, mode));
  } catch (const ContractViolation&) {
    // Lift rejected the parameters; the base certificate already carries
    // the diagnostic, and the default taint facts prove nothing.
  }

  // Differential cross-check: the dynamic perturbed-recompilation pass
  // must reach the same verdict the static proof did.
  if (options.obliviousness_trials > 0) {
    try {
      const auto dynamic_findings = certify_obliviousness(
          params, mode, options.obliviousness_trials, options.seed);
      const bool dynamic_oblivious = dynamic_findings.empty();
      if (dynamic_oblivious == cert.taint.oblivious_statically_proven) {
        cert.dynamic_cross_check = "agree";
      } else {
        cert.dynamic_cross_check = "disagree";
        cert.base.diagnostics.push_back(
            "[translation-validation] static taint verdict (" +
            std::string(cert.taint.oblivious_statically_proven
                            ? "oblivious"
                            : "not proven") +
            ") disagrees with the dynamic perturbed-recompilation pass (" +
            std::string(dynamic_oblivious ? "oblivious" : "flagged") +
            ") (fix: the two obliviousness checkers must agree on every "
            "schedule; one of them is unsound for this point)");
      }
    } catch (const ContractViolation&) {
      cert.dynamic_cross_check = "skipped";
    }
  }
  return cert;
}

TvCertificate certify_tv_recovered(const RecoveredSchedule& recovered,
                                   const PublicParams& params,
                                   QueryMode mode) {
  TvCertificate cert;
  cert.base = certify_recovered(recovered, params, mode);
  attach_tv_run(cert, params, mode);
  cert.taint = taint_of(lift_recovered(recovered, params, mode));
  return cert;
}

std::string to_json(const TvCertificate& cert) {
  std::ostringstream os;
  os << "{\n\"schema\": \"" << telemetry::json_escape(cert.schema)
     << "\",\n";
  cert_io::emit_certificate_body(os, cert.base);

  const TvFacts& t = cert.tv;
  os << ",\n\"tv\": {\"lowerings\": " << t.lowerings
     << ", \"fusions\": " << t.fusions << ", \"failed\": " << t.failed
     << ", \"max_error\": " << cert_io::num(t.max_error)
     << ", \"proofs\": [";
  for (std::size_t i = 0; i < t.proofs.size(); ++i) {
    const TvProof& p = t.proofs[i];
    if (i != 0) os << ", ";
    os << "{\"rule\": \"" << telemetry::json_escape(p.rule)
       << "\", \"kind\": \"" << telemetry::json_escape(p.kind)
       << "\", \"dim\": " << p.dim
       << ", \"max_error\": " << cert_io::num(p.max_error)
       << ", \"exact\": " << cert_io::bool_str(p.exact)
       << ", \"ok\": " << cert_io::bool_str(p.ok) << "}";
  }
  os << "]},\n";

  const TaintFacts& taint = cert.taint;
  os << "\"taint\": {\"public_ops\": " << taint.public_ops
     << ", \"content_ops\": " << taint.content_ops
     << ", \"max_taint\": " << static_cast<unsigned>(taint.max_taint)
     << ", \"oblivious_statically_proven\": "
     << cert_io::bool_str(taint.oblivious_statically_proven)
     << ", \"dynamic_cross_check\": \""
     << telemetry::json_escape(cert.dynamic_cross_check) << "\"}\n}\n";
  return os.str();
}

TvCertificateParseResult parse_tv_certificate_checked(
    const std::string& text) {
  TvCertificateParseResult result;
  cert_io::ParseCtx ctx;
  telemetry::json::Value doc;
  try {
    doc = telemetry::json::parse(text);
  } catch (const ContractViolation& e) {
    ctx.fail("$", std::string("document is not valid JSON: ") + e.what());
    result.error = ctx.error;
    return result;
  }
  result.certificate.schema = cert_io::field_string(doc, "$", "schema", ctx);
  if (!ctx.failed && result.certificate.schema != "dqs-tv-v1") {
    ctx.fail("$.schema", "not a dqs-tv-v1 document: schema is '" +
                             result.certificate.schema + "'");
  }
  if (!ctx.failed) {
    (void)cert_io::read_certificate_body(doc, result.certificate.base, ctx);
  }

  if (const auto* t = cert_io::field(doc, "$", "tv", ctx)) {
    TvFacts& facts = result.certificate.tv;
    facts.lowerings = cert_io::field_u64(*t, "$.tv", "lowerings", ctx);
    facts.fusions = cert_io::field_u64(*t, "$.tv", "fusions", ctx);
    facts.failed = cert_io::field_u64(*t, "$.tv", "failed", ctx);
    facts.max_error = cert_io::field_num(*t, "$.tv", "max_error", ctx);
    if (const auto* proofs = cert_io::field(*t, "$.tv", "proofs", ctx)) {
      if (!proofs->is_array()) {
        ctx.fail("$.tv.proofs", "expected an array");
      } else {
        for (std::size_t i = 0; i < proofs->array.size(); ++i) {
          const auto& entry = proofs->array[i];
          const std::string path = "$.tv.proofs[" + std::to_string(i) + "]";
          TvProof proof;
          proof.rule = cert_io::field_string(entry, path, "rule", ctx);
          proof.kind = cert_io::field_string(entry, path, "kind", ctx);
          proof.dim = cert_io::field_u64(entry, path, "dim", ctx);
          proof.max_error = cert_io::field_num(entry, path, "max_error", ctx);
          proof.exact = cert_io::field_bool(entry, path, "exact", ctx);
          proof.ok = cert_io::field_bool(entry, path, "ok", ctx);
          if (ctx.failed) break;
          facts.proofs.push_back(std::move(proof));
        }
      }
    }
  }

  if (const auto* taint = cert_io::field(doc, "$", "taint", ctx)) {
    TaintFacts& facts = result.certificate.taint;
    facts.public_ops = cert_io::field_u64(*taint, "$.taint", "public_ops", ctx);
    facts.content_ops =
        cert_io::field_u64(*taint, "$.taint", "content_ops", ctx);
    facts.max_taint = static_cast<std::uint8_t>(
        cert_io::field_u64(*taint, "$.taint", "max_taint", ctx));
    facts.oblivious_statically_proven = cert_io::field_bool(
        *taint, "$.taint", "oblivious_statically_proven", ctx);
    result.certificate.dynamic_cross_check =
        cert_io::field_string(*taint, "$.taint", "dynamic_cross_check", ctx);
    if (!ctx.failed && result.certificate.dynamic_cross_check != "agree" &&
        result.certificate.dynamic_cross_check != "disagree" &&
        result.certificate.dynamic_cross_check != "skipped") {
      ctx.fail("$.taint.dynamic_cross_check",
               "expected \"agree\", \"disagree\" or \"skipped\", found \"" +
                   result.certificate.dynamic_cross_check + "\"");
    }
  }

  if (ctx.failed) result.error = ctx.error;
  return result;
}

TvCertificate parse_tv_certificate(const std::string& text) {
  TvCertificateParseResult result = parse_tv_certificate_checked(text);
  QS_REQUIRE(result.ok(), result.error->to_string());
  return std::move(result.certificate);
}

}  // namespace qs::analysis::tv
