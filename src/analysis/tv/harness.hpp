// Per-point translation-validation harness.
//
// run_translation_validation() arms a TvRecorder and pushes a
// representative compiled program for the public parameters through the
// REAL lowering entry points — the S_χ/S_0 phase oracles, the Eq. (1)/(2)
// oracle shifts of a deterministic perturbed database, the
// count-conditioned 𝒰 rotation, the Lemma 4.4 coordinator adder, the
// value-shift→permutation re-lowering, and the CompiledProgram::fuse
// peephole — plus a full SingleStateBackend construction so the production
// pipeline's own compiles are validated too. Every lowering and fusion
// that fires inside the scope is proved equivalent to its reference
// semantics at compile time; the result feeds dqs-tv-v1 certificates
// (certificate.hpp) and the VerifyOptions::translation_validation knob
// (verifier.hpp).
#pragma once

#include <vector>

#include "analysis/ir.hpp"
#include "analysis/tv/symbolic.hpp"
#include "sampling/schedule.hpp"

namespace qs::analysis::tv {

/// Outcome of one harness run: the aggregated proof facts and any
/// "translation-validation" diagnostics for obligations that failed.
struct TvRun {
  TvFacts facts;
  std::vector<Diagnostic> diagnostics;
};

/// Validate the compiled-operator pipeline for (params, mode). The
/// database the oracle shapes are drawn from is perturbed deterministically
/// from the parameters, so the run — and its certificate — is reproducible.
TvRun run_translation_validation(const PublicParams& params, QueryMode mode);

}  // namespace qs::analysis::tv
