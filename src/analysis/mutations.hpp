// Mutation fixtures: deliberately corrupted schedules the analyzer MUST
// flag.
//
// A static verifier that has never caught a bug is untested tooling. Every
// entry in mutation_catalog() corrupts a freshly compiled schedule in one
// specific way (dropped adjoint, swapped machine index, off-by-one budget,
// leaked register, …) and names the checker pass that must report it; the
// tier-1 tests and `dqs_verify --mutants` fail unless every mutant is
// flagged by its expected pass — the analyzer analogue of the linter's
// self-testing fixtures in tests/lint_fixtures/.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "analysis/abstint/recovered.hpp"
#include "analysis/ir.hpp"

namespace qs::analysis {

struct MutationSpec {
  std::string name;
  std::string description;
  /// The pass or abstract-domain id (passes.hpp / abstint/engine.hpp) that
  /// must flag this mutant.
  std::string expected_pass;
  /// Query model whose schedule the mutation corrupts.
  QueryMode mode = QueryMode::kSequential;
  /// Transcript-level corruption (what a broken recorder would emit), or …
  std::function<Transcript(Transcript)> mutate_transcript = {};
  /// … micro-op-level corruption (what a broken transport would do), or …
  std::function<ProtocolProgram(ProtocolProgram)> mutate_program = {};
  /// … recovery-metadata corruption (what a broken recovery executor would
  /// report), or …
  std::function<RecoveredSchedule(RecoveredSchedule)> mutate_recovered = {};
  /// … a self-contained corrupted scenario returning the diagnostics
  /// directly (used by the translation-validation fixtures, which corrupt
  /// COMPILED operators rather than schedules); exactly one of the four is
  /// set.
  std::function<std::vector<Diagnostic>(const PublicParams&)> run_custom = {};
};

/// All mutation fixtures. Each is flagged by its expected pass for any
/// valid public parameters with n ≥ 2 machines and d ≥ 1.
const std::vector<MutationSpec>& mutation_catalog();

/// Compile the schedule for (params, spec.mode), apply the corruption and
/// run the verifier; returns the resulting diagnostics.
std::vector<Diagnostic> run_mutation(const MutationSpec& spec,
                                     const PublicParams& params);

/// True when run_mutation() reports at least one diagnostic from
/// spec.expected_pass.
bool mutation_flagged(const MutationSpec& spec, const PublicParams& params);

}  // namespace qs::analysis
