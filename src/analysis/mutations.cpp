#include "analysis/mutations.hpp"

#include <algorithm>
#include <utility>

#include "analysis/tv/engine.hpp"
#include "analysis/verifier.hpp"
#include "common/require.hpp"
#include "qsim/compiled_op.hpp"
#include "qsim/register_layout.hpp"

namespace qs::analysis {

namespace {

using Events = std::vector<TranscriptEvent>;

Transcript from_events(const Events& events) {
  Transcript t;
  for (const auto& e : events) {
    if (e.kind == QueryKind::kSequential) {
      // Mutation fixtures forge corrupted schedules by design; this is the
      // one sanctioned re-recording site outside the samplers.
      // dqs-lint: allow(transcript-discipline)
      t.record_sequential(e.machine, e.adjoint);
    } else {
      // dqs-lint: allow(transcript-discipline) — same fixture exception.
      t.record_parallel_round(e.adjoint);
    }
  }
  return t;
}

/// match[i] = index of the adjoint event that pops forward event i under
/// the LIFO discipline (kNoEvent if never popped).
std::vector<std::size_t> matching_adjoints(const Events& events) {
  std::vector<std::size_t> match(events.size(), kNoEvent);
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (!events[i].adjoint) {
      stack.push_back(i);
    } else if (!stack.empty()) {
      match[stack.back()] = i;
      stack.pop_back();
    }
  }
  return match;
}

std::size_t find_last(const Events& events, QueryKind kind, bool adjoint) {
  for (std::size_t i = events.size(); i-- > 0;) {
    if (events[i].kind == kind && events[i].adjoint == adjoint) return i;
  }
  QS_REQUIRE(false, "mutation fixture: schedule lacks the required event");
  return kNoEvent;
}

std::size_t find_first(const Events& events, QueryKind kind, bool adjoint) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind == kind && events[i].adjoint == adjoint) return i;
  }
  QS_REQUIRE(false, "mutation fixture: schedule lacks the required event");
  return kNoEvent;
}

std::size_t max_machine(const Events& events) {
  std::size_t m = 0;
  for (const auto& e : events) {
    if (e.kind == QueryKind::kSequential) m = std::max(m, e.machine);
  }
  return m;
}

std::vector<MutationSpec> build_catalog() {
  std::vector<MutationSpec> catalog;

  catalog.push_back(
      {"drop-adjoint",
       "the final O_j† is silently dropped, leaving its forward query open",
       "adjoint-nesting", QueryMode::kSequential,
       [](Transcript t) {
         Events ev = t.events();
         ev.erase(ev.begin() + static_cast<std::ptrdiff_t>(find_last(
                      ev, QueryKind::kSequential, true)));
         return from_events(ev);
       },
       nullptr});

  catalog.push_back(
      {"drop-parallel-adjoint",
       "the final O† round is dropped from the parallel schedule",
       "adjoint-nesting", QueryMode::kParallel,
       [](Transcript t) {
         Events ev = t.events();
         ev.erase(ev.begin() + static_cast<std::ptrdiff_t>(find_last(
                      ev, QueryKind::kParallelRound, true)));
         return from_events(ev);
       },
       nullptr});

  catalog.push_back(
      {"swap-machine",
       "one forward query goes to the wrong machine, so its adjoint no "
       "longer closes it",
       "adjoint-nesting", QueryMode::kSequential,
       [](Transcript t) {
         Events ev = t.events();
         const auto i = find_first(ev, QueryKind::kSequential, false);
         ev[i].machine += 1;
         return from_events(ev);
       },
       nullptr});

  catalog.push_back(
      {"off-by-one-budget",
       "a matched O_j/O_j† pair is removed — still well nested, but the "
       "query count misses the Theorem 4.3 closed form",
       "query-budget", QueryMode::kSequential,
       [](Transcript t) {
         Events ev = t.events();
         const auto i = find_first(ev, QueryKind::kSequential, false);
         const auto k = matching_adjoints(ev)[i];
         QS_ASSERT(k != kNoEvent, "compiled schedule must be well nested");
         ev.erase(ev.begin() + static_cast<std::ptrdiff_t>(k));
         ev.erase(ev.begin() + static_cast<std::ptrdiff_t>(i));
         return from_events(ev);
       },
       nullptr});

  catalog.push_back(
      {"off-by-one-rounds",
       "a matched O/O† round pair is removed from the parallel schedule "
       "(Theorem 4.5 budget violation)",
       "query-budget", QueryMode::kParallel,
       [](Transcript t) {
         Events ev = t.events();
         const auto i = find_first(ev, QueryKind::kParallelRound, false);
         const auto k = matching_adjoints(ev)[i];
         QS_ASSERT(k != kNoEvent, "compiled schedule must be well nested");
         ev.erase(ev.begin() + static_cast<std::ptrdiff_t>(k));
         ev.erase(ev.begin() + static_cast<std::ptrdiff_t>(i));
         return from_events(ev);
       },
       nullptr});

  catalog.push_back(
      {"out-of-range-machine",
       "a query addresses machine n, one past the public machine count",
       "ownership", QueryMode::kSequential,
       [](Transcript t) {
         Events ev = t.events();
         const auto i = find_first(ev, QueryKind::kSequential, false);
         ev[i].machine = max_machine(ev) + 1;
         return from_events(ev);
       },
       nullptr});

  catalog.push_back(
      {"extra-parallel-round",
       "a stray forward O round is appended and never undone",
       "adjoint-nesting", QueryMode::kParallel,
       [](Transcript t) {
         Events ev = t.events();
         ev.push_back({QueryKind::kParallelRound, 0, false});
         return from_events(ev);
       },
       nullptr});

  catalog.push_back(
      {"overweight-machine",
       "a matched pair is re-routed to a neighbour machine — nesting and "
       "budget hold, but the per-machine histogram is no longer flat",
       "load-balance", QueryMode::kSequential,
       [](Transcript t) {
         Events ev = t.events();
         const auto i = find_first(ev, QueryKind::kSequential, false);
         const auto k = matching_adjoints(ev)[i];
         QS_ASSERT(k != kNoEvent, "compiled schedule must be well nested");
         ev[i].machine += 1;
         ev[k].machine += 1;
         return from_events(ev);
       },
       nullptr});

  catalog.push_back(
      {"reordered-schedule",
       "two machines trade places consistently — every structural pass "
       "holds, but the transcript no longer equals the public-parameter "
       "schedule (a data-dependent reordering would look like this)",
       "obliviousness", QueryMode::kSequential,
       [](Transcript t) {
         Events ev = t.events();
         const auto match = matching_adjoints(ev);
         const auto i = find_first(ev, QueryKind::kSequential, false);
         const auto j = i + 1;  // the schedule opens O_0 O_1 …
         QS_ASSERT(j < ev.size() && match[i] != kNoEvent &&
                       match[j] != kNoEvent,
                   "need two forward queries with matched adjoints");
         std::swap(ev[i], ev[j]);
         std::swap(ev[match[i]], ev[match[j]]);
         return from_events(ev);
       },
       nullptr});

  catalog.push_back(
      {"foreign-oracle",
       "a machine applies its oracle to a register bundle another machine "
       "holds (transport corruption below the transcript level)",
       "ownership", QueryMode::kSequential, nullptr,
       [](ProtocolProgram p) {
         for (auto& op : p.ops) {
           if (op.kind == OpKind::kOracle) {
             op.machine = (op.machine + 1) % p.params.machines;
             break;
           }
         }
         return p;
       }});

  catalog.push_back(
      {"leaked-register",
       "a machine never returns the bundle, so the next send overlaps an "
       "open transfer",
       "ownership", QueryMode::kSequential, nullptr,
       [](ProtocolProgram p) {
         for (auto it = p.ops.begin(); it != p.ops.end(); ++it) {
           if (it->kind == OpKind::kRecv) {
             p.ops.erase(it);
             break;
           }
         }
         return p;
       }});

  // --- abstract-domain fixtures (abstint/engine.hpp) -----------------------

  catalog.push_back(
      {"phantom-transfer",
       "a queryless send/receive round trip is spliced between two blocks — "
       "ownership, nesting, budget and balance all still hold, but the "
       "transfer is communication no oracle ledger would ever charge",
       "cost-domain", QueryMode::kSequential, nullptr,
       [](ProtocolProgram p) {
         for (auto it = p.ops.begin(); it != p.ops.end(); ++it) {
           if (it->kind != OpKind::kRecv) continue;
           const std::size_t machine = it->machine;
           ProtocolOp send{OpKind::kSend, machine, false, "", kNoEvent};
           ProtocolOp recv{OpKind::kRecv, machine, false, "", kNoEvent};
           it = p.ops.insert(std::next(it), send);
           p.ops.insert(std::next(it), recv);
           break;
         }
         return p;
       }});

  catalog.push_back(
      {"detuned-final-phase",
       "the last S_0(ϕ) rotation runs with a detuned angle — structurally "
       "identical schedule, but the replayed AA trajectory no longer lands "
       "on |good⟩ exactly (the zero-error guarantee is silently lost)",
       "amplitude-domain", QueryMode::kSequential, nullptr,
       [](ProtocolProgram p) {
         for (auto it = p.ops.rbegin(); it != p.ops.rend(); ++it) {
           if (it->kind == OpKind::kLocalUnitary && it->label == "S_0") {
             it->phase += 1.0;
             return p;
           }
         }
         QS_REQUIRE(false, "mutation fixture: schedule has no S_0 marker");
         return p;
       }});

  catalog.push_back(
      {"doubled-prep",
       "the preparation F runs twice — harmless to every oracle count, but "
       "the extra dense operator breaks the d-application growth bound the "
       "support domain certifies for backend selection",
       "support-domain", QueryMode::kSequential, nullptr,
       [](ProtocolProgram p) {
         for (auto it = p.ops.begin(); it != p.ops.end(); ++it) {
           if (it->kind == OpKind::kLocalUnitary && it->label == "F") {
             p.ops.insert(it, *it);
             return p;
           }
         }
         QS_REQUIRE(false, "mutation fixture: schedule has no F marker");
         return p;
       }});

  catalog.push_back(
      {"content-routed-query",
       "an oracle micro-op is routed by dataset contents — the schedule is "
       "no longer a function of public knowledge, which the taint domain "
       "must prove statically (no perturbed recompilation involved)",
       "taint-domain", QueryMode::kSequential, nullptr,
       [](ProtocolProgram p) {
         for (auto& op : p.ops) {
           if (op.kind == OpKind::kOracle) {
             op.taint = TaintLabel::kContent;
             break;
           }
         }
         return p;
       }});

  // --- translation-validation fixtures (tv/engine.hpp) ---------------------
  // These corrupt COMPILED operators, not schedules, so they use
  // run_custom: each builds a miscompiled op and feeds it to the symbolic
  // validator with the true reference semantics.

  {
    MutationSpec spec;
    spec.name = "miscompiled-permutation-table";
    spec.description =
        "a compiled permutation table transposes two entries relative to "
        "the reference map — dynamic sampling may miss the pair, the "
        "symbolic engine must not";
    spec.expected_pass = "translation-validation";
    spec.run_custom = [](const PublicParams& params) {
      RegisterLayout layout;
      const RegisterId elem =
          layout.add("elem", std::max<std::size_t>(params.universe, 4));
      const std::size_t d = layout.dim(elem);
      // Compile the reference cyclic shift, then validate it against a map
      // that disagrees on the last two basis states.
      const CompiledOp op = CompiledOp::permutation(
          layout, [d](std::size_t x) { return (x + 1) % d; });
      tv::TvValidator validator;
      validator.check_permutation(op, [d](std::size_t x) {
        if (x == d - 2) return std::size_t{0};
        if (x == d - 1) return d - 1;
        return (x + 1) % d;
      });
      return validator.diagnostics();
    };
    catalog.push_back(std::move(spec));
  }

  {
    MutationSpec spec;
    spec.name = "drifted-fused-diagonal";
    spec.description =
        "a fused diagonal drifts by 1e-9 in one factor relative to the "
        "pointwise product of its inputs — inside any sampling noise "
        "floor, far outside the 1e-12 operator-norm budget";
    spec.expected_pass = "translation-validation";
    spec.run_custom = [](const PublicParams&) {
      RegisterLayout layout;
      layout.add("flag", 2);
      const auto phase1 = [](std::size_t x) {
        return x == 1 ? cplx{-1.0, 0.0} : cplx{1.0, 0.0};
      };
      const auto phase2 = [](std::size_t x) {
        return x == 1 ? cplx{0.0, 1.0} : cplx{1.0, 0.0};
      };
      const CompiledOp first = CompiledOp::diagonal(layout, phase1);
      const CompiledOp second = CompiledOp::diagonal(layout, phase2);
      const CompiledOp drifted =
          CompiledOp::diagonal(layout, [&](std::size_t x) {
            return phase1(x) * phase2(x) +
                   (x == 1 ? cplx{1e-9, 0.0} : cplx{0.0, 0.0});
          });
      tv::TvValidator validator;
      validator.check_fused(first, second, drifted);
      return validator.diagnostics();
    };
    catalog.push_back(std::move(spec));
  }

  // --- recovery-metadata fixtures (abstint/recovered.hpp) ------------------

  catalog.push_back(
      {"unledgered-retry",
       "an event reports three attempts but the retry ledger charges "
       "nothing — recovery cost leaking out of the audit",
       "recovery-liveness", QueryMode::kSequential, nullptr, nullptr,
       [](RecoveredSchedule r) {
         QS_REQUIRE(!r.attempts.empty(),
                    "mutation fixture: empty recovered schedule");
         r.attempts.front() = 3;
         return r;
       }});

  catalog.push_back(
      {"displaced-parallel-round",
       "a collective round is marked displaced — parallel rounds are "
       "order-fixed, so a recovery reporting this executed unsoundly",
       "recovery-liveness", QueryMode::kParallel, nullptr, nullptr,
       [](RecoveredSchedule r) {
         QS_REQUIRE(!r.displaced.empty(),
                    "mutation fixture: empty recovered schedule");
         r.displaced.front() = 1;
         return r;
       }});

  return catalog;
}

}  // namespace

const std::vector<MutationSpec>& mutation_catalog() {
  static const std::vector<MutationSpec> catalog = build_catalog();
  return catalog;
}

std::vector<Diagnostic> run_mutation(const MutationSpec& spec,
                                     const PublicParams& params) {
  QS_REQUIRE(params.machines >= 2,
             "mutation fixtures need at least two machines");
  if (spec.run_custom) {
    return spec.run_custom(params);
  }
  if (spec.mutate_transcript) {
    const Transcript mutant =
        spec.mutate_transcript(compile_schedule(params, spec.mode));
    return verify_transcript(mutant, params, spec.mode).diagnostics;
  }
  if (spec.mutate_program) {
    const ProtocolProgram mutant =
        spec.mutate_program(lift_compiled(params, spec.mode));
    return verify_program(mutant).diagnostics;
  }
  QS_ASSERT(static_cast<bool>(spec.mutate_recovered),
            "mutation must define exactly one corruption");
  const RecoveredSchedule mutant = spec.mutate_recovered(
      identity_recovery(compile_schedule(params, spec.mode), params.machines));
  auto diagnostics =
      verify_program(lift_recovered(mutant, params, spec.mode)).diagnostics;
  for (auto& d : check_recovery_liveness(mutant, params, spec.mode)) {
    diagnostics.push_back(std::move(d));
  }
  return diagnostics;
}

bool mutation_flagged(const MutationSpec& spec, const PublicParams& params) {
  for (const auto& d : run_mutation(spec, params)) {
    if (d.pass == spec.expected_pass) return true;
  }
  return false;
}

}  // namespace qs::analysis
