#include "analysis/passes.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <string>

#include "common/require.hpp"
#include "sampling/amplitude_amplification.hpp"

namespace qs::analysis {

namespace {

std::string str(std::size_t v) { return std::to_string(v); }

/// The zero-error plan for the public parameters, or nullopt (with a
/// diagnostic) when the parameters themselves are inconsistent — a pass
/// reports rather than throws so the CLI can show every finding.
std::optional<AAPlan> try_plan(const PublicParams& p, const char* pass,
                               std::vector<Diagnostic>& out) {
  if (p.universe == 0 || p.machines == 0 || p.nu == 0 || p.total == 0 ||
      p.total > p.nu * p.universe) {
    out.push_back({pass, std::nullopt,
                   "inconsistent public parameters (need 0 < M ≤ νN, "
                   "n ≥ 1): N=" + str(p.universe) + " n=" +
                       str(p.machines) + " ν=" + str(p.nu) + " M=" +
                       str(p.total),
                   "schedule only from valid public knowledge"});
    return std::nullopt;
  }
  return plan_zero_error(static_cast<double>(p.total) /
                         (static_cast<double>(p.nu) *
                          static_cast<double>(p.universe)));
}

/// A pushdown frame: one not-yet-undone forward query.
struct Frame {
  bool parallel = false;
  std::size_t machine = 0;
  std::size_t event = kNoEvent;
};

std::string frame_name(const Frame& f) {
  return f.parallel ? std::string("parallel round") : "O" + str(f.machine);
}

}  // namespace

std::vector<Diagnostic> check_adjoint_nesting(const ProtocolProgram& program) {
  constexpr const char* kPass = "adjoint-nesting";
  std::vector<Diagnostic> out;
  std::vector<Frame> stack;
  for (const auto& op : program.ops) {
    const bool is_seq_query = op.kind == OpKind::kOracle;
    const bool is_par_query = op.kind == OpKind::kParallelOracle;
    if (is_seq_query || is_par_query) {
      if (!op.adjoint) {
        stack.push_back({is_par_query, op.machine, op.event});
        continue;
      }
      if (stack.empty()) {
        out.push_back({kPass, op.event,
                       "adjoint " + frame_name({is_par_query, op.machine}) +
                           "† with no matching forward query",
                       "apply the forward oracle before its adjoint "
                       "(Lemma 4.2/4.4 C† \U0001d4b0 C nesting)"});
        continue;
      }
      const Frame top = stack.back();
      stack.pop_back();
      if (top.parallel != is_par_query ||
          (!is_par_query && top.machine != op.machine)) {
        out.push_back({kPass, op.event,
                       "adjoint " + frame_name({is_par_query, op.machine}) +
                           "† does not undo the innermost open query " +
                           frame_name(top) + " (opened at event " +
                           str(top.event) + ")",
                       "adjoints must close queries in LIFO order: "
                       "O_1…O_n \U0001d4b0 O_n†…O_1†"});
      }
      continue;
    }
    if (op.kind == OpKind::kLocalUnitary && program.has_local_unitaries) {
      // Lemma 4.2: in the sequential decomposition the rotation 𝒰 sits at
      // full nesting depth n (inside C…C†); every other coordinator
      // unitary acts between balanced blocks. Lemma 4.4's parallel
      // composite closes each round immediately, so there everything
      // local happens at depth 0.
      const bool is_u = op.label == "U";
      const std::size_t want_depth =
          (is_u && program.mode == QueryMode::kSequential)
              ? program.params.machines
              : 0;
      if (stack.size() != want_depth) {
        out.push_back({kPass, std::nullopt,
                       "local unitary '" + op.label +
                           "' at nesting depth " + str(stack.size()) +
                           ", expected " + str(want_depth),
                       "the rotation \U0001d4b0 belongs strictly between C "
                       "and C† (Lemma 4.2); other coordinator unitaries "
                       "require all queries closed"});
      }
    }
  }
  for (const auto& frame : stack) {
    out.push_back({kPass, frame.event,
                   "forward " + frame_name(frame) + " is never undone",
                   "close every query with its adjoint before the "
                   "schedule ends"});
  }
  return out;
}

std::vector<Diagnostic> check_ownership(const ProtocolProgram& program) {
  constexpr const char* kPass = "ownership";
  std::vector<Diagnostic> out;
  const std::size_t n = program.params.machines;

  // Abstract location of the coordinator's [elem, count] register bundle.
  enum class Holder : std::uint8_t { kCoordinator, kMachine, kBroadcast };
  Holder holder = Holder::kCoordinator;
  std::size_t held_by = 0;  // valid when holder == kMachine

  const auto where = [&]() -> std::string {
    switch (holder) {
      case Holder::kCoordinator:
        return "the coordinator";
      case Holder::kMachine:
        return "machine " + str(held_by);
      case Holder::kBroadcast:
        return "an open collective round";
    }
    return "?";
  };

  for (const auto& op : program.ops) {
    switch (op.kind) {
      case OpKind::kSend:
        if (op.machine >= n) {
          out.push_back({kPass, op.event,
                         "send to machine " + str(op.machine) +
                             " but the database has only n=" + str(n) +
                             " machines",
                         "query indices are 0…n-1 from the public "
                         "machine count"});
        }
        if (holder != Holder::kCoordinator) {
          out.push_back({kPass, op.event,
                         "send to machine " + str(op.machine) +
                             " while the registers are held by " + where(),
                         "one transfer at a time: receive the bundle back "
                         "before the next send (Section 3)"});
        }
        holder = Holder::kMachine;
        held_by = op.machine;
        break;
      case OpKind::kOracle:
        if (holder != Holder::kMachine || held_by != op.machine) {
          out.push_back({kPass, op.event,
                         "machine " + str(op.machine) +
                             " applies its oracle but the registers are "
                             "held by " + where(),
                         "a machine may only query registers it currently "
                         "owns — move them with Transport first"});
        }
        break;
      case OpKind::kRecv:
        if (holder != Holder::kMachine || held_by != op.machine) {
          out.push_back({kPass, op.event,
                         "receive from machine " + str(op.machine) +
                             " but the registers are held by " + where(),
                         "only the machine that was sent the bundle can "
                         "return it"});
        }
        holder = Holder::kCoordinator;
        break;
      case OpKind::kLocalUnitary:
        if (holder != Holder::kCoordinator) {
          out.push_back({kPass, std::nullopt,
                         "coordinator unitary '" + op.label +
                             "' while the registers are held by " + where(),
                         "all bundles must return before coordinator-side "
                         "operations"});
        }
        break;
      case OpKind::kParallelBegin:
        if (holder != Holder::kCoordinator) {
          out.push_back({kPass, op.event,
                         "collective round opens while the registers are "
                         "held by " + where(),
                         "no sequential transfer may interleave with a "
                         "parallel round (Eq. 3 is a collective)"});
        }
        holder = Holder::kBroadcast;
        break;
      case OpKind::kParallelOracle:
        if (holder != Holder::kBroadcast) {
          out.push_back({kPass, op.event,
                         "parallel oracle outside an open collective round",
                         "bracket every parallel round with begin/end"});
        }
        break;
      case OpKind::kParallelEnd:
        if (holder != Holder::kBroadcast) {
          out.push_back({kPass, op.event,
                         "collective round closes but none is open",
                         "bracket every parallel round with begin/end"});
        }
        holder = Holder::kCoordinator;
        break;
    }
  }
  if (holder != Holder::kCoordinator) {
    out.push_back({kPass, std::nullopt,
                   "schedule terminates with the registers held by " +
                       where(),
                   "the coordinator must be quiescent at the end "
                   "(every bundle returned)"});
  }
  return out;
}

std::vector<Diagnostic> check_query_budget(const ProtocolProgram& program) {
  constexpr const char* kPass = "query-budget";
  std::vector<Diagnostic> out;
  const auto plan = try_plan(program.params, kPass, out);
  if (!plan.has_value()) return out;
  const auto d = static_cast<std::uint64_t>(plan->d_applications());
  const auto n = static_cast<std::uint64_t>(program.params.machines);

  std::uint64_t sequential = 0;
  std::uint64_t rounds = 0;
  for (const auto& op : program.ops) {
    if (op.kind == OpKind::kOracle) ++sequential;
    if (op.kind == OpKind::kParallelOracle) ++rounds;
  }

  const bool seq_mode = program.mode == QueryMode::kSequential;
  const std::uint64_t expected = seq_mode ? d * 2 * n : d * 4;
  const std::uint64_t actual = seq_mode ? sequential : rounds;
  const char* unit = seq_mode ? "sequential queries" : "parallel rounds";
  const char* theorem = seq_mode ? "Theorem 4.3" : "Theorem 4.5";
  const char* form = seq_mode ? "d·2n" : "d·4";

  if (actual != expected) {
    out.push_back({kPass, std::nullopt,
                   std::string(unit) + ": got " + str(actual) +
                       ", but the " + theorem + " closed form " + form +
                       " with d=" + str(d) + " gives " + str(expected),
                   "every distributing-operator application costs exactly "
                   "2n queries (Lemma 4.2) or 4 rounds (Lemma 4.4)"});
  }
  const std::uint64_t off_mode = seq_mode ? rounds : sequential;
  if (off_mode != 0) {
    out.push_back({kPass, std::nullopt,
                   std::string(seq_mode ? "parallel rounds"
                                        : "sequential queries") +
                       " in a " +
                       (seq_mode ? "sequential" : "parallel") +
                       "-model schedule: " + str(off_mode),
                   "a schedule uses exactly one query model"});
  }
  // Cross-check the closed form against the library's own predictor; a
  // mismatch means the analyzer and sampler disagree about the cost model.
  const auto predicted =
      compiled_schedule_length(program.params, program.mode);
  if (predicted != expected) {
    out.push_back({kPass, std::nullopt,
                   "compiled_schedule_length predicts " + str(predicted) +
                       " events but the closed form gives " + str(expected),
                   "keep compiled_schedule_length in sync with Theorems "
                   "4.3/4.5"});
  }
  return out;
}

std::vector<Diagnostic> check_load_balance(const ProtocolProgram& program) {
  constexpr const char* kPass = "load-balance";
  std::vector<Diagnostic> out;
  if (program.mode != QueryMode::kSequential) return out;
  const auto plan = try_plan(program.params, kPass, out);
  if (!plan.has_value()) return out;
  const auto d = static_cast<std::uint64_t>(plan->d_applications());

  const std::size_t n = program.params.machines;
  std::vector<std::uint64_t> forward(n, 0);
  std::vector<std::uint64_t> adjoint(n, 0);
  for (const auto& op : program.ops) {
    if (op.kind != OpKind::kOracle || op.machine >= n) continue;
    ++(op.adjoint ? adjoint : forward)[op.machine];
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (forward[j] + adjoint[j] != 2 * d || forward[j] != adjoint[j]) {
      out.push_back(
          {kPass, std::nullopt,
           "machine " + str(j) + " answers " + str(forward[j]) +
               " forward + " + str(adjoint[j]) + " adjoint queries; the "
               "sequential sampler queries every machine exactly d=" +
               str(d) + " times in each direction (2d total)",
           "Lemma 4.2 touches each machine once per C and once per "
           "C† — the load histogram must be flat"});
    }
  }
  return out;
}

std::vector<Diagnostic> certify_obliviousness(const PublicParams& params,
                                              QueryMode mode,
                                              std::size_t trials,
                                              std::uint64_t seed) {
  constexpr const char* kPass = "obliviousness";
  std::vector<Diagnostic> out;
  if (!try_plan(params, kPass, out).has_value()) return out;

  const Transcript reference = compile_schedule(params, mode);
  if (compile_schedule(params, mode) != reference) {
    out.push_back({kPass, std::nullopt,
                   "schedule compilation is not deterministic for fixed "
                   "public parameters",
                   "the compiler may consult nothing but (N, n, ν, M)"});
    return out;
  }

  Rng rng(seed);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const DistributedDatabase db = perturbed_database(params, rng);
    QS_ASSERT(public_params_of(db) == params,
              "perturbed database must preserve the public parameters");
    db.reset_content_reads();
    const Transcript compiled = compile_schedule(db, mode);
    if (const auto reads = db.content_reads(); reads != 0) {
      out.push_back({kPass, std::nullopt,
                     "schedule compilation read per-element dataset "
                     "contents " + str(reads) + " time(s) (trial " +
                         str(trial) + ")",
                     "the dry-run path must be data-blind; route any "
                     "data-dependent work through the oracles"});
    }
    if (compiled != reference) {
      std::size_t first = 0;
      const auto limit =
          std::min(compiled.size(), reference.size());
      while (first < limit &&
             compiled.events()[first] == reference.events()[first]) {
        ++first;
      }
      out.push_back({kPass, first,
                     "transcript diverges from the public-parameter "
                     "schedule on a perturbed dataset (trial " +
                         str(trial) + ")",
                     "the schedule must be identical for every database "
                     "with these public parameters (Section 3)"});
    }
  }
  return out;
}

const std::vector<std::string>& pass_names() {
  // dqs-lint: pass-registry-begin
  static const std::vector<std::string> names = {
      "adjoint-nesting", "ownership", "query-budget", "load-balance",
      "obliviousness"};
  // dqs-lint: pass-registry-end
  return names;
}

DistributedDatabase perturbed_database(const PublicParams& params, Rng& rng) {
  QS_REQUIRE(params.universe > 0 && params.machines > 0 && params.nu > 0,
             "invalid public parameters");
  QS_REQUIRE(params.total > 0 && params.total <= params.nu * params.universe,
             "need 0 < M ≤ νN to realise the public parameters");
  // Each element has ν capacity slots; choosing M distinct slots uniformly
  // yields joint multiplicities ≤ ν with total exactly M.
  const auto slots = static_cast<std::size_t>(params.nu) * params.universe;
  const auto chosen = rng.sample_without_replacement(
      slots, static_cast<std::size_t>(params.total));
  std::vector<Dataset> datasets(params.machines, Dataset(params.universe));
  for (const auto slot : chosen) {
    datasets[rng.uniform_below(params.machines)].insert(slot %
                                                        params.universe);
  }
  return DistributedDatabase(std::move(datasets), params.nu);
}

}  // namespace qs::analysis
