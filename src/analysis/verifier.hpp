// Verifier driver: run every checker pass and collect the findings.
//
// verify_program / verify_transcript / verify_compiled are the three entry
// points the CLI (tools/dqs_verify), the tests and the bench harness use;
// they differ only in what they start from (an already-lifted program, a
// recorded transcript, or nothing but public parameters).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/ir.hpp"
#include "distdb/query_stats.hpp"

namespace qs::analysis {

struct VerifyOptions {
  /// Dataset-perturbation trials for the obliviousness pass; 0 disables
  /// the pass (the structural passes still run).
  std::size_t obliviousness_trials = 3;
  std::uint64_t seed = 0x5eed;
  /// When set, the dynamic perturbed-recompilation obliviousness pass is
  /// SKIPPED whenever the taint domain statically proves the lifted
  /// program oblivious (abstint/engine.hpp taint_of). The dynamic pass
  /// then only runs as a fallback for programs the static proof cannot
  /// discharge; leave false to run both (differential cross-checking).
  bool static_obliviousness_proof = false;
  /// Run the symbolic translation-validation harness for the point
  /// (analysis/tv/harness.hpp) and append its diagnostics: every lowering
  /// and fusion of the point's compiled pipeline is proved against its
  /// reference operator semantics.
  bool translation_validation = false;
};

struct VerifyReport {
  std::vector<Diagnostic> diagnostics;

  bool clean() const noexcept { return diagnostics.empty(); }

  /// One to_string(Diagnostic) line per finding ("" when clean).
  std::string render() const;
};

/// The four structural passes (nesting, ownership, budget, load-balance)
/// over an already-lifted program.
VerifyReport verify_program(const ProtocolProgram& program);

/// Lift a recorded transcript and verify it. Beyond the structural passes
/// this checks the transcript is IDENTICAL to the schedule compiled from
/// the public parameters (the obliviousness certificate for recorded
/// runs), and — when the run's QueryStats ledger is supplied — that the
/// Machine counters match the transcript-derived counts.
VerifyReport verify_transcript(const Transcript& transcript,
                               const PublicParams& params, QueryMode mode,
                               const QueryStats* run_stats = nullptr);

/// Compile the schedule for (params, mode) and verify it: structural
/// passes plus the dataset-perturbation obliviousness certification.
VerifyReport verify_compiled(const PublicParams& params, QueryMode mode,
                             const VerifyOptions& options = {});

}  // namespace qs::analysis
