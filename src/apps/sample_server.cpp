#include "apps/sample_server.hpp"

#include "common/require.hpp"
#include "qsim/measure.hpp"
#include "telemetry/trace.hpp"

namespace qs {

namespace {

/// Global telemetry mirror of the per-server CacheStats — a fleet-level
/// view when many servers share the process.
struct ServerCounters {
  telemetry::Counter& hits = telemetry::counter("sample_server.cache.hit");
  telemetry::Counter& misses = telemetry::counter("sample_server.cache.miss");
  telemetry::Counter& invalidations =
      telemetry::counter("sample_server.cache.invalidate");
  telemetry::Counter& rebuilds = telemetry::counter("sample_server.rebuild");
  telemetry::Counter& draws = telemetry::counter("sample_server.draw");
};

ServerCounters& server_counters() {
  static ServerCounters counters;
  return counters;
}

}  // namespace

SampleServer::SampleServer(DistributedDatabase db, QueryMode mode,
                           StatePrep prep)
    : db_(std::move(db)), mode_(mode), prep_(prep) {}

void SampleServer::invalidate() {
  // Only a LIVE cache can be invalidated; piling further updates onto an
  // already-stale cache must not inflate the ledger (tested).
  if (!cached_.has_value()) return;
  cached_.reset();
  ++cache_stats_.invalidations;
  server_counters().invalidations.add();
}

void SampleServer::insert(std::size_t machine, std::size_t element) {
  db_.insert(machine, element);
  invalidate();
}

void SampleServer::erase(std::size_t machine, std::size_t element) {
  db_.erase(machine, element);
  invalidate();
}

void SampleServer::rebuild() {
  static auto& t_ns = telemetry::histogram("sample_server.rebuild.ns");
  telemetry::Span span("sample_server.rebuild", &t_ns);
  span.tag("mode", mode_ == QueryMode::kSequential ? 0 : 1);
  SamplerOptions options;
  options.prep = prep_;
  cached_ = mode_ == QueryMode::kSequential
                ? run_sequential_sampler(db_, options)
                : run_parallel_sampler(db_, options);
  query_cost_ += mode_ == QueryMode::kSequential
                     ? cached_->stats.total_sequential()
                     : cached_->stats.parallel_rounds;
  ++preparations_;
  ++cache_stats_.rebuilds;
  server_counters().rebuilds.add();
}

const SamplerResult& SampleServer::state() {
  if (cached_.has_value()) {
    ++cache_stats_.hits;
    server_counters().hits.add();
  } else {
    ++cache_stats_.misses;
    server_counters().misses.add();
    rebuild();
  }
  return cached_.value();
}

std::size_t SampleServer::draw(Rng& rng) {
  telemetry::Span span("sample_server.draw");
  const auto& current = state();
  const auto sample =
      measure_register(current.state, current.registers.elem, rng);
  // Measurement destroys the coherent state: the next access re-prepares.
  // This is CONSUMPTION, not invalidation — the data did not change.
  cached_.reset();
  server_counters().draws.add();
  return sample;
}

}  // namespace qs
