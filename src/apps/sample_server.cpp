#include "apps/sample_server.hpp"

#include <utility>

#include "common/require.hpp"
#include "faults/recovery.hpp"
#include "qsim/measure.hpp"
#include "sampling/classical.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace qs {

namespace {

/// Global telemetry mirror of the per-server CacheStats — a fleet-level
/// view when many servers share the process.
struct ServerCounters {
  telemetry::Counter& hits = telemetry::counter("sample_server.cache.hit");
  telemetry::Counter& misses = telemetry::counter("sample_server.cache.miss");
  telemetry::Counter& invalidations =
      telemetry::counter("sample_server.cache.invalidate");
  telemetry::Counter& rebuilds = telemetry::counter("sample_server.rebuild");
  telemetry::Counter& draws = telemetry::counter("sample_server.draw");
  telemetry::Counter& fallback_draws =
      telemetry::counter("sample_server.fallback.draw");
  telemetry::Gauge& health = telemetry::gauge("sample_server.health");
};

ServerCounters& server_counters() {
  static ServerCounters counters;
  return counters;
}

}  // namespace

const char* to_string(ServerHealth health) {
  switch (health) {
    case ServerHealth::kHealthy: return "healthy";
    case ServerHealth::kDegraded: return "degraded";
    case ServerHealth::kFallback: return "fallback";
  }
  return "unknown";
}

SampleServer::SampleServer(DistributedDatabase db, QueryMode mode,
                           StatePrep prep)
    : db_(std::move(db)), mode_(mode), prep_(prep) {}

void SampleServer::check_owner_thread() const {
  // First caller pins the server; the CAS also loads the current owner on
  // failure so the violation check is a single atomic round trip.
  const auto self = std::this_thread::get_id();
  std::thread::id expected{};
  if (owner_thread_.compare_exchange_strong(expected, self,
                                            std::memory_order_relaxed)) {
    return;
  }
  QS_REQUIRE(expected == self,
             "SampleServer is single-threaded: it was first used from "
             "another thread and its cached state is unsynchronised. Route "
             "concurrent callers through serving::SampleService "
             "(docs/SERVING.md) or rebind_owner_thread() across an "
             "externally synchronised handoff");
}

void SampleServer::rebind_owner_thread() noexcept {
  owner_thread_.store(std::thread::id{}, std::memory_order_relaxed);
}

void SampleServer::invalidate() {
  // Only a LIVE cache can be invalidated; piling further updates onto an
  // already-stale cache must not inflate the ledger (tested).
  if (!cached_.has_value()) return;
  cached_.reset();
  ++cache_stats_.invalidations;
  server_counters().invalidations.add();
}

void SampleServer::insert(std::size_t machine, std::size_t element) {
  check_owner_thread();
  db_.insert(machine, element);
  invalidate();
}

void SampleServer::erase(std::size_t machine, std::size_t element) {
  check_owner_thread();
  db_.erase(machine, element);
  invalidate();
}

void SampleServer::set_health(ServerHealth health) {
  health_ = health;
  server_counters().health.set(static_cast<std::int64_t>(health));
}

void SampleServer::arm_faults(FaultPlan plan, RetryPolicy policy) {
  check_owner_thread();
  armed_plan_ = std::move(plan);
  policy_ = policy;
  // A fresh plan gets a fresh chance: leave any previous fallback behind
  // and retry the quantum path on the next rebuild. A live cache stays
  // valid — it describes the data, not the transport.
  fallback_ = false;
  last_failure_.clear();
}

void SampleServer::disarm_faults() {
  check_owner_thread();
  armed_plan_.reset();
  fallback_ = false;
  last_failure_.clear();
  set_health(ServerHealth::kHealthy);
}

bool SampleServer::rebuild() {
  static auto& t_ns = telemetry::histogram("sample_server.rebuild.ns");
  telemetry::Span span("sample_server.rebuild", &t_ns);
  span.tag("mode", mode_ == QueryMode::kSequential ? 0 : 1);
  span.tag("faulted", armed_plan_.has_value() ? 1 : 0);
  SamplerOptions options;
  options.prep = prep_;
  if (armed_plan_.has_value()) {
    FaultedRun run =
        run_sampler_with_faults(db_, mode_, *armed_plan_, policy_, options);
    ledger_.accumulate(run.recovery.ledger);
    if (!run.ok()) {
      fallback_ = true;
      last_failure_ = run.recovery.failure;
      set_health(ServerHealth::kFallback);
      return false;
    }
    cached_ = std::move(*run.result);
    set_health(run.recovery.ledger.injected_faults > 0
                   ? ServerHealth::kDegraded
                   : ServerHealth::kHealthy);
  } else {
    cached_ = mode_ == QueryMode::kSequential
                  ? run_sequential_sampler(db_, options)
                  : run_parallel_sampler(db_, options);
    set_health(ServerHealth::kHealthy);
  }
  query_cost_ += mode_ == QueryMode::kSequential
                     ? cached_->stats.total_sequential()
                     : cached_->stats.parallel_rounds;
  ++preparations_;
  ++cache_stats_.rebuilds;
  server_counters().rebuilds.add();
  return true;
}

const SamplerResult* SampleServer::try_state() {
  check_owner_thread();
  if (cached_.has_value()) {
    ++cache_stats_.hits;
    server_counters().hits.add();
    return &*cached_;
  }
  // Sticky fallback: once retries were exhausted, stop re-attempting the
  // doomed preparation until the plan is re-armed or disarmed.
  if (fallback_) return nullptr;
  ++cache_stats_.misses;
  server_counters().misses.add();
  if (!rebuild()) return nullptr;
  return &*cached_;
}

const SamplerResult& SampleServer::state() {
  const SamplerResult* current = try_state();
  QS_REQUIRE(current != nullptr,
             "sample server is in classical fallback (no coherent state "
             "can be served): " + last_failure_ +
                 "; draws degrade to the exact classical sampler until "
                 "disarm_faults()/arm_faults()");
  return *current;
}

std::size_t SampleServer::draw(Rng& rng) {
  check_owner_thread();
  telemetry::Span span("sample_server.draw");
  if (const SamplerResult* current = try_state()) {
    const auto sample =
        measure_register(current->state, current->registers.elem, rng);
    // Measurement destroys the coherent state: the next access re-prepares.
    // This is CONSUMPTION, not invalidation — the data did not change.
    cached_.reset();
    server_counters().draws.add();
    return sample;
  }
  // Graceful degradation: the exact classical full scan serves the SAME
  // joint distribution at classical cost (nN multiplicity probes), so
  // callers keep getting correct samples while the quantum path is out.
  const ClassicalScanResult scan = classical_full_scan(db_);
  classical_queries_ += scan.queries;
  std::vector<double> weights(scan.counts.begin(), scan.counts.end());
  const std::size_t sample = rng.weighted_index(weights);
  ++fallback_draws_;
  server_counters().draws.add();
  server_counters().fallback_draws.add();
  return sample;
}

}  // namespace qs
