#include "apps/sample_server.hpp"

#include "common/require.hpp"
#include "qsim/measure.hpp"

namespace qs {

SampleServer::SampleServer(DistributedDatabase db, QueryMode mode,
                           StatePrep prep)
    : db_(std::move(db)), mode_(mode), prep_(prep) {}

void SampleServer::insert(std::size_t machine, std::size_t element) {
  db_.insert(machine, element);
  cached_.reset();
}

void SampleServer::erase(std::size_t machine, std::size_t element) {
  db_.erase(machine, element);
  cached_.reset();
}

void SampleServer::rebuild() {
  SamplerOptions options;
  options.prep = prep_;
  cached_ = mode_ == QueryMode::kSequential
                ? run_sequential_sampler(db_, options)
                : run_parallel_sampler(db_, options);
  query_cost_ += mode_ == QueryMode::kSequential
                     ? cached_->stats.total_sequential()
                     : cached_->stats.parallel_rounds;
  ++preparations_;
}

const SamplerResult& SampleServer::state() {
  if (!cached_.has_value()) rebuild();
  return cached_.value();
}

std::size_t SampleServer::draw(Rng& rng) {
  const auto& current = state();
  const auto sample =
      measure_register(current.state, current.registers.elem, rng);
  // Measurement destroys the coherent state: the next access re-prepares.
  cached_.reset();
  return sample;
}

}  // namespace qs
