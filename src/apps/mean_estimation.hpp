// Quantum mean estimation over a distributed database.
//
// The introduction lists quantum mean estimation [10, 13, 14] among the
// algorithmic applications that consume quantum sampling. This module
// closes that loop on OUR sampler: for a public function f : [N] → [0, 1],
// estimate
//
//   E[f] = Σ_i (c_i / M) · f(i)
//
// to Heisenberg precision. Construction: extend the coordinator state by
// one ancilla qubit and define A_f = R_f · A, where A prepares the sampling
// state |ψ,0,0⟩ (the paper's circuit) and R_f rotates the ancilla by
// arccos√f(i) conditioned on the element register. The "doubly good"
// subspace {flag = 0, ancilla = 0} then carries probability
//
//   a_f = (M/νN) · E[f]·(νN/M)⁻¹… more precisely  a_f = Σ_i c_i f(i)/(νN),
//
// wait — R_f acts after the amplification-free preparation D, whose good
// amplitude on |i⟩ is √(c_i/ν)/√N, so a_f = Σ_i c_i f(i)/(νN) = E[f]·M/νN.
// Amplitude-estimating a_f (maximum-likelihood, same machinery as the
// counting module) and dividing by the public M/(νN) yields E[f] with
// error ~ 1/Q versus the classical ~ 1/√Q of sample averaging.
#pragma once

#include <functional>

#include "estimation/amplitude_estimation.hpp"

namespace qs {

struct MeanEstimate {
  double mean_hat = 0.0;        ///< estimate of E[f]
  double a_hat = 0.0;           ///< underlying good-probability estimate
  std::uint64_t oracle_cost = 0;
  std::size_t total_shots = 0;
};

/// Estimate E[f] = Σ_i (c_i/M)·f(i) for a public f with range [0, 1].
/// Requires M > 0 (M is public, per the paper's model).
MeanEstimate estimate_mean(const DistributedDatabase& db,
                           const std::function<double(std::size_t)>& f,
                           QueryMode mode, const AeSchedule& schedule,
                           Rng& rng);

/// Classical baseline under the same access model: draw `samples` exact
/// classical samples by rejection (n·νN/M probes each, see
/// sampling/classical.hpp) and average f. Error ~ 1/√samples.
struct ClassicalMeanEstimate {
  double mean_hat = 0.0;
  std::uint64_t probes = 0;
};
ClassicalMeanEstimate classical_mean_estimate(
    const DistributedDatabase& db,
    const std::function<double(std::size_t)>& f, std::size_t samples,
    Rng& rng);

}  // namespace qs
