#include "apps/mean_estimation.hpp"

#include <cmath>
#include <numbers>

#include "common/require.hpp"
#include "qsim/gates.hpp"
#include "sampling/backend.hpp"
#include "sampling/classical.hpp"

namespace qs {

namespace {

/// The mean-estimation circuit: coordinator registers plus one ancilla
/// qubit rotated by arccos√f(i). Self-contained (like the QPE circuit) so
/// the Grover iterate can reflect about the composite A_f.
class MeanCircuit {
 public:
  MeanCircuit(const DistributedDatabase& db,
              const std::function<double(std::size_t)>& f) {
    elem_ = layout_.add("elem", db.universe());
    count_ = layout_.add("count", static_cast<std::size_t>(db.nu()) + 1);
    flag_ = layout_.add("flag", 2);
    anc_ = layout_.add("anc", 2);

    householder_ = uniform_prep_householder_vector(db.universe());
    u_fwd_ = make_u_rotations(db.nu(), false);
    u_adj_ = make_u_rotations(db.nu(), true);

    const auto joint = db.joint_counts();
    const std::size_t modulus = layout_.dim(count_);
    shift_fwd_.resize(joint.size());
    shift_bwd_.resize(joint.size());
    for (std::size_t i = 0; i < joint.size(); ++i) {
      shift_fwd_[i] = static_cast<std::size_t>(joint[i]) % modulus;
      shift_bwd_[i] = (modulus - shift_fwd_[i]) % modulus;
    }

    f_rot_.reserve(db.universe());
    f_rot_adj_.reserve(db.universe());
    for (std::size_t i = 0; i < db.universe(); ++i) {
      const double value = f(i);
      QS_REQUIRE(value >= 0.0 && value <= 1.0,
                 "f must map the universe into [0, 1]");
      const double gamma = std::acos(std::sqrt(value));
      f_rot_.push_back(rotation_matrix(gamma));
      f_rot_adj_.push_back(rotation_matrix(-gamma));
    }
  }

  const RegisterLayout& layout() const { return layout_; }

  StateVector fresh() const { return StateVector(layout_); }

  void apply_a(StateVector& s, bool adjoint) const {
    if (!adjoint) {
      s.apply_householder(elem_, householder_);
      apply_d(s, false);
      apply_rf(s, false);
    } else {
      apply_rf(s, true);
      apply_d(s, true);
      s.apply_householder(elem_, householder_);
    }
  }

  /// Q(π,π) = −A_f S_0 A_f† S_good with good = {flag=0 ∧ anc=0}.
  void apply_q(StateVector& s) const {
    apply_phase_good(s);
    apply_a(s, true);
    s.apply_phase_on_basis_state(0, cplx{-1.0, 0.0});
    apply_a(s, false);
    s.apply_global_phase(cplx{-1.0, 0.0});
  }

  double good_probability(const StateVector& s) const {
    const auto& layout = layout_;
    double p = 0.0;
    const auto amps = s.amplitudes();
    for (std::size_t x = 0; x < amps.size(); ++x) {
      if (layout.digit(x, flag_) == 0 && layout.digit(x, anc_) == 0)
        p += std::norm(amps[x]);
    }
    return p;
  }

 private:
  void apply_d(StateVector& s, bool adjoint) const {
    s.apply_value_shift(count_, elem_, shift_fwd_);
    const auto& rotations = adjoint ? u_adj_ : u_fwd_;
    const auto& layout = layout_;
    const auto count = count_;
    s.apply_conditioned_unitary(
        flag_, [&](std::size_t base) -> const Matrix* {
          return &rotations[layout.digit(base, count)];
        });
    s.apply_value_shift(count_, elem_, shift_bwd_);
  }

  void apply_rf(StateVector& s, bool adjoint) const {
    const auto& rotations = adjoint ? f_rot_adj_ : f_rot_;
    const auto& layout = layout_;
    const auto elem = elem_;
    s.apply_conditioned_unitary(
        anc_, [&](std::size_t base) -> const Matrix* {
          return &rotations[layout.digit(base, elem)];
        });
  }

  void apply_phase_good(StateVector& s) const {
    const auto& layout = layout_;
    const auto flag = flag_;
    const auto anc = anc_;
    s.apply_diagonal([&](std::size_t x) {
      return (layout.digit(x, flag) == 0 && layout.digit(x, anc) == 0)
                 ? cplx{-1.0, 0.0}
                 : cplx{1.0, 0.0};
    });
  }

  RegisterLayout layout_;
  RegisterId elem_, count_, flag_, anc_;
  std::vector<cplx> householder_;
  std::vector<Matrix> u_fwd_, u_adj_, f_rot_, f_rot_adj_;
  std::vector<std::size_t> shift_fwd_, shift_bwd_;
};

}  // namespace

MeanEstimate estimate_mean(const DistributedDatabase& db,
                           const std::function<double(std::size_t)>& f,
                           QueryMode mode, const AeSchedule& schedule,
                           Rng& rng) {
  QS_REQUIRE(db.total() > 0, "mean of an empty database is undefined");
  const MeanCircuit circuit(db, f);

  std::vector<ShotRecord> records;
  MeanEstimate estimate;
  for (const auto power : schedule.powers) {
    auto state = circuit.fresh();
    circuit.apply_a(state, false);
    for (std::size_t q = 0; q < power; ++q) circuit.apply_q(state);
    const double p_good = circuit.good_probability(state);
    std::uint64_t hits = 0;
    for (std::size_t s = 0; s < schedule.shots_per_power; ++s)
      hits += rng.bernoulli(p_good) ? 1 : 0;
    records.push_back({power, hits, schedule.shots_per_power});

    const std::uint64_t d_per_shot = 1 + 2 * power;
    estimate.oracle_cost +=
        (mode == QueryMode::kSequential ? d_per_shot * 2 * db.num_machines()
                                        : d_per_shot * 4) *
        schedule.shots_per_power;
    estimate.total_shots += schedule.shots_per_power;
  }

  const double theta_hat = ae_maximum_likelihood(records);
  estimate.a_hat = std::sin(theta_hat) * std::sin(theta_hat);
  // a_f = (M/νN)·E[f]  ⇒  E[f] = a_f · νN/M.
  estimate.mean_hat = estimate.a_hat * static_cast<double>(db.nu()) *
                      static_cast<double>(db.universe()) /
                      static_cast<double>(db.total());
  return estimate;
}

ClassicalMeanEstimate classical_mean_estimate(
    const DistributedDatabase& db,
    const std::function<double(std::size_t)>& f, std::size_t samples,
    Rng& rng) {
  QS_REQUIRE(samples > 0, "need at least one classical sample");
  const auto drawn = classical_rejection_sampling(db, samples, rng);
  double total = 0.0;
  for (const auto i : drawn.samples) total += f(i);
  ClassicalMeanEstimate estimate;
  estimate.mean_hat = total / static_cast<double>(samples);
  estimate.probes = drawn.queries;
  return estimate;
}

}  // namespace qs
