#include "apps/index_erasure.hpp"

#include "common/require.hpp"

namespace qs {

IndexErasureResult distributed_index_erasure(
    std::span<const std::size_t> f_values, std::size_t image_universe,
    std::size_t machines, QueryMode mode, const SamplerOptions& options) {
  QS_REQUIRE(!f_values.empty(), "empty function table");
  QS_REQUIRE(machines >= 1, "need at least one machine");
  QS_REQUIRE(machines <= f_values.size(),
             "more machines than table entries");

  // Shard the domain contiguously; machine j holds the multiset of image
  // points of its slice.
  std::vector<Dataset> shards(machines, Dataset(image_universe));
  for (std::size_t x = 0; x < f_values.size(); ++x) {
    QS_REQUIRE(f_values[x] < image_universe,
               "function value outside the image universe");
    const std::size_t owner = x * machines / f_values.size();
    shards[owner].insert(f_values[x]);
  }

  const auto nu = min_capacity(shards);
  IndexErasureResult result{
      SamplerResult{StateVector(RegisterLayout{}), {}, {}, {}, 0.0, {}},
      f_values.size(),
      nu == 1,
  };

  DistributedDatabase db(std::move(shards), nu);
  result.sampling = mode == QueryMode::kSequential
                        ? run_sequential_sampler(db, options)
                        : run_parallel_sampler(db, options);
  return result;
}

}  // namespace qs
