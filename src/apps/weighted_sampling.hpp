// Weighted distributed quantum sampling — quantum rejection sampling on a
// distributed database.
//
// Ozols–Roetteler–Roland's quantum rejection sampling (cited in the
// paper's related work) converts one superposition into another with
// re-weighted amplitudes. Combined with the paper's machinery, it gives
// IMPORTANCE SAMPLING over a federated store: for a PUBLIC weight vector
// w ≥ 0, prepare
//
//   |ψ_w⟩ = Σ_i √(c_i w_i / Z) |i⟩,   Z = Σ_i c_i w_i,
//
// with the same oracles. The only change to the paper's construction is the
// rotation step: after loading counts (Lemma 4.2/4.4 first step), rotate
// the flag by the (i, c)-dependent angle with cos γ = √(c·w_i/(ν·w_max)) —
// still a coordinator unitary, because w is public. The good amplitude
// becomes a_w = Z/(νN·w_max).
//
// Z is NOT public (it depends on the data), so the amplitude-amplification
// plan cannot be computed a priori. run_weighted_sampler either takes a
// known Z, or first runs the quantum counting module (amplitude estimation)
// to learn a_w — composing the two subsystems the way a real deployment
// would. With Z known exactly the output is exact (fidelity 1); with an
// estimated Z the fidelity degrades gracefully with the estimation error
// (quantified in the tests and experiment T9b).
#pragma once

#include <optional>
#include <span>

#include "estimation/amplitude_estimation.hpp"
#include "sampling/samplers.hpp"

namespace qs {

struct WeightedSamplerResult {
  StateVector state;
  CoordinatorLayout registers;
  AAPlan plan;
  QueryStats sampling_stats;
  double fidelity = 0.0;  ///< against Σ √(c_i w_i / Z)|i⟩ with the TRUE Z
  /// Oracle cost spent estimating a_w (0 when Z was supplied).
  std::uint64_t estimation_cost = 0;
  double z_used = 0.0;  ///< the Z the plan was built from
};

/// The exact weighted target amplitudes Σ √(c_i w_i / Z)|i⟩ (reference).
std::vector<cplx> weighted_target_amplitudes(const DistributedDatabase& db,
                                             std::span<const double> weights);

/// Run weighted sampling. `known_z`: supply Z = Σ c_i w_i if public;
/// otherwise the good amplitude is estimated first with `ae_schedule`.
WeightedSamplerResult run_weighted_sampler(
    const DistributedDatabase& db, std::span<const double> weights,
    QueryMode mode, std::optional<double> known_z,
    const AeSchedule& ae_schedule, Rng& rng,
    StatePrep prep = StatePrep::kHouseholder);

}  // namespace qs
