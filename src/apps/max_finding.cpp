#include "apps/max_finding.hpp"

#include <cmath>
#include <numbers>

#include "common/require.hpp"
#include "qsim/controlled.hpp"

namespace qs {

namespace {

/// SingleStateBackend with the rotation step replaced by the threshold
/// MARKER: flip the flag for counter values ≤ T. The marker is a
/// self-inverse permutation, so D_T = C† X_T C is self-adjoint and
/// apply_distributing_operator realises it for both query models with the
/// standard costs (2n queries / 4 rounds).
class ThresholdBackend final : public SamplingBackend {
 public:
  ThresholdBackend(const DistributedDatabase& db, std::uint64_t threshold,
                   StatePrep prep)
      : inner_(db, prep) {
    const auto& regs = inner_.registers();
    const std::size_t counter_dim = inner_.state().layout().dim(regs.count);
    flip_.resize(counter_dim);
    for (std::size_t c = 0; c < counter_dim; ++c)
      flip_[c] = c <= threshold ? 1 : 0;
  }

  std::size_t num_machines() const override { return inner_.num_machines(); }
  void prep_uniform(bool adjoint) override { inner_.prep_uniform(adjoint); }
  void phase_good(double phi) override { inner_.phase_good(phi); }
  void phase_initial(double phi) override { inner_.phase_initial(phi); }
  void oracle(std::size_t j, bool adjoint) override {
    inner_.oracle(j, adjoint);
  }
  void parallel_total_shift(bool adjoint) override {
    inner_.parallel_total_shift(adjoint);
  }
  void global_phase(double angle) override { inner_.global_phase(angle); }

  void rotation_u(bool /*adjoint*/) override {
    // X_T: |count, flag⟩ → |count, flag ⊕ [count ≤ T]⟩ — self-inverse.
    const auto& regs = inner_.registers();
    inner_.state().apply_value_shift(regs.flag, regs.count, flip_);
  }

  StateVector& state() { return inner_.state(); }
  const CoordinatorLayout& registers() const { return inner_.registers(); }

 private:
  SingleStateBackend inner_;
  std::vector<std::size_t> flip_;
};

}  // namespace

ThresholdSampleResult sample_above_threshold(const DistributedDatabase& db,
                                             QueryMode mode,
                                             std::uint64_t threshold,
                                             Rng& rng,
                                             std::size_t max_attempts) {
  QS_REQUIRE(max_attempts > 0, "need at least one attempt");
  constexpr double kPi = std::numbers::pi;
  constexpr double kLambda = 6.0 / 5.0;
  const double m_cap = std::sqrt(static_cast<double>(db.universe())) + 1.0;

  ThresholdSampleResult result;
  double m = 1.0;
  for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    const auto bound = static_cast<std::uint64_t>(std::ceil(m));
    const auto j = static_cast<std::size_t>(rng.uniform_below(bound));

    ThresholdBackend backend(db, threshold, StatePrep::kHouseholder);
    backend.prep_uniform(false);
    apply_distributing_operator(backend, mode, false);
    for (std::size_t q = 0; q < j; ++q)
      apply_q_iterate(backend, mode, kPi, kPi);

    const auto flag =
        measure_and_collapse(backend.state(), backend.registers().flag, rng);
    if (flag == 0) {
      result.found = true;
      result.attempts = attempt;
      result.element = measure_and_collapse(backend.state(),
                                            backend.registers().elem, rng);
      result.multiplicity = db.total_count(result.element);
      QS_ASSERT(result.multiplicity > threshold,
                "threshold sampler returned a key at or below the "
                "threshold");
      return result;
    }
    m = std::min(kLambda * m, m_cap);
  }
  result.found = false;
  result.attempts = max_attempts;
  return result;
}

MaxFindingResult find_heaviest_key(const DistributedDatabase& db,
                                   QueryMode mode, Rng& rng) {
  QS_REQUIRE(db.total() > 0, "empty database has no heaviest key");
  db.reset_stats();

  MaxFindingResult result;
  std::uint64_t threshold = 0;
  for (;;) {
    const auto sample = sample_above_threshold(db, mode, threshold, rng);
    if (!sample.found) break;
    result.element = sample.element;
    result.multiplicity = sample.multiplicity;
    threshold = sample.multiplicity;
    ++result.ratchet_steps;
    if (threshold >= db.nu()) break;  // nothing can exceed the capacity
  }
  result.stats = db.stats();
  return result;
}

}  // namespace qs
