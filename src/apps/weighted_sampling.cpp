#include "apps/weighted_sampling.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/require.hpp"
#include "qsim/gates.hpp"

namespace qs {

namespace {

/// SingleStateBackend with the rotation step re-weighted: 𝒰_w acts on the
/// flag conditioned on BOTH the element (for w_i) and the counter (for c).
/// Everything else — oracles, preparation, phases, accounting — is the
/// paper's unmodified machinery.
class WeightedBackend final : public SamplingBackend {
 public:
  WeightedBackend(const DistributedDatabase& db,
                  std::span<const double> weights, double w_max,
                  StatePrep prep)
      : inner_(db, prep) {
    const auto& regs = inner_.registers();
    const std::size_t counter_dim = inner_.state().layout().dim(regs.count);
    const double nu = static_cast<double>(db.nu());
    rotations_.reserve(weights.size() * counter_dim);
    for (std::size_t i = 0; i < weights.size(); ++i) {
      for (std::size_t c = 0; c < counter_dim; ++c) {
        const double ratio = std::min(
            static_cast<double>(c) * weights[i] / (nu * w_max), 1.0);
        const double gamma = std::acos(std::sqrt(ratio));
        rotations_.push_back(rotation_matrix(gamma));
        rotations_adjoint_.push_back(rotation_matrix(-gamma));
      }
    }
    counter_dim_ = counter_dim;
  }

  std::size_t num_machines() const override { return inner_.num_machines(); }
  void prep_uniform(bool adjoint) override { inner_.prep_uniform(adjoint); }
  void phase_good(double phi) override { inner_.phase_good(phi); }
  void phase_initial(double phi) override { inner_.phase_initial(phi); }
  void oracle(std::size_t j, bool adjoint) override {
    inner_.oracle(j, adjoint);
  }
  void parallel_total_shift(bool adjoint) override {
    inner_.parallel_total_shift(adjoint);
  }
  void global_phase(double angle) override { inner_.global_phase(angle); }

  void rotation_u(bool adjoint) override {
    const auto& regs = inner_.registers();
    const auto& layout = inner_.state().layout();
    const auto& rotations = adjoint ? rotations_adjoint_ : rotations_;
    inner_.state().apply_conditioned_unitary(
        regs.flag, [&](std::size_t fiber_base) -> const Matrix* {
          const std::size_t i = layout.digit(fiber_base, regs.elem);
          const std::size_t c = layout.digit(fiber_base, regs.count);
          return &rotations[i * counter_dim_ + c];
        });
  }

  StateVector& state() { return inner_.state(); }
  const StateVector& state() const { return inner_.state(); }
  const CoordinatorLayout& registers() const { return inner_.registers(); }

 private:
  SingleStateBackend inner_;
  std::vector<Matrix> rotations_, rotations_adjoint_;
  std::size_t counter_dim_ = 0;
};

}  // namespace

std::vector<cplx> weighted_target_amplitudes(const DistributedDatabase& db,
                                             std::span<const double> weights) {
  QS_REQUIRE(weights.size() == db.universe(),
             "one weight per universe element required");
  const auto counts = db.joint_counts();
  double z = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    QS_REQUIRE(weights[i] >= 0.0, "weights must be non-negative");
    z += static_cast<double>(counts[i]) * weights[i];
  }
  QS_REQUIRE(z > 0.0, "weighted distribution has no mass");
  std::vector<cplx> amps(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i)
    amps[i] = std::sqrt(static_cast<double>(counts[i]) * weights[i] / z);
  return amps;
}

WeightedSamplerResult run_weighted_sampler(
    const DistributedDatabase& db, std::span<const double> weights,
    QueryMode mode, std::optional<double> known_z,
    const AeSchedule& ae_schedule, Rng& rng, StatePrep prep) {
  QS_REQUIRE(weights.size() == db.universe(),
             "one weight per universe element required");
  const double w_max = *std::max_element(weights.begin(), weights.end());
  QS_REQUIRE(w_max > 0.0, "at least one weight must be positive");
  const double nu_n = static_cast<double>(db.nu()) *
                      static_cast<double>(db.universe());
  constexpr double kPi = std::numbers::pi;

  WeightedSamplerResult result{StateVector(RegisterLayout{}), {}, {}, {},
                               0.0,  0,  0.0};

  // Learn the good amplitude a_w = Z/(νN·w_max) if Z is not public.
  double a_w = 0.0;
  if (known_z.has_value()) {
    result.z_used = known_z.value();
    a_w = result.z_used / (nu_n * w_max);
  } else {
    std::vector<ShotRecord> records;
    for (const auto power : ae_schedule.powers) {
      WeightedBackend probe(db, weights, w_max, prep);
      probe.prep_uniform(false);
      apply_distributing_operator(probe, mode, false);
      for (std::size_t q = 0; q < power; ++q)
        apply_q_iterate(probe, mode, kPi, kPi);
      const double p_good =
          probe.state().probability_of(probe.registers().flag, 0);
      std::uint64_t hits = 0;
      for (std::size_t s = 0; s < ae_schedule.shots_per_power; ++s)
        hits += rng.bernoulli(p_good) ? 1 : 0;
      records.push_back({power, hits, ae_schedule.shots_per_power});
      const std::uint64_t per_shot_d = 1 + 2 * power;
      result.estimation_cost +=
          (mode == QueryMode::kSequential ? per_shot_d * 2 * db.num_machines()
                                          : per_shot_d * 4) *
          ae_schedule.shots_per_power;
    }
    const double theta_hat = ae_maximum_likelihood(records);
    a_w = std::sin(theta_hat) * std::sin(theta_hat);
    result.z_used = a_w * nu_n * w_max;
  }
  QS_REQUIRE(a_w > 0.0,
             "estimated weighted mass is zero; nothing to sample");

  const AAPlan plan = plan_zero_error(std::min(a_w, 1.0));
  db.reset_stats();
  WeightedBackend backend(db, weights, w_max, prep);
  run_sampling_circuit(backend, mode, plan);

  // Fidelity against the TRUE weighted target (Z from the actual data).
  const auto target = weighted_target_amplitudes(db, weights);
  const auto& layout = backend.state().layout();
  const auto& regs = backend.registers();
  cplx overlap{0.0, 0.0};
  std::vector<std::size_t> digits(3, 0);
  for (std::size_t i = 0; i < target.size(); ++i) {
    digits[regs.elem.value] = i;
    overlap += std::conj(target[i]) *
               backend.state().amplitude(layout.index_of(digits));
  }

  result.state = std::move(backend.state());
  result.registers = regs;
  result.plan = plan;
  result.sampling_stats = db.stats();
  result.fidelity = std::norm(overlap);
  return result;
}

}  // namespace qs
