// Subset (filtered) sampling — Grover search over a distributed store.
//
// "Sample a record whose key satisfies a PUBLIC predicate" is weighted
// sampling with an indicator weight vector: amplitudes √(c_i/Z) on the
// selected keys, 0 elsewhere, Z = Σ_{i ∈ S} c_i. With |S| = 1 this is
// distributed Grover search for one key (does it exist? grab it
// coherently); with S = [N] it degenerates to plain sampling. Cost is the
// weighted sampler's O(n√(νN·w_max/Z)) — i.e. classic Grover scaling in the
// selected mass.
#pragma once

#include <functional>
#include <optional>

#include "apps/weighted_sampling.hpp"

namespace qs {

/// Sample from the database restricted to keys where `selector` is true.
/// `known_z`: total selected mass Σ_{selector(i)} c_i if public; otherwise
/// it is quantum-estimated first (schedule as in weighted sampling).
WeightedSamplerResult run_subset_sampler(
    const DistributedDatabase& db,
    const std::function<bool(std::size_t element)>& selector, QueryMode mode,
    std::optional<double> known_z, const AeSchedule& ae_schedule, Rng& rng,
    StatePrep prep = StatePrep::kHouseholder);

/// Distributed membership test + retrieval: returns the post-sampling
/// probability mass on `element` (1 when present and selected alone, 0 when
/// absent). Convenience wrapper with S = {element}.
struct MembershipResult {
  bool present = false;
  double mass = 0.0;  ///< probability of measuring `element` in the output
  WeightedSamplerResult details;
};
MembershipResult distributed_membership(const DistributedDatabase& db,
                                        std::size_t element, QueryMode mode,
                                        const AeSchedule& ae_schedule,
                                        Rng& rng);

}  // namespace qs
