// A long-lived sampling service over a mutating distributed store.
//
// Production shape for the dynamic-database story: a server owns the
// database, accepts updates, and serves measurement draws. The expensive
// artifact — the prepared sampling state — is CACHED and only rebuilt when
// the data actually changed since the last preparation (tracked by the
// database's version counter). Each rebuild costs the sampler's
// Θ(n√(νN/M)) queries; draws against a fresh cache cost nothing extra
// because distinct classical samples require distinct preparations only
// when the previous state has been measured (the server re-prepares per
// draw but amortises when callers ask for the coherent state itself).
#pragma once

#include <cstdint>
#include <optional>

#include "common/rng.hpp"
#include "sampling/samplers.hpp"

namespace qs {

class SampleServer {
 public:
  /// The server owns its database.
  SampleServer(DistributedDatabase db, QueryMode mode,
               StatePrep prep = StatePrep::kHouseholder);

  const DistributedDatabase& database() const noexcept { return db_; }

  /// Updates (invalidate the cached state).
  void insert(std::size_t machine, std::size_t element);
  void erase(std::size_t machine, std::size_t element);

  /// The coherent sampling state for the CURRENT data; rebuilt only when
  /// stale. Throws on an empty store.
  const SamplerResult& state();

  /// Draw one classical sample. Every draw consumes (and therefore
  /// re-prepares) a state: quantum measurement is destructive.
  std::size_t draw(Rng& rng);

  /// Total oracle queries (or parallel rounds) spent by all preparations.
  std::uint64_t total_query_cost() const noexcept { return query_cost_; }
  std::uint64_t preparations() const noexcept { return preparations_; }
  bool cache_valid() const noexcept { return cached_.has_value(); }

  /// Cache accounting, mirrored into the telemetry counters
  /// sample_server.cache.{hit,miss,invalidate} and sample_server.rebuild:
  /// a `hit` is a state()/draw() served from the cached preparation, a
  /// `miss` triggers exactly one rebuild, and `invalidations` counts
  /// updates that actually destroyed a live cache (an insert/erase on an
  /// already-stale cache is NOT a second invalidation).
  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t rebuilds = 0;
    std::uint64_t invalidations = 0;

    friend bool operator==(const CacheStats&, const CacheStats&) = default;
  };
  const CacheStats& cache_stats() const noexcept { return cache_stats_; }

 private:
  void rebuild();
  void invalidate();

  DistributedDatabase db_;
  QueryMode mode_;
  StatePrep prep_;
  std::optional<SamplerResult> cached_;
  std::uint64_t query_cost_ = 0;
  std::uint64_t preparations_ = 0;
  CacheStats cache_stats_;
};

}  // namespace qs
