// A long-lived sampling service over a mutating distributed store.
//
// Production shape for the dynamic-database story: a server owns the
// database, accepts updates, and serves measurement draws. The expensive
// artifact — the prepared sampling state — is CACHED and only rebuilt when
// the data actually changed since the last preparation (tracked by the
// database's version counter). Each rebuild costs the sampler's
// Θ(n√(νN/M)) queries; draws against a fresh cache cost nothing extra
// because distinct classical samples require distinct preparations only
// when the previous state has been measured (the server re-prepares per
// draw but amortises when callers ask for the coherent state itself).
//
// THREADING: this server is strictly SINGLE-THREADED. draw()/state()
// mutate the cached preparation (`cached_`) with no synchronisation, so a
// second thread re-entering draw() while a rebuild is in flight would
// race on the cache, the ledgers and the underlying database. The first
// call from any thread pins the server to that thread and every later
// call is checked against it (ContractViolation on violation — a typed
// error, not a silent race). Concurrent callers belong on
// serving::SampleService (src/serving, docs/SERVING.md), which routes
// jobs through a thread-safe facade with request coalescing instead of
// sharing this mutable state.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>

#include "common/rng.hpp"
#include "faults/fault_plan.hpp"
#include "faults/retry.hpp"
#include "sampling/samplers.hpp"

namespace qs {

/// Serving-layer health, exported on the sample_server.health gauge.
enum class ServerHealth : std::uint8_t {
  kHealthy = 0,   ///< last preparation ran fault-free
  kDegraded = 1,  ///< last preparation succeeded but needed recovery
  kFallback = 2,  ///< quantum preparation failed; serving classically
};

const char* to_string(ServerHealth health);

class SampleServer {
 public:
  /// The server owns its database.
  SampleServer(DistributedDatabase db, QueryMode mode,
               StatePrep prep = StatePrep::kHouseholder);

  const DistributedDatabase& database() const noexcept { return db_; }

  /// Updates (invalidate the cached state).
  void insert(std::size_t machine, std::size_t element);
  void erase(std::size_t machine, std::size_t element);

  /// The coherent sampling state for the CURRENT data; rebuilt only when
  /// stale. Throws on an empty store, and throws while the server is in
  /// classical fallback (a coherent state cannot be served then).
  const SamplerResult& state();

  /// As state(), but degradation-aware: nullptr when the quantum
  /// preparation is currently impossible (retries exhausted under the
  /// armed fault plan) instead of throwing. A live cache is served even
  /// while machines are down — staleness is keyed on the database
  /// version, not on machine health.
  const SamplerResult* try_state();

  /// Draw one classical sample. Every draw consumes (and therefore
  /// re-prepares) a state: quantum measurement is destructive. When the
  /// quantum path is unavailable the draw degrades to the exact classical
  /// full-scan sampler — same distribution, classical query cost — and is
  /// counted in fallback_draws().
  std::size_t draw(Rng& rng);

  /// Fault injection at the serving layer: every subsequent rebuild runs
  /// through run_sampler_with_faults under `plan` and `policy`. Re-arming
  /// clears a previous fallback so the quantum path is retried.
  void arm_faults(FaultPlan plan, RetryPolicy policy = {});
  void disarm_faults();
  bool faults_armed() const noexcept { return armed_plan_.has_value(); }

  ServerHealth health() const noexcept { return health_; }
  /// When health() == kFallback: why the last quantum preparation failed.
  const std::string& last_failure() const noexcept { return last_failure_; }

  /// Recovery cost accumulated across all faulted rebuilds (separate from
  /// total_query_cost(), which stays the primary Thm 4.3/4.5 ledger).
  const RecoveryLedger& recovery_ledger() const noexcept { return ledger_; }
  std::uint64_t fallback_draws() const noexcept { return fallback_draws_; }
  /// Classical multiplicity probes spent by fallback draws.
  std::uint64_t classical_queries() const noexcept {
    return classical_queries_;
  }

  /// Total oracle queries (or parallel rounds) spent by all preparations.
  std::uint64_t total_query_cost() const noexcept { return query_cost_; }
  std::uint64_t preparations() const noexcept { return preparations_; }
  bool cache_valid() const noexcept { return cached_.has_value(); }

  /// Cache accounting, mirrored into the telemetry counters
  /// sample_server.cache.{hit,miss,invalidate} and sample_server.rebuild:
  /// a `hit` is a state()/draw() served from the cached preparation, a
  /// `miss` triggers exactly one rebuild, and `invalidations` counts
  /// updates that actually destroyed a live cache (an insert/erase on an
  /// already-stale cache is NOT a second invalidation).
  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t rebuilds = 0;
    std::uint64_t invalidations = 0;

    friend bool operator==(const CacheStats&, const CacheStats&) = default;
  };
  const CacheStats& cache_stats() const noexcept { return cache_stats_; }

  /// Release the single-thread pin so ownership can move to another
  /// thread (e.g. a server constructed on a setup thread and then handed
  /// off permanently). The NEXT accessor call re-pins to its caller; the
  /// caller must guarantee no concurrent access across the handoff.
  void rebind_owner_thread() noexcept;

 private:
  /// False when the quantum preparation failed under the armed fault plan
  /// (the server then enters kFallback).
  bool rebuild();
  void invalidate();
  void set_health(ServerHealth health);
  /// Enforces the single-thread contract documented in the class comment.
  void check_owner_thread() const;

  DistributedDatabase db_;
  QueryMode mode_;
  StatePrep prep_;
  std::optional<SamplerResult> cached_;
  std::uint64_t query_cost_ = 0;
  std::uint64_t preparations_ = 0;
  CacheStats cache_stats_;
  std::optional<FaultPlan> armed_plan_;
  RetryPolicy policy_;
  ServerHealth health_ = ServerHealth::kHealthy;
  /// Sticky until disarm_faults()/arm_faults(): once retries are exhausted
  /// the server stops re-attempting the doomed quantum preparation.
  bool fallback_ = false;
  std::string last_failure_;
  RecoveryLedger ledger_;
  std::uint64_t fallback_draws_ = 0;
  std::uint64_t classical_queries_ = 0;
  /// Owning thread, pinned by the first accessor call; default-constructed
  /// id means "not yet pinned". Atomic only so the misuse CHECK itself is
  /// race-free — the server's data members are deliberately not.
  mutable std::atomic<std::thread::id> owner_thread_{};
};

}  // namespace qs
