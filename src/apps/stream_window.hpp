// Sliding-window sampling over a distributed stream.
//
// The paper emphasises that its oracles are cheap to maintain under
// dynamic data (Section 3: one multiplicity change = one left-multiplied
// shift U). This application leans on that: n ingestion nodes receive a
// stream of keyed events; each node's database holds the multiset of keys
// it received during the last W ticks (older events expire). At any tick
// the coordinator can draw an exact quantum sample of the CURRENT window's
// joint key distribution — no rebuild, no synchronisation beyond the
// expiry clock. Every window mutation is an O(1) oracle update on one
// machine.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/rng.hpp"
#include "sampling/samplers.hpp"

namespace qs {

class StreamWindowSampler {
 public:
  /// `window` = number of ticks an event stays alive. `nu` must dominate
  /// the worst-case joint multiplicity inside any window.
  StreamWindowSampler(std::size_t universe, std::size_t machines,
                      std::size_t window, std::uint64_t nu);

  /// Ingest one event (key) at `machine` during the current tick.
  void ingest(std::size_t machine, std::size_t key);

  /// Advance the clock one tick; events older than the window expire (each
  /// expiry is one O(1) oracle update on its machine).
  void tick();

  /// Events currently alive in the window.
  std::uint64_t window_population() const;

  std::uint64_t current_tick() const noexcept { return tick_; }
  const DistributedDatabase& database() const noexcept { return db_; }

  /// Exact quantum sample state of the live window. Requires a non-empty
  /// window.
  SamplerResult sample(QueryMode mode = QueryMode::kSequential) const;

  /// Convenience: one measured key from a fresh sample state.
  std::size_t sample_key(Rng& rng,
                         QueryMode mode = QueryMode::kSequential) const;

 private:
  struct Event {
    std::uint64_t tick;
    std::size_t machine;
    std::size_t key;
  };

  DistributedDatabase db_;
  std::size_t window_;
  std::uint64_t tick_ = 0;
  std::deque<Event> live_;
};

}  // namespace qs
