#include "apps/stream_window.hpp"

#include "common/require.hpp"
#include "qsim/measure.hpp"

namespace qs {

StreamWindowSampler::StreamWindowSampler(std::size_t universe,
                                         std::size_t machines,
                                         std::size_t window, std::uint64_t nu)
    : db_(std::vector<Dataset>(machines, Dataset(universe)), nu),
      window_(window) {
  QS_REQUIRE(window_ >= 1, "window must span at least one tick");
}

void StreamWindowSampler::ingest(std::size_t machine, std::size_t key) {
  db_.insert(machine, key);  // O(1) oracle update (Section 3)
  live_.push_back({tick_, machine, key});
}

void StreamWindowSampler::tick() {
  ++tick_;
  while (!live_.empty() && live_.front().tick + window_ <= tick_) {
    const auto& event = live_.front();
    db_.erase(event.machine, event.key);  // O(1) oracle update
    live_.pop_front();
  }
}

std::uint64_t StreamWindowSampler::window_population() const {
  return static_cast<std::uint64_t>(live_.size());
}

SamplerResult StreamWindowSampler::sample(QueryMode mode) const {
  QS_REQUIRE(window_population() > 0, "the window is empty");
  return mode == QueryMode::kSequential ? run_sequential_sampler(db_)
                                        : run_parallel_sampler(db_);
}

std::size_t StreamWindowSampler::sample_key(Rng& rng, QueryMode mode) const {
  const auto result = sample(mode);
  return measure_register(result.state, result.registers.elem, rng);
}

}  // namespace qs
