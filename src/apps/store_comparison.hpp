// Coherent comparison of two distributed stores — the SWAP test on their
// sampling states.
//
// Classically, comparing the key distributions of two sharded stores needs
// Θ(nN) probes per store (learn both histograms). Quantumly, prepare each
// store's sampling state (Grover cost) and run a SWAP test:
//
//   P(ancilla = 0) = (1 + |⟨ψ_A|ψ_B⟩|²) / 2,
//
// and since ⟨ψ_A|ψ_B⟩ = Σ_i √(p_i q_i) is the BHATTACHARYYA coefficient of
// the two distributions, the overlap estimate is a genuine statistical
// similarity measure: 1 iff the stores have identical key distributions,
// → 0 as their supports separate. Each shot consumes one fresh preparation
// of each state (measurement is destructive), so the per-shot cost is the
// two samplers' query costs.
//
// Use cases: replica-drift detection, federated A/B comparison, change
// detection after a migration.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "sampling/samplers.hpp"

namespace qs {

struct StoreComparisonResult {
  /// Estimated squared overlap |⟨ψ_A|ψ_B⟩|² ∈ [0, 1].
  double overlap_estimate = 0.0;
  /// Exact squared overlap (simulation ground truth, for validation).
  double true_overlap = 0.0;
  /// Estimated Bhattacharyya coefficient √overlap.
  double bhattacharyya_estimate = 0.0;
  /// 95% Wilson interval for the overlap (from the ancilla statistics).
  double overlap_lo = 0.0;
  double overlap_hi = 1.0;
  std::size_t shots = 0;
  std::uint64_t ancilla_zero_count = 0;
  /// Oracle cost of ONE preparation of each store's state.
  std::uint64_t prep_cost_a = 0;
  std::uint64_t prep_cost_b = 0;
  /// Total cost: shots · (prep_a + prep_b).
  std::uint64_t total_cost = 0;
};

/// SWAP-test comparison of two stores over the same universe. Both must be
/// non-empty. `shots` independent SWAP tests; the estimator is
/// overlap = max(0, 2·#[anc=0]/shots − 1).
StoreComparisonResult compare_stores(const DistributedDatabase& store_a,
                                     const DistributedDatabase& store_b,
                                     QueryMode mode, std::size_t shots,
                                     Rng& rng);

}  // namespace qs
