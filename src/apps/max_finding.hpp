// Distributed heavy-hitter search — Dürr–Høyer maximum finding on the
// multiplicity oracle.
//
// Task: find argmax_i c_i (the hottest key of the federated store) without
// ever downloading a histogram. Classically this needs the full nN-probe
// scan. Quantumly, combine two pieces this library already has:
//
//   1. THRESHOLD SAMPLING: for a threshold T, the composite
//      D_T = C† · X_{count ≤ T} · C  (load counts, flip the flag for
//      c_i ≤ T, unload) marks exactly the keys with c_i > T — the flag-0
//      subspace is the uniform superposition over {i : c_i > T}. Note the
//      marking is EXACT (a permutation), not an amplitude split, so the
//      good probability is |{i : c_i > T}|/N — unknown to the coordinator.
//   2. BBHT search (unknown_m-style exponential schedule) amplifies the
//      marked set and a flag measurement collapses to a uniformly random
//      key heavier than T.
//
// The Dürr–Høyer loop then ratchets: sample any key, set T to its
// multiplicity, search for a strictly heavier key, repeat until the search
// confidently fails. Expected oracle cost O(√N · log) in the Grover regime
// vs the classical nN scan.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "sampling/samplers.hpp"

namespace qs {

struct ThresholdSampleResult {
  bool found = false;          ///< a key with c_i > threshold was found
  std::size_t element = 0;     ///< the sampled key (when found)
  std::uint64_t multiplicity = 0;  ///< its joint count (looked up after)
  std::size_t attempts = 0;
};

/// BBHT search for a uniformly random key with c_i > threshold. `found` is
/// false after `max_attempts` consecutive failures — for a sound "no such
/// key" verdict use the default, which makes a false negative
/// exponentially unlikely. Query costs accrue on the database ledger.
ThresholdSampleResult sample_above_threshold(const DistributedDatabase& db,
                                             QueryMode mode,
                                             std::uint64_t threshold,
                                             Rng& rng,
                                             std::size_t max_attempts = 64);

struct MaxFindingResult {
  std::size_t element = 0;         ///< argmax_i c_i
  std::uint64_t multiplicity = 0;  ///< max_i c_i
  std::size_t ratchet_steps = 0;   ///< Dürr–Høyer threshold raises
  QueryStats stats;                ///< total oracle cost of the whole run
};

/// Dürr–Høyer maximum finding over the joint multiplicities. Requires a
/// non-empty database. Returns the true argmax with overwhelming
/// probability (each "no heavier key" verdict is a repeated BBHT failure).
MaxFindingResult find_heaviest_key(const DistributedDatabase& db,
                                   QueryMode mode, Rng& rng);

}  // namespace qs
