#include "apps/store_comparison.hpp"

#include <cmath>

#include "common/stats.hpp"
#include "common/require.hpp"
#include "qsim/controlled.hpp"
#include "qsim/gates.hpp"

namespace qs {

StoreComparisonResult compare_stores(const DistributedDatabase& store_a,
                                     const DistributedDatabase& store_b,
                                     QueryMode mode, std::size_t shots,
                                     Rng& rng) {
  QS_REQUIRE(store_a.universe() == store_b.universe(),
             "stores must share one key universe");
  QS_REQUIRE(shots > 0, "need at least one SWAP-test shot");

  // Prepare each store's sampling state once (exact zero-error run); in
  // hardware every shot would redo this, which is what the cost ledger
  // charges.
  const auto result_a = mode == QueryMode::kSequential
                            ? run_sequential_sampler(store_a)
                            : run_parallel_sampler(store_a);
  const auto result_b = mode == QueryMode::kSequential
                            ? run_sequential_sampler(store_b)
                            : run_parallel_sampler(store_b);
  const auto psi_a = result_a.output_amplitudes();
  const auto psi_b = result_b.output_amplitudes();
  const std::size_t universe = store_a.universe();

  // SWAP-test layout: ancilla ⊗ elem_A ⊗ elem_B, product-state input.
  RegisterLayout layout;
  const auto anc = layout.add("anc", 2);
  const auto reg_a = layout.add("elem_a", universe);
  const auto reg_b = layout.add("elem_b", universe);
  StateVector state(layout);
  {
    std::vector<cplx> amps(layout.total_dim(), cplx{0.0, 0.0});
    for (std::size_t i = 0; i < universe; ++i) {
      if (psi_a[i] == cplx{0.0, 0.0}) continue;
      for (std::size_t j = 0; j < universe; ++j) {
        // anc = 0 slice: |0⟩|i⟩|j⟩ with amplitude ψA_i ψB_j.
        amps[(0 * universe + i) * universe + j] = psi_a[i] * psi_b[j];
      }
    }
    state.set_amplitudes(std::move(amps));
  }

  // H on the ancilla, controlled-SWAP, H again.
  Matrix hadamard(2, 2);
  const double inv_root2 = 1.0 / std::sqrt(2.0);
  hadamard(0, 0) = inv_root2;
  hadamard(0, 1) = inv_root2;
  hadamard(1, 0) = inv_root2;
  hadamard(1, 1) = -inv_root2;

  state.apply_unitary(anc, hadamard);
  apply_controlled(state, anc, 1, [&](StateVector& slice) {
    const auto& slice_layout = slice.layout();
    slice.apply_permutation([&](std::size_t x) {
      const std::size_t da = slice_layout.digit(x, reg_a);
      const std::size_t db = slice_layout.digit(x, reg_b);
      std::size_t y = slice_layout.with_digit(x, reg_a, db);
      return slice_layout.with_digit(y, reg_b, da);
    });
  });
  state.apply_unitary(anc, hadamard);

  const double p_zero = state.probability_of(anc, 0);

  StoreComparisonResult comparison;
  comparison.shots = shots;
  for (std::size_t s = 0; s < shots; ++s)
    comparison.ancilla_zero_count += rng.bernoulli(p_zero) ? 1 : 0;
  const double frac = static_cast<double>(comparison.ancilla_zero_count) /
                      static_cast<double>(shots);
  comparison.overlap_estimate = std::max(0.0, 2.0 * frac - 1.0);
  comparison.bhattacharyya_estimate = std::sqrt(comparison.overlap_estimate);
  // overlap = 2·P(anc=0) − 1: transform the Wilson interval endpoints.
  const auto interval =
      wilson_interval(comparison.ancilla_zero_count, shots);
  comparison.overlap_lo = std::max(0.0, 2.0 * interval.lo - 1.0);
  comparison.overlap_hi = std::min(1.0, 2.0 * interval.hi - 1.0);

  cplx overlap{0.0, 0.0};
  for (std::size_t i = 0; i < universe; ++i)
    overlap += std::conj(psi_a[i]) * psi_b[i];
  comparison.true_overlap = std::norm(overlap);

  comparison.prep_cost_a = mode == QueryMode::kSequential
                               ? result_a.stats.total_sequential()
                               : result_a.stats.parallel_rounds;
  comparison.prep_cost_b = mode == QueryMode::kSequential
                               ? result_b.stats.total_sequential()
                               : result_b.stats.parallel_rounds;
  comparison.total_cost =
      shots * (comparison.prep_cost_a + comparison.prep_cost_b);
  return comparison;
}

}  // namespace qs
