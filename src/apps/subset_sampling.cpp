#include "apps/subset_sampling.hpp"

#include "common/require.hpp"

namespace qs {

WeightedSamplerResult run_subset_sampler(
    const DistributedDatabase& db,
    const std::function<bool(std::size_t element)>& selector, QueryMode mode,
    std::optional<double> known_z, const AeSchedule& ae_schedule, Rng& rng,
    StatePrep prep) {
  std::vector<double> weights(db.universe(), 0.0);
  bool any = false;
  for (std::size_t i = 0; i < db.universe(); ++i) {
    if (selector(i)) {
      weights[i] = 1.0;
      any = true;
    }
  }
  QS_REQUIRE(any, "subset selector matches no element of the universe");
  return run_weighted_sampler(db, weights, mode, known_z, ae_schedule, rng,
                              prep);
}

MembershipResult distributed_membership(const DistributedDatabase& db,
                                        std::size_t element, QueryMode mode,
                                        const AeSchedule& ae_schedule,
                                        Rng& rng) {
  QS_REQUIRE(element < db.universe(), "element outside the universe");
  MembershipResult result;
  // Membership is decidable from the (public-side) estimate alone: if the
  // selected mass is ~0 the weighted sampler has nothing to amplify.
  std::vector<double> weights(db.universe(), 0.0);
  weights[element] = 1.0;
  const double w_max = 1.0;
  (void)w_max;

  // Estimate the selected mass first (never public for a single key).
  const double true_mass = static_cast<double>(db.total_count(element));
  if (true_mass == 0.0) {
    // Run the estimator so the caller still pays/learns honestly.
    WeightedSamplerResult details{};
    try {
      details = run_weighted_sampler(db, weights, mode, std::nullopt,
                                     ae_schedule, rng);
    } catch (const ContractViolation&) {
      // Estimated mass zero — the expected outcome for an absent key.
      result.present = false;
      result.mass = 0.0;
      return result;
    }
    // Estimator found (noise-level) mass; report what the output holds.
    result.details = std::move(details);
  } else {
    result.details = run_weighted_sampler(db, weights, mode, std::nullopt,
                                          ae_schedule, rng);
  }

  const auto& layout = result.details.state.layout();
  std::vector<std::size_t> digits(3, 0);
  digits[result.details.registers.elem.value] = element;
  result.mass =
      std::norm(result.details.state.amplitude(layout.index_of(digits)));
  result.present = result.mass > 0.5;
  return result;
}

}  // namespace qs
