// Index erasure on a distributed function table.
//
// Shi's index-erasure problem (cited in the paper's related work): given an
// injective f : [n] → [m] through an oracle, prepare the uniform
// superposition over the IMAGE of f, Σ_x |f(x)⟩/√n — "erasing" the input
// index. The paper observes this is exactly uniform quantum sampling over a
// subset of the universe, so our distributed sampler solves the DISTRIBUTED
// variant directly: shard the function table across machines (machine j
// holds f's values on its slice of the domain), view each shard as a
// multiset of image points, and quantum-sample the joint database. For an
// injective f every multiplicity is 1, so ν = 1 and the query cost is
// Θ(n_machines·√(m/n)) sequential / Θ(√(m/n)) parallel.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sampling/samplers.hpp"

namespace qs {

struct IndexErasureResult {
  SamplerResult sampling;       ///< final state lives on [image_universe]
  std::size_t domain_size = 0;  ///< n — the number of table entries
  bool injective = true;        ///< whether the table was injective
};

/// Shard the table {f(0), ..., f(n-1)} ⊂ [image_universe] contiguously
/// across `machines` machines and prepare Σ_x |f(x)⟩/√n by distributed
/// quantum sampling. Non-injective tables are allowed (duplicates raise ν
/// and weight the superposition by multiplicity, the natural
/// generalisation); `injective` reports which case occurred.
IndexErasureResult distributed_index_erasure(
    std::span<const std::size_t> f_values, std::size_t image_universe,
    std::size_t machines, QueryMode mode,
    const SamplerOptions& options = {});

}  // namespace qs
