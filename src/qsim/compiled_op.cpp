#include "qsim/compiled_op.hpp"

#include <limits>
#include <map>

#include "common/require.hpp"
#include "qsim/parallel.hpp"
#include "telemetry/metrics.hpp"

namespace qs {

namespace {

telemetry::Counter& compile_counter() {
  static auto& c = telemetry::counter("qsim.compiled.compile");
  return c;
}

telemetry::Counter& fuse_counter() {
  static auto& c = telemetry::counter("qsim.compiled.fuse");
  return c;
}

telemetry::Counter& apply_counter() {
  static auto& c = telemetry::counter("qsim.compiled.apply");
  return c;
}

void require_table_addressable(std::size_t dim) {
  QS_REQUIRE(dim <= std::numeric_limits<std::uint32_t>::max(),
             "compiled tables index amplitudes with uint32; layout too big");
}

/// Certify `table` is a bijection on [0, dim). One-time compile cost; the
/// replay kernel (apply_permutation_table) then skips the per-query scan.
void require_bijection(const std::vector<std::uint32_t>& table) {
  std::vector<bool> seen(table.size(), false);
  for (const std::uint32_t y : table) {
    QS_REQUIRE(y < table.size(), "permutation image out of range");
    QS_REQUIRE(!seen[y], "permutation map is not a bijection");
    seen[y] = true;
  }
}

/// Materialise the inverse of a certified-bijective table (scatter is safe:
/// every destination is written exactly once).
void fill_inverse(const std::vector<std::uint32_t>& table,
                  std::vector<std::uint32_t>& inverse) {
  inverse.resize(table.size());
  const std::uint32_t* t = table.data();
  std::uint32_t* inv = inverse.data();
  parallel_for(table.size(), [t, inv](std::size_t x) {
    inv[t[x]] = static_cast<std::uint32_t>(x);
  });
}

/// Window size for the periodicity guess in fiber_dense lowering: the first
/// kPeriodGuessWindow fibers are materialised, the smallest period the
/// window admits is guessed, and the remaining fibers are stream-verified
/// against it without being stored. Keeps big-N compile memory O(period)
/// when the selector depends only on low-stride digits (the 𝒰 shape).
constexpr std::size_t kPeriodGuessWindow = 4096;

// Translation-validation hook (thread-local so concurrently compiling
// threads never observe each other); nullptr when no validator is armed.
thread_local CompileObserver* g_compile_observer = nullptr;

}  // namespace

CompileObserver* set_compile_observer(CompileObserver* observer) {
  CompileObserver* previous = g_compile_observer;
  g_compile_observer = observer;
  return previous;
}

CompiledOp CompiledOp::permutation(
    const RegisterLayout& layout,
    const std::function<std::size_t(std::size_t)>& map) {
  const std::size_t dim = layout.total_dim();
  require_table_addressable(dim);
  CompiledOp op(Kind::kPermutation, dim);
  op.table_.resize(dim);
  std::uint32_t* t = op.table_.data();
  parallel_for(dim, [&](std::size_t x) {
    t[x] = static_cast<std::uint32_t>(map(x));
  });
  require_bijection(op.table_);
  fill_inverse(op.table_, op.inv_table_);
  compile_counter().add();
  if (g_compile_observer != nullptr) g_compile_observer->on_permutation(op, map);
  return op;
}

CompiledOp CompiledOp::diagonal(const RegisterLayout& layout,
                                const std::function<cplx(std::size_t)>& phase) {
  const std::size_t dim = layout.total_dim();
  CompiledOp op(Kind::kDiagonal, dim);
  op.factors_.resize(dim);
  cplx* f = op.factors_.data();
  parallel_for(dim, [&](std::size_t x) { f[x] = phase(x); });
  compile_counter().add();
  if (g_compile_observer != nullptr) g_compile_observer->on_diagonal(op, phase);
  return op;
}

CompiledOp CompiledOp::fiber_dense(
    const RegisterLayout& layout, RegisterId target,
    const std::function<const Matrix*(std::size_t fiber_base)>& selector) {
  const std::size_t dim = layout.total_dim();
  const std::size_t d = layout.dim(target);
  const std::size_t s = layout.stride(target);
  const std::size_t count = dim / d;
  CompiledOp op(Kind::kFiberDense, dim);
  op.target_ = target;
  std::map<const Matrix*, std::uint32_t> pool_index;
  const auto fiber_base = [d, s](std::size_t f) {
    return (f / s) * d * s + (f % s);
  };
  const auto intern = [&](const Matrix* u) -> std::uint32_t {
    if (u == nullptr) return StateVector::kFiberIdentity;
    QS_REQUIRE(u->rows() == d && u->cols() == d,
               "conditioned unitary dimension mismatch");
    auto [it, inserted] = pool_index.try_emplace(
        u, static_cast<std::uint32_t>(pool_index.size()));
    if (inserted) {
      op.matrix_pool_.insert(op.matrix_pool_.end(), u->data().begin(),
                             u->data().end());
    }
    return it->second;
  };
  const std::size_t window = std::min(count, kPeriodGuessWindow);
  op.mat_of_fiber_.reserve(window);
  for (std::size_t f = 0; f < window; ++f)
    op.mat_of_fiber_.push_back(intern(selector(fiber_base(f))));
  bool compressed = false;
  if (window < count) {
    // Smallest period the window admits that also divides the fiber count
    // (p == window passes vacuously — the stream check below carries the
    // real proof either way).
    std::size_t period = 0;
    for (std::size_t p = 1; p <= window; ++p) {
      if (count % p != 0) continue;
      bool ok = true;
      for (std::size_t f = p; f < window; ++f) {
        if (op.mat_of_fiber_[f] != op.mat_of_fiber_[f % p]) {
          ok = false;
          break;
        }
      }
      if (ok) {
        period = p;
        break;
      }
    }
    if (period != 0) {
      // Stream-verify the claim over the remaining fibers without storing
      // them. A matrix pointer never seen in the window disproves
      // periodicity immediately: a p-periodic table's images all appear in
      // its first period ⊆ window.
      bool ok = true;
      for (std::size_t f = window; f < count; ++f) {
        const Matrix* u = selector(fiber_base(f));
        std::uint32_t m = StateVector::kFiberIdentity;
        if (u != nullptr) {
          const auto it = pool_index.find(u);
          if (it == pool_index.end()) {
            ok = false;
            break;
          }
          m = it->second;
        }
        if (m != op.mat_of_fiber_[f % period]) {
          ok = false;
          break;
        }
      }
      if (ok) {
        op.mat_of_fiber_.resize(period);
        op.fiber_period_ = period;
        compressed = true;
        static auto& t_compress =
            telemetry::counter("qsim.compiled.fiber_compress");
        t_compress.add();
      }
    }
    if (!compressed) {
      // Aperiodic (or the guess failed the stream check): materialise the
      // full table. The selector is pure, so re-walking the tail is safe.
      op.mat_of_fiber_.reserve(count);
      op.mat_of_fiber_.resize(window);
      for (std::size_t f = window; f < count; ++f)
        op.mat_of_fiber_.push_back(intern(selector(fiber_base(f))));
    }
  }
  compile_counter().add();
  if (g_compile_observer != nullptr) {
    g_compile_observer->on_fiber_dense(op, layout, target, selector);
  }
  return op;
}

CompiledOp CompiledOp::make_value_shift(
    const RegisterLayout& layout, RegisterId r, RegisterId cond,
    std::span<const std::size_t> shift_per_cond_value) {
  QS_REQUIRE(!(r == cond), "shift target and condition must differ");
  QS_REQUIRE(shift_per_cond_value.size() == layout.dim(cond),
             "need one shift per condition value");
  CompiledOp op(Kind::kValueShift, layout.total_dim());
  op.shift_r_ = r;
  op.shift_cond_ = cond;
  op.target_dim_ = layout.dim(r);
  op.target_stride_ = layout.stride(r);
  op.cond_dim_ = layout.dim(cond);
  op.cond_stride_ = layout.stride(cond);
  op.shifts_.resize(shift_per_cond_value.size());
  for (std::size_t c = 0; c < op.shifts_.size(); ++c)
    op.shifts_[c] = shift_per_cond_value[c] % op.target_dim_;
  compile_counter().add();
  return op;
}

CompiledOp CompiledOp::value_shift(
    const RegisterLayout& layout, RegisterId r, RegisterId cond,
    std::span<const std::size_t> shift_per_cond_value) {
  CompiledOp op = make_value_shift(layout, r, cond, shift_per_cond_value);
  if (g_compile_observer != nullptr) {
    g_compile_observer->on_value_shift(op, shift_per_cond_value);
  }
  return op;
}

CompiledOp CompiledOp::controlled_value_shift(
    const RegisterLayout& layout, RegisterId r, RegisterId cond,
    RegisterId flag, std::span<const std::size_t> shift_per_cond_value) {
  QS_REQUIRE(!(r == flag) && !(cond == flag),
             "shift target, condition and flag must be distinct registers");
  QS_REQUIRE(layout.dim(flag) == 2, "control flag must be a qubit");
  CompiledOp op = make_value_shift(layout, r, cond, shift_per_cond_value);
  op.has_flag_ = true;
  op.shift_flag_ = flag;
  op.flag_stride_ = layout.stride(flag);
  if (g_compile_observer != nullptr) {
    g_compile_observer->on_value_shift(op, shift_per_cond_value);
  }
  return op;
}

void CompiledOp::apply_to(StateVector& state) const {
  QS_REQUIRE(state.dim() == dim_,
             "compiled op dimension does not match state dimension");
  apply_counter().add();
  switch (kind_) {
    case Kind::kPermutation:
      // Dense replay gathers through the inverse table (sequential writes);
      // sparse replay rewrites the stored indices through the forward one.
      // Exact either way — pure data movement.
      if (state.is_sparse()) {
        state.apply_permutation_table(table_);
      } else {
        state.apply_permutation_inverse_table(inv_table_);
      }
      return;
    case Kind::kDiagonal:
      state.apply_diagonal_factors(factors_);
      return;
    case Kind::kFiberDense:
      state.apply_fiber_dense(target_, matrix_pool_, mat_of_fiber_,
                              fiber_period_);
      return;
    case Kind::kValueShift:
      if (has_flag_) {
        state.apply_controlled_value_shift(shift_r_, shift_cond_, shift_flag_,
                                           shifts_);
      } else {
        state.apply_value_shift(shift_r_, shift_cond_, shifts_);
      }
      return;
  }
}

CompiledOp CompiledOp::lowered_to_permutation() const {
  if (kind_ == Kind::kPermutation) return *this;
  QS_REQUIRE(kind_ == Kind::kValueShift,
             "only value shifts lower to permutations");
  require_table_addressable(dim_);
  CompiledOp op(Kind::kPermutation, dim_);
  op.table_.resize(dim_);
  std::uint32_t* t = op.table_.data();
  const std::size_t d = target_dim_;
  const std::size_t s = target_stride_;
  parallel_for(dim_, [&](std::size_t x) {
    if (has_flag_ && (x / flag_stride_) % 2 != 1) {
      t[x] = static_cast<std::uint32_t>(x);
      return;
    }
    const std::size_t c = (x / cond_stride_) % cond_dim_;
    const std::size_t old_digit = (x / s) % d;
    const std::size_t new_digit = (old_digit + shifts_[c]) % d;
    t[x] = static_cast<std::uint32_t>(x + (new_digit - old_digit) * s);
  });
  // A cyclic digit shift is bijective by construction; no re-scan needed.
  fill_inverse(op.table_, op.inv_table_);
  compile_counter().add();
  if (g_compile_observer != nullptr) g_compile_observer->on_lowered(*this, op);
  return op;
}

std::span<const std::uint32_t> CompiledOp::permutation_table() const {
  QS_REQUIRE(kind_ == Kind::kPermutation,
             "permutation_table() needs a kPermutation op");
  return table_;
}

std::span<const std::uint32_t> CompiledOp::permutation_inverse_table() const {
  QS_REQUIRE(kind_ == Kind::kPermutation,
             "permutation_inverse_table() needs a kPermutation op");
  return inv_table_;
}

std::span<const cplx> CompiledOp::diagonal_factors() const {
  QS_REQUIRE(kind_ == Kind::kDiagonal,
             "diagonal_factors() needs a kDiagonal op");
  return factors_;
}

RegisterId CompiledOp::fiber_target() const {
  QS_REQUIRE(kind_ == Kind::kFiberDense,
             "fiber_target() needs a kFiberDense op");
  return target_;
}

std::span<const cplx> CompiledOp::fiber_matrix_pool() const {
  QS_REQUIRE(kind_ == Kind::kFiberDense,
             "fiber_matrix_pool() needs a kFiberDense op");
  return matrix_pool_;
}

std::span<const std::uint32_t> CompiledOp::fiber_matrix_of() const {
  QS_REQUIRE(kind_ == Kind::kFiberDense,
             "fiber_matrix_of() needs a kFiberDense op");
  return mat_of_fiber_;
}

std::size_t CompiledOp::fiber_period() const {
  QS_REQUIRE(kind_ == Kind::kFiberDense,
             "fiber_period() needs a kFiberDense op");
  return fiber_period_;
}

CompiledOp::ValueShiftView CompiledOp::value_shift_view() const {
  QS_REQUIRE(kind_ == Kind::kValueShift,
             "value_shift_view() needs a kValueShift op");
  ValueShiftView view;
  view.has_flag = has_flag_;
  view.target_dim = target_dim_;
  view.target_stride = target_stride_;
  view.cond_dim = cond_dim_;
  view.cond_stride = cond_stride_;
  view.flag_stride = flag_stride_;
  view.shifts = shifts_;
  return view;
}

bool CompiledOp::can_fuse(const CompiledOp& first, const CompiledOp& second) {
  if (first.dim_ != second.dim_ || first.kind_ != second.kind_) return false;
  switch (first.kind_) {
    case Kind::kPermutation:
    case Kind::kDiagonal:
      return true;
    case Kind::kValueShift:
      // Same target/cond/flag geometry ⇒ the shifts simply add mod d.
      return first.shift_r_ == second.shift_r_ &&
             first.shift_cond_ == second.shift_cond_ &&
             first.has_flag_ == second.has_flag_ &&
             (!first.has_flag_ || first.shift_flag_ == second.shift_flag_) &&
             first.target_dim_ == second.target_dim_ &&
             first.target_stride_ == second.target_stride_ &&
             first.cond_dim_ == second.cond_dim_ &&
             first.cond_stride_ == second.cond_stride_ &&
             first.flag_stride_ == second.flag_stride_;
    case Kind::kFiberDense:
      return false;  // would need a matrix-product pool; not a hot pair
  }
  return false;
}

namespace {

/// Notify the armed observer about a completed fusion, then hand the
/// result through — keeps the per-case `return` sites in fused() flat.
CompiledOp notify_fused(const CompiledOp& first, const CompiledOp& second,
                        CompiledOp result) {
  if (g_compile_observer != nullptr) {
    g_compile_observer->on_fused(first, second, result);
  }
  return result;
}

}  // namespace

CompiledOp CompiledOp::fused(const CompiledOp& first, const CompiledOp& second) {
  QS_REQUIRE(can_fuse(first, second), "ops are not fusable");
  fuse_counter().add();
  switch (first.kind_) {
    case Kind::kPermutation: {
      // x → first.table[x] → second.table[first.table[x]]: pure index
      // composition, so the fused sweep is exactly the two-sweep result.
      CompiledOp op(Kind::kPermutation, first.dim_);
      op.table_.resize(first.dim_);
      std::uint32_t* t = op.table_.data();
      const std::uint32_t* t1 = first.table_.data();
      const std::uint32_t* t2 = second.table_.data();
      parallel_for(first.dim_, [&](std::size_t x) { t[x] = t2[t1[x]]; });
      fill_inverse(op.table_, op.inv_table_);
      return notify_fused(first, second, std::move(op));
    }
    case Kind::kDiagonal: {
      // One multiplication order change: amp·(f1·f2) instead of
      // (amp·f1)·f2 — associativity-only error, bounded by the 1e-12
      // differential-grid tolerance.
      CompiledOp op(Kind::kDiagonal, first.dim_);
      op.factors_.resize(first.dim_);
      cplx* f = op.factors_.data();
      const cplx* f1 = first.factors_.data();
      const cplx* f2 = second.factors_.data();
      parallel_for(first.dim_, [&](std::size_t x) { f[x] = f1[x] * f2[x]; });
      return notify_fused(first, second, std::move(op));
    }
    case Kind::kValueShift: {
      CompiledOp op = first;
      for (std::size_t c = 0; c < op.shifts_.size(); ++c)
        op.shifts_[c] = (op.shifts_[c] + second.shifts_[c]) % op.target_dim_;
      return notify_fused(first, second, std::move(op));
    }
    case Kind::kFiberDense:
      break;
  }
  QS_REQUIRE(false, "ops are not fusable");
  return first;  // unreachable
}

std::size_t CompiledProgram::fuse() {
  std::size_t merges = 0;
  std::vector<CompiledOp> out;
  out.reserve(ops_.size());
  for (auto& op : ops_) {
    if (!out.empty() && CompiledOp::can_fuse(out.back(), op)) {
      out.back() = CompiledOp::fused(out.back(), op);
      ++merges;
    } else {
      out.push_back(std::move(op));
    }
  }
  ops_ = std::move(out);
  return merges;
}

void CompiledProgram::apply_to(StateVector& state) const {
  for (const auto& op : ops_) op.apply_to(state);
}

}  // namespace qs
