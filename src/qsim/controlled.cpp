#include "qsim/controlled.hpp"

#include <cmath>

#include "common/require.hpp"

namespace qs {

void apply_controlled(StateVector& state, RegisterId control,
                      std::size_t value,
                      const std::function<void(StateVector&)>& fragment) {
  QS_REQUIRE(value < state.layout().dim(control),
             "control value out of range");
  apply_controlled_if(
      state, control, [value](std::size_t digit) { return digit == value; },
      fragment);
}

void apply_controlled_if(
    StateVector& state, RegisterId control,
    const std::function<bool(std::size_t digit)>& predicate,
    const std::function<void(StateVector&)>& fragment) {
  const auto& layout = state.layout();

  // Extract the active slice into a scratch state (same layout, everything
  // else zero).
  StateVector slice(layout);
  {
    std::vector<cplx> amps(layout.total_dim(), cplx{0.0, 0.0});
    const auto source = state.amplitudes();
    for (std::size_t x = 0; x < amps.size(); ++x) {
      if (predicate(layout.digit(x, control))) amps[x] = source[x];
    }
    slice.set_amplitudes(std::move(amps));
  }

  fragment(slice);

  // Stitch back; verify the fragment stayed block-diagonal in the control.
  auto dest = state.mutable_amplitudes();
  const auto evolved = slice.amplitudes();
  for (std::size_t x = 0; x < dest.size(); ++x) {
    if (predicate(layout.digit(x, control))) {
      dest[x] = evolved[x];
    } else {
      QS_ASSERT(std::norm(evolved[x]) < 1e-20,
                "controlled fragment leaked amplitude across the control "
                "register");
    }
  }
}

double project_register(StateVector& state, RegisterId r, std::size_t value) {
  const auto& layout = state.layout();
  QS_REQUIRE(value < layout.dim(r), "projection value out of range");
  const double probability = state.probability_of(r, value);
  QS_REQUIRE(probability > 1e-300,
             "cannot project onto a zero-probability outcome");
  const double scale = 1.0 / std::sqrt(probability);
  auto amps = state.mutable_amplitudes();
  for (std::size_t x = 0; x < amps.size(); ++x) {
    if (layout.digit(x, r) == value) {
      amps[x] *= scale;
    } else {
      amps[x] = cplx{0.0, 0.0};
    }
  }
  return probability;
}

std::size_t measure_and_collapse(StateVector& state, RegisterId r, Rng& rng) {
  const auto probs = state.marginal(r);
  const double u = rng.uniform01();
  double acc = 0.0;
  std::size_t outcome = probs.size() - 1;
  for (std::size_t v = 0; v < probs.size(); ++v) {
    acc += probs[v];
    if (u < acc) {
      outcome = v;
      break;
    }
  }
  // Guard against rounding at the top of the CDF: fall back to the largest
  // positive-probability outcome.
  if (probs[outcome] <= 0.0) {
    for (std::size_t v = probs.size(); v-- > 0;) {
      if (probs[v] > 0.0) {
        outcome = v;
        break;
      }
    }
  }
  project_register(state, r, outcome);
  return outcome;
}

}  // namespace qs
