// Reduced density operators.
//
// The paper's lower bound (Section 5, Lemma B.1) evaluates the fidelity
// between the coordinator's OUTPUT REGISTER — the element register, with the
// counter/flag/work registers traced out — and the target sampling state.
// This header provides the partial trace from a pure StateVector down to a
// density matrix on a chosen subset of registers, plus fidelity against a
// pure target (⟨ψ|ρ|ψ⟩) and against another density matrix (Uhlmann, via
// the Jacobi eigensolver in linalg).
#pragma once

#include <vector>

#include "qsim/linalg.hpp"
#include "qsim/state_vector.hpp"

namespace qs {

/// Reduced density matrix of `kept` registers (in the order given), tracing
/// out every other register of the state's layout.
Matrix partial_trace(const StateVector& state,
                     const std::vector<RegisterId>& kept);

/// ⟨ψ|ρ|ψ⟩ — fidelity between a density matrix and a pure state given as an
/// amplitude vector of matching dimension.
double fidelity_with_pure(const Matrix& rho, const std::vector<cplx>& psi);

}  // namespace qs
