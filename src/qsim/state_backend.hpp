// StateBackend: per-workload amplitude storage for StateVector.
//
// The dense statevector caps N at a few million amplitudes — 16 bytes per
// basis state of the full 2(ν+1)N coordinator space, twice that with the
// permutation ping-pong buffer. But the paper's AA trajectory never leaves
// a low-dimensional subspace: |π⟩ = F|0⟩ puts support on N basis states,
// and every subsequent oracle/𝒰/reflection step keeps the support on the
// (element, count ∈ {0, c_i}, flag) slice, ≈ 2N of the 2(ν+1)N states.
// SparseAmplitudes exploits that: a sorted-pairs map (SoA: flat index +
// amplitude, sorted by index, exact zeros dropped) whose cost is O(nnz)
// per kernel instead of O(dim), selected per workload through
// StateBackendConfig and wrapped by the StateVector facade so
// SingleStateBackend, ParallelFullCircuit, the fault seam and the serving
// layer's Prepared snapshot all run through unchanged (docs/PERF.md).
//
// CONTRACTS. Kernels that only relabel basis states (permutation, value
// shift) move amplitudes without arithmetic and are bit-identical (0 ULP)
// to the dense kernels. Arithmetic kernels (diagonal, fiber-dense,
// Householder) reuse the same open-coded complex products as the dense
// paths (linalg.hpp cmul) but accumulate in sorted-entry order, so they
// are pinned to the dense backend at ≤1e-12 by the sparse differential
// grid in tests/test_sparse_backend.cpp. All sparse kernels are
// deterministic: entries stay sorted by flat index and every reduction is
// a serial fold in that order, so results are identical across thread
// counts and build flavours by construction.
//
// BUDGET. Support growth is the failure mode of a sparse representation —
// a workload that densifies would silently allocate O(dim) and OOM at big
// N. A configured amplitude budget turns that into a typed error:
// SparseStateError (a ContractViolation, so the recovery/degradation
// seams catch it like any contract breach) carrying the offending support
// size, thrown BEFORE the allocation grows past the budget.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/require.hpp"
#include "qsim/linalg.hpp"

namespace qs {

/// Which amplitude storage a StateVector uses.
enum class StateBackendKind : std::uint8_t {
  kDense,   ///< flat O(dim) array — the default, fastest per amplitude
  kSparse,  ///< sorted (index, amplitude) pairs — O(nnz) kernels for big N
};

/// Per-workload backend selection, threaded through SamplerOptions /
/// ServiceOptions down to the StateVector constructor. docs/PERF.md
/// documents the selection heuristics (density threshold, crossover N).
struct StateBackendConfig {
  StateBackendKind kind = StateBackendKind::kDense;
  /// Sparse only: maximum stored amplitudes before SparseStateError.
  /// 0 = unlimited (the dense dimension is then the only ceiling).
  std::size_t amplitude_budget = 0;

  static StateBackendConfig dense() { return {}; }
  static StateBackendConfig sparse(std::size_t amplitude_budget = 0) {
    return {StateBackendKind::kSparse, amplitude_budget};
  }
};

/// Typed failure of the sparse backend: an operation needed more stored
/// amplitudes than the configured budget, or a caller used a dense-only
/// accessor on a sparse state. Derives ContractViolation so the fault
/// recovery and serving degradation seams (docs/ROBUSTNESS.md) catch it
/// like any contract breach, while callers that can re-plan (densify,
/// switch backend, shrink the workload) catch the precise type.
class SparseStateError : public ContractViolation {
 public:
  SparseStateError(const std::string& what, std::size_t required,
                   std::size_t budget)
      : ContractViolation(what), required_(required), budget_(budget) {}

  /// Stored amplitudes the operation would have needed.
  std::size_t required() const noexcept { return required_; }
  /// The configured ceiling (0 when the failure is not budget-related).
  std::size_t budget() const noexcept { return budget_; }

 private:
  std::size_t required_;
  std::size_t budget_;
};

/// The single throw site for SparseStateError (error-taxonomy rule): every
/// sparse failure — budget exhaustion, dense-only accessor on a sparse
/// state — routes through here. `budget` is 0 when the failure is not
/// budget-related.
[[noreturn]] void raise_sparse_state_error(const std::string& what,
                                           std::size_t required,
                                           std::size_t budget);

/// One register's addressing inside the flat index: dimension d, stride s.
/// Digit of flat index x: (x / s) % d; fiber f of the register has base
/// (f / s) * d * s + (f % s) and elements base + j*s.
struct FiberGeom {
  std::size_t d = 0;
  std::size_t s = 0;

  std::size_t digit(std::uint64_t flat) const noexcept {
    return static_cast<std::size_t>(flat / s) % d;
  }
  std::uint64_t base_of(std::uint64_t flat) const noexcept {
    return flat - static_cast<std::uint64_t>(digit(flat)) * s;
  }
};

/// Sorted-pairs sparse amplitude storage. An implementation detail of the
/// StateVector facade (state_vector.hpp) — library code never holds one
/// directly; tests reach it through StateVector::sparse_indices()/values().
class SparseAmplitudes {
 public:
  /// |basis⟩ on a space of `dim` basis states.
  SparseAmplitudes(std::size_t dim, std::size_t budget, std::uint64_t basis);

  /// Compress a dense amplitude array (exact zeros dropped).
  SparseAmplitudes(std::span<const cplx> dense, std::size_t budget);

  std::size_t dim() const noexcept { return dim_; }
  std::size_t nnz() const noexcept { return idx_.size(); }
  /// High-water mark of nnz() over the object's lifetime — the number K2
  /// reports as the sparse backend's real memory footprint.
  std::size_t peak_nnz() const noexcept { return peak_nnz_; }
  std::size_t budget() const noexcept { return budget_; }

  std::span<const std::uint64_t> indices() const noexcept { return idx_; }
  std::span<const cplx> values() const noexcept { return amp_; }

  cplx amplitude(std::uint64_t flat) const;  // binary search; 0 if absent
  void reset(std::uint64_t basis);
  /// Replace the whole support with (indices, values) pairs — the bulk
  /// constructor target_full_state() uses to build a big-N sparse target
  /// without an O(dim) dense detour. Indices need not arrive sorted but
  /// must be unique and < dim(); exact zeros are dropped; budget-checked.
  void assign(std::vector<std::uint64_t> indices, std::vector<cplx> values);
  /// Expand into a dense array of size dim().
  std::vector<cplx> densify() const;

  // --- Kernels (geometry supplied by the StateVector facade) -----------

  void scale(cplx phase);                  // global phase
  void scale_real(double factor);          // normalize()
  void diagonal_factors(std::span<const cplx> factors);  // factors[dim]
  void phase_on_basis(std::uint64_t flat, cplx phase);
  void phase_on_register_value(FiberGeom g, std::size_t value, cplx phase);

  /// Relabel through the compiled FORWARD table: new|table[x]⟩ = old|x⟩.
  /// O(nnz log nnz); exact (no arithmetic).
  void permute_forward(std::span<const std::uint32_t> table);

  /// The Eq. (1)/(2) oracle shape, computed arithmetically per entry —
  /// no O(dim) table, which is what keeps the big-N path alive.
  void value_shift(FiberGeom target, FiberGeom cond,
                   std::span<const std::size_t> shift_per_cond_value,
                   bool has_flag, std::size_t flag_stride);

  /// I − 2|v⟩⟨v| on the register described by g. Touched fibers densify
  /// to d entries (this is where support grows; budget-checked).
  void householder(FiberGeom g, std::span<const cplx> v);

  /// Per-fiber d×d matrices from a pool; mat_of_fiber may be period-
  /// compressed (matrix of fiber f = mat_of_fiber[f % period], with
  /// period == mat_of_fiber.size()).
  void fiber_dense(FiberGeom g, std::span<const cplx> matrix_pool,
                   std::span<const std::uint32_t> mat_of_fiber);

  /// Dense d×d unitary on every fiber of g (QFT-style preparation).
  void unitary(FiberGeom g, const Matrix& u);

  // --- Observables (serial folds in sorted-index order) ----------------

  double norm_squared() const;
  std::vector<double> marginal(FiberGeom g) const;

  /// ⟨a|b⟩ in its three storage combinations.
  static cplx inner(const SparseAmplitudes& a, const SparseAmplitudes& b);
  static cplx inner(const SparseAmplitudes& a, std::span<const cplx> b);
  static cplx inner(std::span<const cplx> a, const SparseAmplitudes& b);

  /// || |a⟩ − |b⟩ ||².
  static double distance_squared(const SparseAmplitudes& a,
                                 const SparseAmplitudes& b);
  static double distance_squared(std::span<const cplx> a,
                                 const SparseAmplitudes& b);

 private:
  /// Restore the sorted-unique invariant after an index-rewriting kernel.
  void sort_entries();
  /// Drop exact-zero amplitudes (keeps relabel kernels 0 ULP: zeros only
  /// ever DISAPPEAR, never change value).
  void drop_zeros();
  /// Raise SparseStateError when `needed` exceeds the budget.
  void require_within_budget(std::size_t needed, const char* op) const;
  void note_size();

  std::size_t dim_ = 1;
  std::size_t budget_ = 0;
  std::size_t peak_nnz_ = 0;
  std::vector<std::uint64_t> idx_;  // sorted, unique
  std::vector<cplx> amp_;           // amp_[k] belongs to idx_[k]
};

}  // namespace qs
