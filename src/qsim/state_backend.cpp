#include "qsim/state_backend.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/require.hpp"

namespace qs {

namespace {

// Mirrors StateVector::kFiberIdentity (static_assert-checked at the facade
// in state_vector.cpp; this file cannot include state_vector.hpp, which
// includes us).
constexpr std::uint32_t kIdentity = 0xFFFFFFFFu;

[[noreturn]] void raise_sparse_error(const char* op, const char* what,
                                     std::size_t required,
                                     std::size_t budget) {
  std::ostringstream os;
  os << "sparse backend: " << op << ": " << what << " (required "
     << required << ", budget " << budget << ")";
  raise_sparse_state_error(os.str(), required, budget);
}

/// (fiber base, digit, source entry) triple for the fiber-grouping kernels.
struct FiberRef {
  std::uint64_t base;
  std::uint32_t j;
  std::uint64_t src;
};

/// Decompose the sorted entries into per-fiber groups ordered by base then
/// digit. Deterministic: std::sort on keys that are unique per entry.
std::vector<FiberRef> group_by_fiber(FiberGeom g,
                                     std::span<const std::uint64_t> idx) {
  std::vector<FiberRef> refs(idx.size());
  for (std::size_t k = 0; k < idx.size(); ++k) {
    const std::size_t j = g.digit(idx[k]);
    refs[k] = FiberRef{idx[k] - static_cast<std::uint64_t>(j) * g.s,
                       static_cast<std::uint32_t>(j), k};
  }
  std::sort(refs.begin(), refs.end(), [](const FiberRef& a, const FiberRef& b) {
    return a.base != b.base ? a.base < b.base : a.j < b.j;
  });
  return refs;
}

/// Fiber index of a fiber base for geometry g: the inverse of
/// base = (f / s) * d * s + (f % s).
std::uint64_t fiber_of_base(FiberGeom g, std::uint64_t base) {
  return (base / (static_cast<std::uint64_t>(g.d) * g.s)) * g.s + base % g.s;
}

}  // namespace

[[noreturn]] void raise_sparse_state_error(const std::string& what,
                                           std::size_t required,
                                           std::size_t budget) {
  // SparseStateError IS the taxonomy: it derives ContractViolation so every
  // recovery/degradation seam catches it, while adding the typed
  // required/budget payload QS_REQUIRE cannot carry.
  // dqs-lint: allow(error-taxonomy) typed ContractViolation subclass
  throw SparseStateError(what, required, budget);
}

SparseAmplitudes::SparseAmplitudes(std::size_t dim, std::size_t budget,
                                   std::uint64_t basis)
    : dim_(dim), budget_(budget) {
  QS_REQUIRE(basis < dim_, "initial basis state out of range");
  idx_.push_back(basis);
  amp_.push_back(cplx{1.0, 0.0});
  note_size();
}

SparseAmplitudes::SparseAmplitudes(std::span<const cplx> dense,
                                   std::size_t budget)
    : dim_(dense.size()), budget_(budget) {
  QS_REQUIRE(dim_ > 0, "cannot sparsify an empty amplitude array");
  std::size_t nonzero = 0;
  for (const cplx& a : dense)
    if (a != cplx{0.0, 0.0}) ++nonzero;
  require_within_budget(nonzero, "sparsify");
  idx_.reserve(nonzero);
  amp_.reserve(nonzero);
  for (std::size_t i = 0; i < dense.size(); ++i) {
    if (dense[i] != cplx{0.0, 0.0}) {
      idx_.push_back(i);
      amp_.push_back(dense[i]);
    }
  }
  note_size();
}

void SparseAmplitudes::assign(std::vector<std::uint64_t> indices,
                              std::vector<cplx> values) {
  QS_REQUIRE(indices.size() == values.size(),
             "sparse assign: index/value size mismatch");
  for (const std::uint64_t flat : indices)
    QS_REQUIRE(flat < dim_, "sparse assign: index out of range");
  require_within_budget(indices.size(), "assign");
  idx_ = std::move(indices);
  amp_ = std::move(values);
  sort_entries();  // also asserts uniqueness and notes the size
  drop_zeros();
}

cplx SparseAmplitudes::amplitude(std::uint64_t flat) const {
  QS_REQUIRE(flat < dim_, "amplitude index out of range");
  const auto it = std::lower_bound(idx_.begin(), idx_.end(), flat);
  if (it == idx_.end() || *it != flat) return cplx{0.0, 0.0};
  return amp_[static_cast<std::size_t>(it - idx_.begin())];
}

void SparseAmplitudes::reset(std::uint64_t basis) {
  QS_REQUIRE(basis < dim_, "initial basis state out of range");
  idx_.assign(1, basis);
  amp_.assign(1, cplx{1.0, 0.0});
  note_size();
}

std::vector<cplx> SparseAmplitudes::densify() const {
  std::vector<cplx> out(dim_, cplx{0.0, 0.0});
  for (std::size_t k = 0; k < idx_.size(); ++k)
    out[static_cast<std::size_t>(idx_[k])] = amp_[k];
  return out;
}

void SparseAmplitudes::scale(cplx phase) {
  for (cplx& a : amp_) a = cmul(a, phase);
}

void SparseAmplitudes::scale_real(double factor) {
  for (cplx& a : amp_) a *= factor;
}

void SparseAmplitudes::diagonal_factors(std::span<const cplx> factors) {
  QS_REQUIRE(factors.size() == dim_,
             "diagonal factor array size must match state dimension");
  for (std::size_t k = 0; k < idx_.size(); ++k)
    amp_[k] = cmul(amp_[k], factors[static_cast<std::size_t>(idx_[k])]);
  drop_zeros();
}

void SparseAmplitudes::phase_on_basis(std::uint64_t flat, cplx phase) {
  QS_REQUIRE(flat < dim_, "basis state out of range");
  const auto it = std::lower_bound(idx_.begin(), idx_.end(), flat);
  if (it == idx_.end() || *it != flat) return;
  cplx& a = amp_[static_cast<std::size_t>(it - idx_.begin())];
  a = cmul(a, phase);
}

void SparseAmplitudes::phase_on_register_value(FiberGeom g, std::size_t value,
                                               cplx phase) {
  for (std::size_t k = 0; k < idx_.size(); ++k)
    if (g.digit(idx_[k]) == value) amp_[k] = cmul(amp_[k], phase);
}

void SparseAmplitudes::permute_forward(std::span<const std::uint32_t> table) {
  QS_REQUIRE(table.size() == dim_,
             "permutation table size must match state dimension");
  for (std::uint64_t& x : idx_) x = table[static_cast<std::size_t>(x)];
  sort_entries();
}

void SparseAmplitudes::value_shift(
    FiberGeom target, FiberGeom cond,
    std::span<const std::size_t> shift_per_cond_value, bool has_flag,
    std::size_t flag_stride) {
  QS_REQUIRE(shift_per_cond_value.size() == cond.d,
             "need one shift per condition value");
  for (std::uint64_t& x : idx_) {
    if (has_flag && (x / flag_stride) % 2 != 1) continue;
    const std::size_t c = cond.digit(x);
    const std::size_t old_digit = target.digit(x);
    const std::size_t new_digit =
        (old_digit + shift_per_cond_value[c]) % target.d;
    x += (static_cast<std::uint64_t>(new_digit) - old_digit) * target.s;
  }
  sort_entries();
}

void SparseAmplitudes::householder(FiberGeom g, std::span<const cplx> v) {
  QS_REQUIRE(v.size() == g.d,
             "Householder vector must match register dimension");
  const auto refs = group_by_fiber(g, idx_);
  // Pass 1: per touched fiber, the inner product ⟨v|fiber⟩ in ascending-
  // digit order (absent digits contribute exact zeros, which the dense
  // kernel also adds — skipping them changes nothing but signed zeros,
  // inside the ≤1e-12 contract) and the output size.
  struct Group {
    std::size_t first, last;  // refs range
    cplx ip;
  };
  std::vector<Group> groups;
  std::size_t needed = 0;
  for (std::size_t r = 0; r < refs.size();) {
    std::size_t e = r;
    cplx ip{0.0, 0.0};
    while (e < refs.size() && refs[e].base == refs[r].base) {
      ip += cmul_conj(v[refs[e].j], amp_[refs[e].src]);
      ++e;
    }
    groups.push_back(Group{r, e, ip});
    needed += ip == cplx{0.0, 0.0} ? e - r : g.d;
    r = e;
  }
  require_within_budget(needed, "householder");
  std::vector<std::uint64_t> out_idx;
  std::vector<cplx> out_amp;
  out_idx.reserve(needed);
  out_amp.reserve(needed);
  for (const Group& grp : groups) {
    if (grp.ip == cplx{0.0, 0.0}) {
      for (std::size_t r = grp.first; r < grp.last; ++r) {
        out_idx.push_back(idx_[refs[r].src]);
        out_amp.push_back(amp_[refs[r].src]);
      }
      continue;
    }
    const cplx twice = 2.0 * grp.ip;
    const std::uint64_t base = refs[grp.first].base;
    std::size_t r = grp.first;
    for (std::size_t j = 0; j < g.d; ++j) {
      cplx a{0.0, 0.0};
      if (r < grp.last && refs[r].j == j) a = amp_[refs[r++].src];
      const cplx next = a - cmul(twice, v[j]);
      if (next == cplx{0.0, 0.0}) continue;
      out_idx.push_back(base + static_cast<std::uint64_t>(j) * g.s);
      out_amp.push_back(next);
    }
  }
  idx_ = std::move(out_idx);
  amp_ = std::move(out_amp);
  sort_entries();
}

namespace {

/// Shared body of fiber_dense / unitary: apply a per-fiber d×d matrix
/// (row-major pointer from `matrix_of(fiber)`, nullptr = identity) to the
/// grouped entries. `MatrixOf` is a generic callable, NOT a std::function —
/// this is replay, not lowering.
template <class MatrixOf>
void apply_fiber_matrices(FiberGeom g, std::vector<std::uint64_t>& idx,
                          std::vector<cplx>& amp, MatrixOf&& matrix_of,
                          std::size_t budget,
                          void (*check)(std::size_t, std::size_t,
                                        const char*)) {
  const auto refs = group_by_fiber(g, idx);
  struct Group {
    std::size_t first, last;
    const cplx* u;  // nullptr = identity fiber
  };
  std::vector<Group> groups;
  std::size_t needed = 0;
  for (std::size_t r = 0; r < refs.size();) {
    std::size_t e = r;
    while (e < refs.size() && refs[e].base == refs[r].base) ++e;
    const cplx* u = matrix_of(fiber_of_base(g, refs[r].base));
    groups.push_back(Group{r, e, u});
    needed += u == nullptr ? e - r : g.d;
    r = e;
  }
  check(needed, budget, "fiber_dense");
  std::vector<std::uint64_t> out_idx;
  std::vector<cplx> out_amp;
  out_idx.reserve(needed);
  out_amp.reserve(needed);
  std::vector<cplx> scratch(g.d);
  for (const Group& grp : groups) {
    if (grp.u == nullptr) {
      for (std::size_t r = grp.first; r < grp.last; ++r) {
        out_idx.push_back(idx[refs[r].src]);
        out_amp.push_back(amp[refs[r].src]);
      }
      continue;
    }
    const std::uint64_t base = refs[grp.first].base;
    std::fill(scratch.begin(), scratch.end(), cplx{0.0, 0.0});
    for (std::size_t r = grp.first; r < grp.last; ++r)
      scratch[refs[r].j] = amp[refs[r].src];
    for (std::size_t i = 0; i < g.d; ++i) {
      // Same ascending-j accumulation order as the dense kernel.
      cplx acc{0.0, 0.0};
      for (std::size_t j = 0; j < g.d; ++j)
        acc += cmul(grp.u[i * g.d + j], scratch[j]);
      if (acc == cplx{0.0, 0.0}) continue;
      out_idx.push_back(base + static_cast<std::uint64_t>(i) * g.s);
      out_amp.push_back(acc);
    }
  }
  idx = std::move(out_idx);
  amp = std::move(out_amp);
}

}  // namespace

void SparseAmplitudes::fiber_dense(FiberGeom g,
                                   std::span<const cplx> matrix_pool,
                                   std::span<const std::uint32_t> mat_of_fiber) {
  QS_REQUIRE(!mat_of_fiber.empty(), "need a non-empty fiber matrix table");
  QS_REQUIRE(matrix_pool.size() % (g.d * g.d) == 0,
             "matrix pool must hold whole d×d matrices");
  const std::size_t num_mats = matrix_pool.size() / (g.d * g.d);
  const std::size_t period = mat_of_fiber.size();
  apply_fiber_matrices(
      g, idx_, amp_,
      [&](std::uint64_t fiber) -> const cplx* {
        const std::uint32_t m =
            mat_of_fiber[static_cast<std::size_t>(fiber % period)];
        if (m == kIdentity) return nullptr;
        QS_ASSERT(m < num_mats, "fiber matrix index out of range");
        return matrix_pool.data() + static_cast<std::size_t>(m) * g.d * g.d;
      },
      budget_,
      [](std::size_t needed, std::size_t budget, const char* op) {
        if (budget != 0 && needed > budget)
          raise_sparse_error(op, "amplitude budget exceeded", needed, budget);
      });
  sort_entries();
}

void SparseAmplitudes::unitary(FiberGeom g, const Matrix& u) {
  QS_REQUIRE(u.rows() == g.d && u.cols() == g.d,
             "unitary dimension must match register dimension");
  const cplx* data = u.data().data();
  apply_fiber_matrices(
      g, idx_, amp_, [&](std::uint64_t) -> const cplx* { return data; },
      budget_,
      [](std::size_t needed, std::size_t budget, const char* op) {
        if (budget != 0 && needed > budget)
          raise_sparse_error(op, "amplitude budget exceeded", needed, budget);
      });
  sort_entries();
}

double SparseAmplitudes::norm_squared() const {
  double acc = 0.0;
  for (const cplx& a : amp_) acc += std::norm(a);
  return acc;
}

std::vector<double> SparseAmplitudes::marginal(FiberGeom g) const {
  std::vector<double> probs(g.d, 0.0);
  for (std::size_t k = 0; k < idx_.size(); ++k)
    probs[g.digit(idx_[k])] += std::norm(amp_[k]);
  return probs;
}

cplx SparseAmplitudes::inner(const SparseAmplitudes& a,
                             const SparseAmplitudes& b) {
  cplx acc{0.0, 0.0};
  std::size_t i = 0, j = 0;
  while (i < a.idx_.size() && j < b.idx_.size()) {
    if (a.idx_[i] < b.idx_[j]) {
      ++i;
    } else if (a.idx_[i] > b.idx_[j]) {
      ++j;
    } else {
      acc += cmul_conj(a.amp_[i], b.amp_[j]);
      ++i;
      ++j;
    }
  }
  return acc;
}

cplx SparseAmplitudes::inner(const SparseAmplitudes& a,
                             std::span<const cplx> b) {
  cplx acc{0.0, 0.0};
  for (std::size_t k = 0; k < a.idx_.size(); ++k)
    acc += cmul_conj(a.amp_[k], b[static_cast<std::size_t>(a.idx_[k])]);
  return acc;
}

cplx SparseAmplitudes::inner(std::span<const cplx> a,
                             const SparseAmplitudes& b) {
  cplx acc{0.0, 0.0};
  for (std::size_t k = 0; k < b.idx_.size(); ++k)
    acc += cmul_conj(a[static_cast<std::size_t>(b.idx_[k])], b.amp_[k]);
  return acc;
}

double SparseAmplitudes::distance_squared(const SparseAmplitudes& a,
                                          const SparseAmplitudes& b) {
  double acc = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.idx_.size() || j < b.idx_.size()) {
    const bool take_a =
        j >= b.idx_.size() ||
        (i < a.idx_.size() && a.idx_[i] < b.idx_[j]);
    const bool take_b =
        i >= a.idx_.size() ||
        (j < b.idx_.size() && b.idx_[j] < a.idx_[i]);
    if (take_a) {
      acc += std::norm(a.amp_[i++]);
    } else if (take_b) {
      acc += std::norm(b.amp_[j++]);
    } else {
      acc += std::norm(a.amp_[i++] - b.amp_[j++]);
    }
  }
  return acc;
}

double SparseAmplitudes::distance_squared(std::span<const cplx> a,
                                          const SparseAmplitudes& b) {
  double acc = 0.0;
  std::size_t j = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cplx bi{0.0, 0.0};
    if (j < b.idx_.size() && b.idx_[j] == i) bi = b.amp_[j++];
    acc += std::norm(a[i] - bi);
  }
  return acc;
}

void SparseAmplitudes::sort_entries() {
  std::vector<std::size_t> order(idx_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return idx_[a] < idx_[b];
  });
  std::vector<std::uint64_t> sorted_idx(idx_.size());
  std::vector<cplx> sorted_amp(amp_.size());
  for (std::size_t k = 0; k < order.size(); ++k) {
    sorted_idx[k] = idx_[order[k]];
    sorted_amp[k] = amp_[order[k]];
  }
  idx_ = std::move(sorted_idx);
  amp_ = std::move(sorted_amp);
  for (std::size_t k = 1; k < idx_.size(); ++k)
    QS_ASSERT(idx_[k - 1] < idx_[k],
              "sparse entries must stay unique (bijective relabelling)");
  note_size();
}

void SparseAmplitudes::drop_zeros() {
  std::size_t out = 0;
  for (std::size_t k = 0; k < idx_.size(); ++k) {
    if (amp_[k] == cplx{0.0, 0.0}) continue;
    idx_[out] = idx_[k];
    amp_[out] = amp_[k];
    ++out;
  }
  idx_.resize(out);
  amp_.resize(out);
}

void SparseAmplitudes::require_within_budget(std::size_t needed,
                                             const char* op) const {
  if (budget_ != 0 && needed > budget_)
    raise_sparse_error(op, "amplitude budget exceeded", needed, budget_);
}

void SparseAmplitudes::note_size() {
  peak_nnz_ = std::max(peak_nnz_, idx_.size());
  if (budget_ != 0 && idx_.size() > budget_)
    raise_sparse_error("growth", "amplitude budget exceeded", idx_.size(),
                       budget_);
}

}  // namespace qs
