// Extract the dense matrix of a circuit on a small layout.
//
// The correctness lemmas of Section 4 (4.1: D extends to a unitary; 4.2: D
// equals the 2n-query oracle circuit; 4.4: D equals the 4-parallel-query
// circuit) are statements about OPERATORS, not about one state. For small
// layouts we recover the full matrix of any circuit by applying it to every
// computational basis state, which lets the tests assert operator-level
// identities (max-abs distance, unitarity defect) instead of spot checks.
#pragma once

#include <functional>

#include "qsim/linalg.hpp"
#include "qsim/state_vector.hpp"

namespace qs {

/// Apply `circuit` to each basis state of `layout` and collect the images
/// as matrix COLUMNS: result(:, j) = circuit(|j⟩).
Matrix operator_of_circuit(const RegisterLayout& layout,
                           const std::function<void(StateVector&)>& circuit);

}  // namespace qs
