// Noise channels for the fault-tolerance experiments.
//
// The paper's motivation for distributing the database is the cost and
// fragility of one large quantum store (Section 1). To quantify that story
// we add standard qudit noise channels and inject them between oracle
// rounds of the samplers (src/sampling/noisy_sampler.hpp): an algorithm
// with fewer ROUNDS accumulates less noise, which is exactly where the
// parallel model's Θ(√(νN/M)) round count pays off.
//
// Channels are simulated by TRAJECTORY UNRAVELLING: each run samples one
// Kraus branch (a Weyl operator), and observable averages over repeated
// runs converge to the exact channel output. For small systems the exact
// dense-channel action is also provided so tests can certify the
// unravelling against the mathematical definition.
//
// Weyl (generalised Pauli) operators on a d-dimensional register:
//   X^a |j⟩ = |j + a mod d⟩,   Z^b |j⟩ = ω^{jb} |j⟩,  ω = e^{2πi/d}.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "qsim/linalg.hpp"
#include "qsim/state_vector.hpp"

namespace qs {

/// Apply the Weyl operator X^a Z^b to one register (exact, deterministic).
void apply_weyl(StateVector& state, RegisterId r, std::size_t a,
                std::size_t b);

/// Dephasing channel with strength p ∈ [0, 1]:
///   Λ(ρ) = (1−p) ρ + p · (1/d) Σ_b Z^b ρ Z^{−b}
/// (kills off-diagonals in the register's basis with probability p).
/// Trajectory step: with probability p apply Z^b for uniform b.
void apply_dephasing_trajectory(StateVector& state, RegisterId r, double p,
                                Rng& rng);

/// Depolarizing channel with strength p ∈ [0, 1]:
///   Λ(ρ) = (1−p) ρ + p · (1/d²) Σ_{a,b} X^a Z^b ρ (X^a Z^b)†
///        = (1−p) ρ + p · (I/d ⊗ Tr_r ρ).
/// Trajectory step: with probability p apply X^a Z^b for uniform (a, b).
void apply_depolarizing_trajectory(StateVector& state, RegisterId r, double p,
                                   Rng& rng);

/// Exact dense action of the dephasing channel on a density matrix whose
/// dimension equals dim(r) (single-register states; for tests).
Matrix dephasing_exact(const Matrix& rho, double p);

/// Exact dense action of the depolarizing channel (single-register states).
Matrix depolarizing_exact(const Matrix& rho, double p);

/// Noise injected after every oracle interaction of a sampler run.
struct NoiseModel {
  double dephasing_per_round = 0.0;     ///< on the element register
  double depolarizing_per_round = 0.0;  ///< on the flag register
  /// Probability that one oracle application answers with the multiplicity
  /// off by +1 (mod ν+1) — classical data corruption in a machine.
  double oracle_fault_rate = 0.0;
  /// Transport-noise regime: each qubit TRIP (one qubit moved one way
  /// between coordinator and a machine, cf. distdb/communication.hpp)
  /// dephases the element register independently with this probability;
  /// an interaction moving q qubits dephases with 1 − (1−p)^q. Under this
  /// regime the parallel model's advantage inverts: it moves MORE qubits
  /// per D (2n(e+c+1)·4 trips vs 2(e+c)·2n), it just moves them in fewer
  /// rounds. Experiment F9.
  double dephasing_per_qubit_trip = 0.0;

  bool is_noiseless() const noexcept {
    return dephasing_per_round == 0.0 && depolarizing_per_round == 0.0 &&
           oracle_fault_rate == 0.0 && dephasing_per_qubit_trip == 0.0;
  }
};

}  // namespace qs
