// Measurement utilities.
//
// The sampling task is defined by what measuring the output state in the
// computational basis yields (Section 3: measuring |ψ⟩ samples the joint
// database). These helpers draw basis-state samples from a StateVector and
// compare empirical histograms against target distributions.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "qsim/state_vector.hpp"

namespace qs {

/// Sample one full basis state (flat index) from |state|².
std::size_t measure_basis_state(const StateVector& state, Rng& rng);

/// Sample the value of one register (marginal measurement).
std::size_t measure_register(const StateVector& state, RegisterId r, Rng& rng);

/// Draw `shots` marginal measurements of register r; returns a histogram of
/// length dim(r).
std::vector<std::uint64_t> histogram_register(const StateVector& state,
                                              RegisterId r, Rng& rng,
                                              std::size_t shots);

/// Total variation distance (1/2)·Σ|p_i - q_i| between two distributions of
/// equal length (each should sum to ~1).
double total_variation(const std::vector<double>& p,
                       const std::vector<double>& q);

/// Normalise a histogram of counts into a probability vector.
std::vector<double> normalize_histogram(const std::vector<std::uint64_t>& h);

}  // namespace qs
