// Compiled operators: structure-aware lowering of oracles and unitaries.
//
// The std::function kernels in state_vector.hpp pay an opaque indirect call
// per amplitude (or per fiber) every time an operator is applied. But every
// operator the paper's algorithms apply — the counting oracles O_j/Ô_j of
// Eq. (1)/(2), the phase oracles S_χ/S_0, the count-controlled rotation 𝒰
// of Eq. (6), the coordinator-side adder of Lemma 4.4 — has one of four
// rigid structures. CompiledOp lowers an operator ONCE per (operator,
// layout) into flat arrays and replays it through tight index loops:
//
//   kPermutation  y = table[x]          basis relabelling (adder, fused
//                                       ancilla moves); bijection certified
//                                       once here, not per query; both the
//                                       forward and the inverse table are
//                                       materialised — dense replay gathers
//                                       through the inverse (sequential
//                                       writes, SIMD-friendly), sparse
//                                       replay rewrites indices through the
//                                       forward;
//   kDiagonal     amp[x] *= factors[x]  phase oracles;
//   kFiberDense   per-fiber d×d matrix  conditioned unitaries (𝒰); d=2 and
//                                       d=4 replay fully unrolled; when the
//                                       per-fiber table is periodic (𝒰's
//                                       matrix depends only on the count
//                                       digit) only one period is stored
//                                       and verified, keeping big-N compile
//                                       memory O(period) instead of O(dim);
//   kValueShift   cyclic digit shift    the oracle shape of Eq. (1)/(2),
//                                       with the shift table precomputed.
//
// CompiledProgram strings ops together and fuses adjacent compatible pairs
// (diagonal∘diagonal, permutation∘permutation, parallel value shifts on the
// same registers) into a single sweep. Permutation/shift lowering and
// fusion move amplitudes without arithmetic, so those paths are
// bit-identical (0 ULP) to the naive kernels; diagonal fusion multiplies
// factors once at fuse time and is ≤1e-12-close. The differential grid in
// tests/test_kernel_equivalence.cpp enforces both bounds; docs/PERF.md
// documents the representations and rules.
//
// Telemetry: qsim.compiled.compile / .fuse / .apply counters.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "qsim/linalg.hpp"
#include "qsim/register_layout.hpp"
#include "qsim/state_vector.hpp"

namespace qs {

class CompiledOp {
 public:
  // Every kind listed here must be handled by the symbolic translation-
  // validation engine (src/analysis/tv/engine.cpp); dqs_lint's
  // tv-exhaustiveness rule cross-checks the two lists.
  enum class Kind : std::uint8_t {
    // dqs-lint: op-kind-registry-begin
    kPermutation,
    kDiagonal,
    kFiberDense,
    kValueShift,
    // dqs-lint: op-kind-registry-end
  };

  // --- Lowering entry points ---------------------------------------------
  // These are the ONLY places the compiled layer accepts a std::function:
  // the callback runs once per basis state (or fiber) at compile time, then
  // never again. dqs_lint's no-std-function-in-kernels rule allowlists this
  // file for exactly that reason.

  /// Compile `map` into a flat forward table. Evaluates `map` on every
  /// basis state (in parallel — `map` must be pure, same contract as
  /// StateVector::apply_permutation) and certifies it is a bijection once,
  /// here, so the replay kernel can skip the per-query scan.
  static CompiledOp permutation(
      const RegisterLayout& layout,
      const std::function<std::size_t(std::size_t)>& map);

  /// Compile `phase` into a dense factor array.
  static CompiledOp diagonal(const RegisterLayout& layout,
                             const std::function<cplx(std::size_t)>& phase);

  /// Compile a conditioned unitary: `selector` is evaluated once per fiber
  /// of `target` (same contract as StateVector::apply_conditioned_unitary,
  /// nullptr = identity); distinct matrices are pooled and fibers store a
  /// pool index.
  static CompiledOp fiber_dense(
      const RegisterLayout& layout, RegisterId target,
      const std::function<const Matrix*(std::size_t fiber_base)>& selector);

  /// Compile the Eq. (1) oracle shape |c⟩|s⟩ → |c⟩|s + shift(c) mod d⟩.
  /// Shifts are reduced mod dim(r) at compile time.
  static CompiledOp value_shift(
      const RegisterLayout& layout, RegisterId r, RegisterId cond,
      std::span<const std::size_t> shift_per_cond_value);

  /// The flag-controlled Ô_j shape of Eq. (2); `flag` must be a qubit.
  static CompiledOp controlled_value_shift(
      const RegisterLayout& layout, RegisterId r, RegisterId cond,
      RegisterId flag, std::span<const std::size_t> shift_per_cond_value);

  // --- Replay and composition --------------------------------------------

  Kind kind() const noexcept { return kind_; }
  std::size_t dim() const noexcept { return dim_; }

  /// Replay on a state of matching dimension through the flat-table
  /// kernels of StateVector.
  void apply_to(StateVector& state) const;

  /// Re-express this op as an explicit kPermutation (identity for one that
  /// already is). Value shifts are basis relabellings, so this is exact; it
  /// is the bridge that lets shifts on DIFFERENT registers fuse into one
  /// table sweep (see ParallelFullCircuit).
  CompiledOp lowered_to_permutation() const;

  /// True when `second ∘ first` collapses into a single op: both diagonal,
  /// both permutation, or value shifts with identical target/cond/flag
  /// geometry (all on equal dimensions).
  static bool can_fuse(const CompiledOp& first, const CompiledOp& second);

  /// The fused op (apply order: `first`, then `second`). Requires
  /// can_fuse(first, second).
  static CompiledOp fused(const CompiledOp& first, const CompiledOp& second);

  // --- Symbolic introspection (src/analysis/tv) --------------------------
  // Read-only views of the compiled representation, so the translation-
  // validation engine can replay an op symbolically without re-deriving the
  // private layout. Each accessor requires the matching kind.

  /// kPermutation: the forward table, y = table[x].
  std::span<const std::uint32_t> permutation_table() const;

  /// kPermutation: the inverse table, x = inverse[y] — the dense replay
  /// path. Always materialised alongside the forward table.
  std::span<const std::uint32_t> permutation_inverse_table() const;

  /// kDiagonal: the dense factor array.
  std::span<const cplx> diagonal_factors() const;

  /// kFiberDense: the conditioned register, the pooled row-major matrices
  /// and the per-fiber pool index (StateVector::kFiberIdentity = identity).
  RegisterId fiber_target() const;
  std::span<const cplx> fiber_matrix_pool() const;
  std::span<const std::uint32_t> fiber_matrix_of() const;

  /// kFiberDense: 0 when fiber_matrix_of() holds one entry per fiber;
  /// otherwise the verified period p — the matrix of fiber f is
  /// fiber_matrix_of()[f % p] and fiber_matrix_of().size() == p.
  std::size_t fiber_period() const;

  /// kValueShift: the full replay geometry of Eq. (1)/(2).
  struct ValueShiftView {
    bool has_flag = false;
    std::size_t target_dim = 0, target_stride = 0;
    std::size_t cond_dim = 0, cond_stride = 0;
    std::size_t flag_stride = 0;
    std::span<const std::size_t> shifts;
  };
  ValueShiftView value_shift_view() const;

 private:
  CompiledOp(Kind kind, std::size_t dim) : kind_(kind), dim_(dim) {}

  /// Shared body of value_shift / controlled_value_shift, so each public
  /// entry point notifies the compile observer exactly once, on the
  /// fully-constructed op.
  static CompiledOp make_value_shift(
      const RegisterLayout& layout, RegisterId r, RegisterId cond,
      std::span<const std::size_t> shift_per_cond_value);

  Kind kind_;
  std::size_t dim_;

  // kPermutation: forward table y = table_[x] plus its inverse
  // x = inv_table_[y] (the dense gather-replay path).
  std::vector<std::uint32_t> table_;
  std::vector<std::uint32_t> inv_table_;

  // kDiagonal.
  std::vector<cplx> factors_;

  // kFiberDense: row-major d×d matrices back to back + per-fiber index
  // (StateVector::kFiberIdentity = untouched fiber).
  RegisterId target_{};
  std::vector<cplx> matrix_pool_;
  std::vector<std::uint32_t> mat_of_fiber_;
  std::size_t fiber_period_ = 0;  // 0 = mat_of_fiber_ is the full table

  // kValueShift: registers for replay plus their (dim, stride) geometry so
  // lowering/fusion do not need the original layout.
  RegisterId shift_r_{}, shift_cond_{}, shift_flag_{};
  bool has_flag_ = false;
  std::size_t target_dim_ = 0, target_stride_ = 0;
  std::size_t cond_dim_ = 0, cond_stride_ = 0;
  std::size_t flag_stride_ = 0;
  std::vector<std::size_t> shifts_;
};

/// Observer for the compiled-operator pipeline, the hook the translation-
/// validation engine (src/analysis/tv) hangs off. Each lowering entry point
/// notifies the installed observer with the finished op AND the reference
/// spec it was compiled from, while that spec is still alive — the only
/// moment both sides of the lowering exist, so equivalence can be proved
/// per compile instead of sampled later. Re-lowering and fusion notify with
/// the constituent ops. Callbacks run on the compiling thread and must not
/// re-enter the compiler.
class CompileObserver {
 public:
  CompileObserver() = default;
  CompileObserver(const CompileObserver&) = delete;
  CompileObserver& operator=(const CompileObserver&) = delete;
  virtual ~CompileObserver() = default;

  virtual void on_permutation(
      const CompiledOp& /*op*/,
      const std::function<std::size_t(std::size_t)>& /*map*/) {}
  virtual void on_diagonal(const CompiledOp& /*op*/,
                           const std::function<cplx(std::size_t)>& /*phase*/) {
  }
  virtual void on_fiber_dense(
      const CompiledOp& /*op*/, const RegisterLayout& /*layout*/,
      RegisterId /*target*/,
      const std::function<const Matrix*(std::size_t)>& /*selector*/) {}
  virtual void on_value_shift(
      const CompiledOp& /*op*/,
      std::span<const std::size_t> /*shift_per_cond_value*/) {}
  virtual void on_lowered(const CompiledOp& /*source*/,
                          const CompiledOp& /*permutation*/) {}
  virtual void on_fused(const CompiledOp& /*first*/,
                        const CompiledOp& /*second*/,
                        const CompiledOp& /*result*/) {}
};

/// Install `observer` for the calling thread (nullptr to uninstall);
/// returns the previously installed observer so scopes can nest. The hook
/// is thread-local: a parallel test runner's threads never observe each
/// other's compilations, and the replay kernels pay nothing when no
/// observer is armed.
CompileObserver* set_compile_observer(CompileObserver* observer);

/// An ordered sequence of compiled ops with a peephole fusion pass.
class CompiledProgram {
 public:
  void push(CompiledOp op) { ops_.push_back(std::move(op)); }

  /// Merge adjacent fusable ops until a fixed point; returns the number of
  /// merges performed (telemetry: qsim.compiled.fuse counts each).
  std::size_t fuse();

  /// Apply all ops in order.
  void apply_to(StateVector& state) const;

  std::size_t size() const noexcept { return ops_.size(); }
  const std::vector<CompiledOp>& ops() const noexcept { return ops_; }

 private:
  std::vector<CompiledOp> ops_;
};

}  // namespace qs
