// Controlled execution of arbitrary circuit fragments.
//
// Canonical (phase-estimation based) quantum counting needs controlled-Q^k:
// the Grover iterate applied only on the branch where a control qubit is
// |1⟩. Rather than duplicating every kernel, ControlledScope implements the
// textbook identity
//
//   C-U |0⟩|φ⟩ = |0⟩|φ⟩,   C-U |1⟩|φ⟩ = |1⟩ (U|φ⟩)
//
// by splitting the amplitude array into the control=value slice and the
// rest: the slice is copied into a standalone StateVector (over the layout
// minus nothing — same layout, other slices zeroed), the fragment runs on
// it, and the result is stitched back. Cost: one extra buffer and two
// passes per scope — irrelevant next to the fragment itself.
//
// The fragment MUST be block-diagonal with respect to the control register
// (i.e. never touch it); this is asserted by checking that the
// complementary slices are untouched (they are never handed to the
// fragment at all, so the property holds by construction).
#pragma once

#include <functional>

#include "common/rng.hpp"
#include "qsim/state_vector.hpp"

namespace qs {

/// Apply `fragment` to `state` controlled on register `control` holding
/// `value`: amplitudes with control != value are left untouched; the
/// control=value slice evolves under the fragment as if it were the whole
/// state. The fragment receives a StateVector on the SAME layout whose
/// other-control-value amplitudes are zero, and must not write to them
/// (applying any unitary that does not touch `control` satisfies this).
void apply_controlled(StateVector& state, RegisterId control,
                      std::size_t value,
                      const std::function<void(StateVector&)>& fragment);

/// Generalisation: the fragment acts on the subspace where
/// `predicate(control digit)` holds (e.g. "bit k of the phase register is
/// set" for phase estimation). Same block-diagonality contract.
void apply_controlled_if(
    StateVector& state, RegisterId control,
    const std::function<bool(std::size_t digit)>& predicate,
    const std::function<void(StateVector&)>& fragment);

/// Project register `r` onto `value` and renormalise; returns the
/// probability of that outcome (the caller decides the outcome by sampling
/// beforehand). Throws if the outcome has zero probability.
double project_register(StateVector& state, RegisterId r, std::size_t value);

/// Sample an outcome for register `r` from its marginal, project onto it
/// and renormalise. Returns the observed value. This is the simulator-side
/// realisation of a mid-circuit measurement.
std::size_t measure_and_collapse(StateVector& state, RegisterId r, Rng& rng);

}  // namespace qs
