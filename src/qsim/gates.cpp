#include "qsim/gates.hpp"

#include <cmath>
#include <numbers>

#include "common/require.hpp"

namespace qs {

Matrix qft_matrix(std::size_t d) {
  QS_REQUIRE(d >= 1, "QFT dimension must be positive");
  Matrix f(d, d);
  const double inv_root = 1.0 / std::sqrt(static_cast<double>(d));
  const double unit = 2.0 * std::numbers::pi / static_cast<double>(d);
  for (std::size_t j = 0; j < d; ++j) {
    for (std::size_t k = 0; k < d; ++k) {
      // Reduce jk mod d before the trig call to keep the angle small.
      const double angle = unit * static_cast<double>((j * k) % d);
      f(j, k) = inv_root * cplx(std::cos(angle), std::sin(angle));
    }
  }
  return f;
}

Matrix shift_matrix(std::size_t d, std::size_t amount) {
  QS_REQUIRE(d >= 1, "shift dimension must be positive");
  Matrix m(d, d);
  for (std::size_t s = 0; s < d; ++s) m((s + amount) % d, s) = 1.0;
  return m;
}

Matrix rotation_matrix(double angle) {
  Matrix m(2, 2);
  m(0, 0) = std::cos(angle);
  m(0, 1) = -std::sin(angle);
  m(1, 0) = std::sin(angle);
  m(1, 1) = std::cos(angle);
  return m;
}

Matrix phase_matrix(std::size_t d, std::size_t value, double phi) {
  QS_REQUIRE(value < d, "phase target out of range");
  Matrix m = Matrix::identity(d);
  m(value, value) = cplx(std::cos(phi), std::sin(phi));
  return m;
}

std::vector<cplx> uniform_prep_householder_vector(std::size_t d) {
  QS_REQUIRE(d >= 1, "dimension must be positive");
  // v ∝ |0⟩ - |π⟩ normalised; then (I - 2vv†)|0⟩ = |π⟩.
  const double u = 1.0 / std::sqrt(static_cast<double>(d));
  std::vector<cplx> v(d, cplx{-u, 0.0});
  v[0] += 1.0;
  double norm_sq = 0.0;
  for (const auto& x : v) norm_sq += std::norm(x);
  if (norm_sq == 0.0) {
    // d == 1: |0⟩ is already |π⟩; the zero vector makes the reflection
    // the identity, which is what we want.
    return v;
  }
  const double inv = 1.0 / std::sqrt(norm_sq);
  for (auto& x : v) x *= inv;
  return v;
}

Matrix householder_matrix(const std::vector<cplx>& v) {
  const std::size_t d = v.size();
  Matrix m = Matrix::identity(d);
  for (std::size_t i = 0; i < d; ++i)
    for (std::size_t j = 0; j < d; ++j)
      m(i, j) -= 2.0 * v[i] * std::conj(v[j]);
  return m;
}

Matrix random_unitary(std::size_t d, Rng& rng) {
  // Fill with iid complex Gaussians, then modified Gram–Schmidt. The
  // resulting distribution is Haar up to column phases, which is enough for
  // all our uses (randomised unitarity/property tests).
  Matrix a(d, d);
  for (std::size_t i = 0; i < d; ++i)
    for (std::size_t j = 0; j < d; ++j)
      a(i, j) = cplx(rng.normal(), rng.normal());

  for (std::size_t c = 0; c < d; ++c) {
    for (std::size_t prev = 0; prev < c; ++prev) {
      cplx ip{0.0, 0.0};
      for (std::size_t r = 0; r < d; ++r)
        ip += std::conj(a(r, prev)) * a(r, c);
      for (std::size_t r = 0; r < d; ++r) a(r, c) -= ip * a(r, prev);
    }
    double nrm = 0.0;
    for (std::size_t r = 0; r < d; ++r) nrm += std::norm(a(r, c));
    QS_ASSERT(nrm > 0.0, "Gram-Schmidt hit a linearly dependent column");
    const double inv = 1.0 / std::sqrt(nrm);
    for (std::size_t r = 0; r < d; ++r) a(r, c) *= inv;
  }
  return a;
}

std::vector<cplx> random_state(std::size_t d, Rng& rng) {
  std::vector<cplx> v(d);
  double nrm = 0.0;
  for (auto& x : v) {
    x = cplx(rng.normal(), rng.normal());
    nrm += std::norm(x);
  }
  const double inv = 1.0 / std::sqrt(nrm);
  for (auto& x : v) x *= inv;
  return v;
}

}  // namespace qs
