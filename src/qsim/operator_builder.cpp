#include "qsim/operator_builder.hpp"

#include "common/require.hpp"
#include "telemetry/trace.hpp"

namespace qs {

Matrix operator_of_circuit(
    const RegisterLayout& layout,
    const std::function<void(StateVector&)>& circuit) {
  static auto& t_calls = telemetry::counter("qsim.operator_of_circuit");
  static auto& t_ns = telemetry::histogram("qsim.operator_of_circuit.ns");
  telemetry::Span t_span("operator_of_circuit", &t_ns);
  const std::size_t dim = layout.total_dim();
  t_span.tag("dim", static_cast<std::int64_t>(dim));
  t_calls.add();
  QS_REQUIRE(dim <= (1u << 16),
             "operator extraction is meant for small layouts");
  Matrix m(dim, dim);
  for (std::size_t j = 0; j < dim; ++j) {
    StateVector state(layout, j);
    circuit(state);
    const auto amps = state.amplitudes();
    for (std::size_t i = 0; i < dim; ++i) m(i, j) = amps[i];
  }
  return m;
}

}  // namespace qs
