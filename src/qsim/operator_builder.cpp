#include "qsim/operator_builder.hpp"

#include "common/require.hpp"

namespace qs {

Matrix operator_of_circuit(
    const RegisterLayout& layout,
    const std::function<void(StateVector&)>& circuit) {
  const std::size_t dim = layout.total_dim();
  QS_REQUIRE(dim <= (1u << 16),
             "operator extraction is meant for small layouts");
  Matrix m(dim, dim);
  for (std::size_t j = 0; j < dim; ++j) {
    StateVector state(layout, j);
    circuit(state);
    const auto amps = state.amplitudes();
    for (std::size_t i = 0; i < dim; ++i) m(i, j) = amps[i];
  }
  return m;
}

}  // namespace qs
