// Dense mixed-radix statevector.
//
// A StateVector owns one complex amplitude per basis state of its
// RegisterLayout. All circuit operations used by the paper's algorithms are
// expressed through a small set of kernels:
//
//   * apply_unitary           — dense d×d unitary on one register;
//   * apply_conditioned_unitary — a d×d unitary on a target register whose
//       matrix depends on the value of the rest of the state (used for the
//       count-controlled rotation 𝒰 of Eq. (6));
//   * apply_permutation       — basis-state relabelling (the counting
//       oracles O_j of Eq. (1) are value shifts of the counter register);
//   * apply_diagonal          — phase oracles (S_χ, S_0 of Theorem 4.3);
//   * apply_householder       — the rank-1-update reflection used as the
//       state-preparation operator F with F|0⟩ = |π⟩.
//
// Kernels touching every amplitude are OpenMP-parallel when the library is
// built with OpenMP (DQS_HAVE_OPENMP).
#pragma once

#include <complex>
#include <functional>
#include <span>
#include <vector>

#include "qsim/linalg.hpp"
#include "qsim/register_layout.hpp"

namespace qs {

class StateVector {
 public:
  /// Trivial one-amplitude state over the empty layout (placeholder for
  /// result structs that are filled in later).
  StateVector() : StateVector(RegisterLayout{}) {}

  /// Initialise to the computational basis state |basis_index⟩.
  explicit StateVector(RegisterLayout layout, std::size_t basis_index = 0);

  const RegisterLayout& layout() const noexcept { return layout_; }
  std::size_t dim() const noexcept { return amplitudes_.size(); }

  cplx amplitude(std::size_t flat_index) const;
  std::span<const cplx> amplitudes() const noexcept { return amplitudes_; }
  std::span<cplx> mutable_amplitudes() noexcept { return amplitudes_; }

  /// Reset to |basis_index⟩.
  void reset(std::size_t basis_index = 0);

  /// Set raw amplitudes (size must match); does not renormalise.
  void set_amplitudes(std::vector<cplx> amplitudes);

  double norm() const;
  /// Rescale to unit norm; requires norm() > 0.
  void normalize();

  // --- Kernels -------------------------------------------------------------

  /// Apply a dense dim(r) x dim(r) unitary matrix to register r.
  void apply_unitary(RegisterId r, const Matrix& u);

  /// Apply to register `target` a matrix chosen per basis state by
  /// `selector`, which receives the flat index with target digit zeroed and
  /// must return a pointer to a dim(target)^2 row-major matrix. The selector
  /// must not depend on the target digit (it is called once per fiber).
  void apply_conditioned_unitary(
      RegisterId target,
      const std::function<const Matrix*(std::size_t fiber_base)>& selector);

  /// Relabel basis states: new|map(x)⟩ = old|x⟩. `map` must be a bijection
  /// on [0, dim). Costs one auxiliary buffer.
  void apply_permutation(const std::function<std::size_t(std::size_t)>& map);

  /// Cyclic shift of register r's value conditioned on another register:
  /// |c⟩_cond |s⟩_r → |c⟩_cond |(s + shift(c)) mod dim(r)⟩_r.
  /// This is exactly the oracle shape of Eq. (1). In-place, no buffer.
  void apply_value_shift(RegisterId r, RegisterId cond,
                         std::span<const std::size_t> shift_per_cond_value);

  /// As above but additionally controlled on `flag` being 1 (Ô_j form,
  /// Section 5). flag must be a dimension-2 register.
  void apply_controlled_value_shift(
      RegisterId r, RegisterId cond, RegisterId flag,
      std::span<const std::size_t> shift_per_cond_value);

  /// Multiply amplitude of each basis state x by phase(x).
  void apply_diagonal(const std::function<cplx(std::size_t)>& phase);

  /// Multiply the single basis state |flat_index⟩ by a phase factor.
  void apply_phase_on_basis_state(std::size_t flat_index, cplx phase);

  /// Multiply all basis states whose register r digit equals `value` by
  /// `phase` (the S_χ shape).
  void apply_phase_on_register_value(RegisterId r, std::size_t value,
                                     cplx phase);

  /// Apply I - 2|v⟩⟨v| on register r, where v is a dim(r) vector.
  /// O(dim) total work regardless of dim(r).
  void apply_householder(RegisterId r, std::span<const cplx> v);

  /// Multiply the whole state by a global phase factor.
  void apply_global_phase(cplx phase);

  // --- Observables ---------------------------------------------------------

  /// ⟨this|other⟩.
  cplx inner_product(const StateVector& other) const;

  /// || |this⟩ - |other⟩ ||^2 — the quantity inside the paper's potential
  /// function D_t (Eq. 11).
  double distance_squared(const StateVector& other) const;

  /// Marginal probability distribution of register r.
  std::vector<double> marginal(RegisterId r) const;

  /// Probability that register r holds `value`.
  double probability_of(RegisterId r, std::size_t value) const;

 private:
  RegisterLayout layout_;
  std::vector<cplx> amplitudes_;
};

/// |⟨a|b⟩|² for pure states on identically-shaped layouts.
double pure_fidelity(const StateVector& a, const StateVector& b);

}  // namespace qs
