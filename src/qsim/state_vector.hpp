// Mixed-radix statevector over a per-workload storage backend.
//
// A StateVector owns the amplitudes of its RegisterLayout's basis states.
// All circuit operations used by the paper's algorithms are expressed
// through a small set of kernels:
//
//   * apply_unitary           — dense d×d unitary on one register;
//   * apply_conditioned_unitary — a d×d unitary on a target register whose
//       matrix depends on the value of the rest of the state (used for the
//       count-controlled rotation 𝒰 of Eq. (6));
//   * apply_permutation       — basis-state relabelling (the counting
//       oracles O_j of Eq. (1) are value shifts of the counter register);
//   * apply_diagonal          — phase oracles (S_χ, S_0 of Theorem 4.3);
//   * apply_householder       — the rank-1-update reflection used as the
//       state-preparation operator F with F|0⟩ = |π⟩.
//
// STORAGE BACKENDS (state_backend.hpp). By default amplitudes live in a
// flat dense array; a StateBackendConfig selects the sparse sorted-pairs
// backend instead, whose kernels cost O(nnz) and push N past the dense
// few-million-amplitude ceiling. The backend is a private representation
// choice: every kernel and observable dispatches internally, so
// SingleStateBackend, ParallelFullCircuit, the fault seam and the serving
// layer's Prepared snapshot run through either backend unchanged. Only the
// dense-only raw accessors (amplitudes(), mutable_amplitudes(),
// set_amplitudes()) refuse a sparse state, with a typed SparseStateError.
//
// Kernels touching every amplitude are OpenMP-parallel when the library is
// built with OpenMP (DQS_HAVE_OPENMP), and their per-amplitude inner loops
// are cache-blocked (parallel_for_blocks) and SIMD-annotated
// (DQS_PRAGMA_SIMD) with open-coded complex products (linalg.hpp cmul) —
// bit-compatible with the std::complex arithmetic they replace for finite
// operands (docs/PERF.md).
//
// The std::function-taking kernels are the NAIVE reference paths: correct,
// but paying a virtual dispatch per amplitude (or per fiber). Hot call
// sites lower an operator once per (operator, layout) into a CompiledOp
// (compiled_op.hpp), which replays through the flat-table twins declared
// alongside them (apply_permutation_table, apply_diagonal_factors,
// apply_fiber_dense). tests/test_kernel_equivalence.cpp pins the two paths
// together; docs/PERF.md documents the contract.
#pragma once

#include <complex>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "qsim/linalg.hpp"
#include "qsim/register_layout.hpp"
#include "qsim/state_backend.hpp"

namespace qs {

class StateVector {
 public:
  /// Trivial one-amplitude state over the empty layout (placeholder for
  /// result structs that are filled in later).
  StateVector() : StateVector(RegisterLayout{}) {}

  /// Initialise to the computational basis state |basis_index⟩ on the
  /// default dense backend.
  explicit StateVector(RegisterLayout layout, std::size_t basis_index = 0);

  /// Initialise |basis_index⟩ on the backend `config` selects.
  StateVector(RegisterLayout layout, const StateBackendConfig& config,
              std::size_t basis_index = 0);

  // Deep-copying value semantics across both backends (the sparse
  // representation lives behind a unique_ptr).
  StateVector(const StateVector& other);
  StateVector& operator=(const StateVector& other);
  StateVector(StateVector&&) noexcept = default;
  StateVector& operator=(StateVector&&) noexcept = default;
  ~StateVector() = default;

  const RegisterLayout& layout() const noexcept { return layout_; }
  std::size_t dim() const noexcept { return layout_.total_dim(); }

  // --- Backend -------------------------------------------------------------

  bool is_sparse() const noexcept { return sparse_ != nullptr; }
  StateBackendKind backend_kind() const noexcept {
    return sparse_ ? StateBackendKind::kSparse : StateBackendKind::kDense;
  }
  /// Amplitudes actually stored: dim() on the dense backend, the nonzero
  /// count on the sparse one (the qsim.backend.*.amplitudes gauge).
  std::size_t stored_amplitudes() const noexcept;
  /// Sparse only: high-water mark of stored_amplitudes().
  std::size_t sparse_peak_amplitudes() const;
  /// Sparse only: the configured amplitude budget (0 = unlimited).
  std::size_t sparse_amplitude_budget() const;

  /// Convert sparse → dense in place (no-op when already dense). Counts
  /// qsim.backend.densify.
  void densify();
  /// Convert dense → sparse in place, dropping exact zeros (no-op when
  /// already sparse). Raises SparseStateError if the nonzero support
  /// exceeds `amplitude_budget` (0 = unlimited). Counts
  /// qsim.backend.sparsify.
  void sparsify(std::size_t amplitude_budget = 0);

  cplx amplitude(std::size_t flat_index) const;
  /// Dense backend only (typed SparseStateError otherwise) — the raw
  /// amplitude array. Sparse states expose sparse_indices()/values().
  std::span<const cplx> amplitudes() const;
  std::span<cplx> mutable_amplitudes();
  /// Sparse backend only: the sorted nonzero support and its amplitudes.
  std::span<const std::uint64_t> sparse_indices() const;
  std::span<const cplx> sparse_values() const;

  /// Reset to |basis_index⟩.
  void reset(std::size_t basis_index = 0);

  /// Set raw amplitudes (size must match); does not renormalise. Dense
  /// backend only.
  void set_amplitudes(std::vector<cplx> amplitudes);

  /// Set the support directly from (index, value) pairs; does not
  /// renormalise. Sparse backend only (typed SparseStateError otherwise) —
  /// the big-N twin of set_amplitudes(), used by target_full_state() to
  /// avoid an O(dim) dense detour. Indices must be unique and < dim().
  void set_sparse_amplitudes(std::vector<std::uint64_t> indices,
                             std::vector<cplx> values);

  double norm() const;
  /// Rescale to unit norm; requires norm() > 0.
  void normalize();

  // --- Kernels -------------------------------------------------------------

  /// Apply a dense dim(r) x dim(r) unitary matrix to register r.
  void apply_unitary(RegisterId r, const Matrix& u);

  /// Apply to register `target` a matrix chosen per basis state by
  /// `selector`, which receives the flat index with target digit zeroed and
  /// must return a pointer to a dim(target)^2 row-major matrix. The selector
  /// must not depend on the target digit (it is called once per fiber).
  /// Naive reference path; hot call sites lower once through CompiledOp
  /// (compiled_op.hpp) instead of paying this dispatch per fiber. Dense
  /// backend only (the compiled twin runs on both).
  void apply_conditioned_unitary(
      RegisterId target,
      // dqs-lint: allow(no-std-function-in-kernels) retained naive reference
      const std::function<const Matrix*(std::size_t fiber_base)>& selector);

  /// As apply_conditioned_unitary, but the per-fiber matrix comes from a
  /// compiled table: `matrix_pool` holds row-major dim(target)² matrices
  /// back to back, and the matrix for fiber f is
  /// mat_of_fiber[f % fiber_period] (kFiberIdentity = leave the fiber
  /// untouched). fiber_period == 0 means one entry per fiber
  /// (mat_of_fiber.size() must equal the fiber count); a nonzero period
  /// must equal mat_of_fiber.size() and is the caller's certified claim
  /// that the full table is periodic (CompiledOp::fiber_dense verifies it
  /// at compile time). d = 2 and d = 4 run fully unrolled.
  void apply_fiber_dense(RegisterId target, std::span<const cplx> matrix_pool,
                         std::span<const std::uint32_t> mat_of_fiber,
                         std::size_t fiber_period = 0);

  /// Relabel basis states: new|map(x)⟩ = old|x⟩. `map` must be a bijection
  /// on [0, dim). Costs one auxiliary buffer (a persistent member scratch,
  /// reused across calls). Naive reference path — per-amplitude dispatch;
  /// hot call sites lower once through CompiledOp::permutation instead.
  /// Dense backend only (the compiled twin runs on both).
  // dqs-lint: allow(no-std-function-in-kernels) retained naive reference
  void apply_permutation(const std::function<std::size_t(std::size_t)>& map);

  /// Relabel basis states through a precompiled forward table:
  /// new|table[x]⟩ = old|x⟩. `table` must be a bijection on [0, dim) — the
  /// caller (CompiledOp::permutation) certifies that once at compile time,
  /// so this kernel is a bare gather/scatter into the member scratch.
  void apply_permutation_table(std::span<const std::uint32_t> table);

  /// The same relabelling given the INVERSE table: new|x⟩ = old|inv[x]⟩.
  /// The dense replay path CompiledOp prefers: destination writes are
  /// sequential (SIMD-friendly gather) instead of scattered. Exact — pure
  /// data movement, 0 ULP against apply_permutation_table with the
  /// matching forward table.
  void apply_permutation_inverse_table(std::span<const std::uint32_t> inverse);

  /// Cyclic shift of register r's value conditioned on another register:
  /// |c⟩_cond |s⟩_r → |c⟩_cond |(s + shift(c)) mod dim(r)⟩_r.
  /// This is exactly the oracle shape of Eq. (1). In-place, no buffer.
  void apply_value_shift(RegisterId r, RegisterId cond,
                         std::span<const std::size_t> shift_per_cond_value);

  /// As above but additionally controlled on `flag` being 1 (Ô_j form,
  /// Section 5). flag must be a dimension-2 register.
  void apply_controlled_value_shift(
      RegisterId r, RegisterId cond, RegisterId flag,
      std::span<const std::size_t> shift_per_cond_value);

  /// Multiply amplitude of each basis state x by phase(x). Naive reference
  /// path; hot call sites lower once through CompiledOp::diagonal. Dense
  /// backend only (the compiled twin runs on both).
  // dqs-lint: allow(no-std-function-in-kernels) retained naive reference
  void apply_diagonal(const std::function<cplx(std::size_t)>& phase);

  /// Multiply amplitude of each basis state x by factors[x] (a precompiled
  /// diagonal; size must equal dim()).
  void apply_diagonal_factors(std::span<const cplx> factors);

  /// Multiply the single basis state |flat_index⟩ by a phase factor.
  void apply_phase_on_basis_state(std::size_t flat_index, cplx phase);

  /// Multiply all basis states whose register r digit equals `value` by
  /// `phase` (the S_χ shape).
  void apply_phase_on_register_value(RegisterId r, std::size_t value,
                                     cplx phase);

  /// Apply I - 2|v⟩⟨v| on register r, where v is a dim(r) vector.
  /// O(dim) total work regardless of dim(r) (O(nnz + touched·dim(r)) on
  /// the sparse backend).
  void apply_householder(RegisterId r, std::span<const cplx> v);

  /// Multiply the whole state by a global phase factor.
  void apply_global_phase(cplx phase);

  // --- Observables ---------------------------------------------------------

  /// ⟨this|other⟩. Works across backend combinations.
  cplx inner_product(const StateVector& other) const;

  /// || |this⟩ - |other⟩ ||^2 — the quantity inside the paper's potential
  /// function D_t (Eq. 11). Works across backend combinations.
  double distance_squared(const StateVector& other) const;

  /// Marginal probability distribution of register r.
  std::vector<double> marginal(RegisterId r) const;

  /// Probability that register r holds `value`.
  double probability_of(RegisterId r, std::size_t value) const;

  /// Sentinel in apply_fiber_dense's mat_of_fiber: identity on this fiber.
  static constexpr std::uint32_t kFiberIdentity = 0xFFFFFFFFu;

 private:
  RegisterLayout layout_;
  std::vector<cplx> amplitudes_;
  // Ping-pong buffer for the permutation kernels: filled with the permuted
  // amplitudes, then swapped in. A member so hot loops (one permutation per
  // oracle query) do not allocate O(dim) per call.
  std::vector<cplx> scratch_;
  // Non-null exactly when this state lives on the sparse backend; the
  // dense vectors above are then empty.
  std::unique_ptr<SparseAmplitudes> sparse_;
};

/// |⟨a|b⟩|² for pure states on identically-shaped layouts.
double pure_fidelity(const StateVector& a, const StateVector& b);

}  // namespace qs
