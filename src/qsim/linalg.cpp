#include "qsim/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/require.hpp"

namespace qs {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, cplx{0.0, 0.0}) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::from_rows(std::size_t rows, std::size_t cols,
                         std::vector<cplx> data) {
  QS_REQUIRE(data.size() == rows * cols, "from_rows: data size mismatch");
  Matrix m(rows, cols);
  m.data_ = std::move(data);
  return m;
}

cplx& Matrix::operator()(std::size_t r, std::size_t c) {
  QS_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

const cplx& Matrix::operator()(std::size_t r, std::size_t c) const {
  QS_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

Matrix Matrix::adjoint() const {
  Matrix m(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      m(c, r) = std::conj((*this)(r, c));
  return m;
}

Matrix Matrix::transpose() const {
  Matrix m(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) m(c, r) = (*this)(r, c);
  return m;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  QS_REQUIRE(a.cols_ == b.rows_, "matrix product shape mismatch");
  Matrix out(a.rows_, b.cols_);
  for (std::size_t i = 0; i < a.rows_; ++i) {
    for (std::size_t k = 0; k < a.cols_; ++k) {
      const cplx aik = a(i, k);
      if (aik == cplx{0.0, 0.0}) continue;
      for (std::size_t j = 0; j < b.cols_; ++j) out(i, j) += aik * b(k, j);
    }
  }
  return out;
}

Matrix operator+(const Matrix& a, const Matrix& b) {
  QS_REQUIRE(a.rows_ == b.rows_ && a.cols_ == b.cols_, "shape mismatch");
  Matrix out = a;
  for (std::size_t i = 0; i < out.data_.size(); ++i) out.data_[i] += b.data_[i];
  return out;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  QS_REQUIRE(a.rows_ == b.rows_ && a.cols_ == b.cols_, "shape mismatch");
  Matrix out = a;
  for (std::size_t i = 0; i < out.data_.size(); ++i) out.data_[i] -= b.data_[i];
  return out;
}

Matrix& Matrix::operator*=(cplx scalar) {
  for (auto& x : data_) x *= scalar;
  return *this;
}

std::vector<cplx> Matrix::apply(const std::vector<cplx>& v) const {
  QS_REQUIRE(v.size() == cols_, "matrix-vector shape mismatch");
  std::vector<cplx> out(rows_, cplx{0.0, 0.0});
  for (std::size_t r = 0; r < rows_; ++r) {
    cplx acc{0.0, 0.0};
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (const auto& x : data_) s += std::norm(x);
  return std::sqrt(s);
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  QS_REQUIRE(a.rows_ == b.rows_ && a.cols_ == b.cols_, "shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i)
    m = std::max(m, std::abs(a.data_[i] - b.data_[i]));
  return m;
}

double Matrix::unitarity_defect() const {
  QS_REQUIRE(rows_ == cols_, "unitarity defect needs a square matrix");
  return ((*this) * adjoint() - identity(rows_)).frobenius_norm();
}

double Matrix::hermiticity_defect() const {
  QS_REQUIRE(rows_ == cols_, "hermiticity defect needs a square matrix");
  return 0.5 * ((*this) - adjoint()).frobenius_norm();
}

cplx Matrix::trace() const {
  QS_REQUIRE(rows_ == cols_, "trace needs a square matrix");
  cplx t{0.0, 0.0};
  for (std::size_t i = 0; i < rows_; ++i) t += (*this)(i, i);
  return t;
}

std::vector<double> hermitian_eigen(const Matrix& a, Matrix* vectors,
                                    double tol, std::size_t max_sweeps) {
  QS_REQUIRE(a.rows() == a.cols(), "eigensolver needs a square matrix");
  QS_REQUIRE(a.hermiticity_defect() < 1e-9,
             "eigensolver input must be Hermitian");
  const std::size_t n = a.rows();
  Matrix h = a;
  Matrix v = Matrix::identity(n);

  // Cyclic complex Jacobi: annihilate h(p,q) with a unitary 2x2 rotation.
  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) off += std::norm(h(p, q));
    if (std::sqrt(off) < tol) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const cplx hpq = h(p, q);
        if (std::abs(hpq) < tol * 1e-3) continue;
        const double app = h(p, p).real();
        const double aqq = h(q, q).real();
        // Diagonalise [[app, hpq], [conj(hpq), aqq]].
        const double phase = std::arg(hpq);
        const double habs = std::abs(hpq);
        const double theta = 0.5 * std::atan2(2.0 * habs, app - aqq);
        const double c = std::cos(theta);
        const cplx s = std::sin(theta) * std::exp(cplx(0.0, phase));
        // Columns p,q of h and v are updated as R acting on the right;
        // rows p,q of h as R† on the left.
        for (std::size_t i = 0; i < n; ++i) {
          const cplx hip = h(i, p), hiq = h(i, q);
          h(i, p) = c * hip + std::conj(s) * hiq;
          h(i, q) = -s * hip + c * hiq;
          const cplx vip = v(i, p), viq = v(i, q);
          v(i, p) = c * vip + std::conj(s) * viq;
          v(i, q) = -s * vip + c * viq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const cplx hpi = h(p, i), hqi = h(q, i);
          h(p, i) = c * hpi + s * hqi;
          h(q, i) = -std::conj(s) * hpi + c * hqi;
        }
      }
    }
  }

  std::vector<double> eigenvalues(n);
  for (std::size_t i = 0; i < n; ++i) eigenvalues[i] = h(i, i).real();

  // Sort ascending, permuting eigenvector columns alongside.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return eigenvalues[x] < eigenvalues[y];
  });
  std::vector<double> sorted(n);
  Matrix vs(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    sorted[j] = eigenvalues[order[j]];
    for (std::size_t i = 0; i < n; ++i) vs(i, j) = v(i, order[j]);
  }
  if (vectors != nullptr) *vectors = std::move(vs);
  return sorted;
}

Matrix psd_sqrt(const Matrix& a) {
  Matrix v;
  const auto eigenvalues = hermitian_eigen(a, &v);
  const std::size_t n = a.rows();
  Matrix result(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    const double lambda = std::max(eigenvalues[k], 0.0);
    const double root = std::sqrt(lambda);
    for (std::size_t i = 0; i < n; ++i) {
      const cplx vik = v(i, k);
      if (vik == cplx{0.0, 0.0}) continue;
      for (std::size_t j = 0; j < n; ++j)
        result(i, j) += root * vik * std::conj(v(j, k));
    }
  }
  return result;
}

double fidelity(const Matrix& rho, const Matrix& sigma) {
  QS_REQUIRE(rho.rows() == sigma.rows() && rho.cols() == sigma.cols(),
             "fidelity: shape mismatch");
  const Matrix root = psd_sqrt(rho);
  const Matrix inner = root * sigma * root;
  const auto eigenvalues = hermitian_eigen(inner);
  double tr = 0.0;
  for (double lambda : eigenvalues) tr += std::sqrt(std::max(lambda, 0.0));
  return tr * tr;
}

Matrix kron(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows() * b.rows(), a.cols() * b.cols());
  for (std::size_t ar = 0; ar < a.rows(); ++ar)
    for (std::size_t ac = 0; ac < a.cols(); ++ac) {
      const cplx f = a(ar, ac);
      if (f == cplx{0.0, 0.0}) continue;
      for (std::size_t br = 0; br < b.rows(); ++br)
        for (std::size_t bc = 0; bc < b.cols(); ++bc)
          out(ar * b.rows() + br, ac * b.cols() + bc) = f * b(br, bc);
    }
  return out;
}

}  // namespace qs
