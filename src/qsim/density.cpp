#include "qsim/density.hpp"

#include "common/require.hpp"

namespace qs {

Matrix partial_trace(const StateVector& state,
                     const std::vector<RegisterId>& kept) {
  const auto& layout = state.layout();
  QS_REQUIRE(!kept.empty(), "must keep at least one register");

  // Dimension and mixed-radix strides of the kept subsystem.
  std::size_t kept_dim = 1;
  for (const auto r : kept) kept_dim *= layout.dim(r);

  // For each flat index, its kept-subsystem index is the mixed-radix number
  // formed by the kept registers' digits (first register most significant).
  const auto kept_index = [&](std::size_t flat) {
    std::size_t idx = 0;
    for (const auto r : kept) idx = idx * layout.dim(r) + layout.digit(flat, r);
    return idx;
  };

  // Group amplitudes by the traced-out environment index: two flat indices
  // contribute to rho(i, j) when they share every non-kept digit. We bucket
  // by environment, accumulating the outer product row by row.
  //
  // env_index(flat) strips the kept digits: mixed-radix number over the
  // other registers.
  std::vector<bool> is_kept(layout.num_registers(), false);
  for (const auto r : kept) {
    QS_REQUIRE(!is_kept[r.value], "duplicate register in kept list");
    is_kept[r.value] = true;
  }
  const auto env_index = [&](std::size_t flat) {
    std::size_t idx = 0;
    for (std::size_t r = 0; r < layout.num_registers(); ++r) {
      if (is_kept[r]) continue;
      idx = idx * layout.dim(RegisterId{r}) + layout.digit(flat, RegisterId{r});
    }
    return idx;
  };

  const std::size_t env_dim = layout.total_dim() / kept_dim;
  // Collect per-environment vectors over the kept subsystem, then
  // rho = Σ_env |v_env⟩⟨v_env|.
  std::vector<std::vector<cplx>> env_vectors(env_dim,
                                             std::vector<cplx>(kept_dim));
  const auto amps = state.amplitudes();
  for (std::size_t flat = 0; flat < amps.size(); ++flat) {
    env_vectors[env_index(flat)][kept_index(flat)] = amps[flat];
  }

  Matrix rho(kept_dim, kept_dim);
  for (const auto& v : env_vectors) {
    for (std::size_t i = 0; i < kept_dim; ++i) {
      if (v[i] == cplx{0.0, 0.0}) continue;
      for (std::size_t j = 0; j < kept_dim; ++j)
        rho(i, j) += v[i] * std::conj(v[j]);
    }
  }
  return rho;
}

double fidelity_with_pure(const Matrix& rho, const std::vector<cplx>& psi) {
  QS_REQUIRE(rho.rows() == psi.size() && rho.cols() == psi.size(),
             "fidelity_with_pure: dimension mismatch");
  cplx acc{0.0, 0.0};
  for (std::size_t i = 0; i < psi.size(); ++i) {
    for (std::size_t j = 0; j < psi.size(); ++j)
      acc += std::conj(psi[i]) * rho(i, j) * psi[j];
  }
  return acc.real();
}

}  // namespace qs
