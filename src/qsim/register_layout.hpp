// Mixed-radix quantum register layout.
//
// The paper's coordinator state lives on registers of unequal dimensions: an
// N-dimensional element register, a (ν+1)-dimensional counter register, a
// qubit flag, and (in the parallel model's full circuit, Lemma 4.4) n-fold
// ancilla blocks. RegisterLayout maps a tuple of named qudits of arbitrary
// dimensions onto a flat row-major amplitude array:
//
//   flat_index = Σ_r digit(r) * stride(r)
//
// with the FIRST register added being the most significant. All simulator
// kernels address amplitudes through this class, so a circuit written for
// the sequential model runs unchanged on a layout with extra ancillas.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace qs {

/// Opaque handle for a register inside a layout (index into the layout).
struct RegisterId {
  std::size_t value = 0;
  friend bool operator==(RegisterId, RegisterId) = default;
};

class RegisterLayout {
 public:
  RegisterLayout() = default;

  /// Append a register of dimension `dim` (>= 1). Returns its handle.
  /// Registers added earlier are more significant in the flat index.
  RegisterId add(std::string name, std::size_t dim);

  std::size_t num_registers() const noexcept { return dims_.size(); }

  /// Product of all register dimensions; 1 for an empty layout.
  std::size_t total_dim() const noexcept { return total_dim_; }

  std::size_t dim(RegisterId r) const;
  std::size_t stride(RegisterId r) const;
  const std::string& name(RegisterId r) const;

  /// Find a register by name; throws if absent.
  RegisterId find(const std::string& name) const;

  /// Extract register r's digit from a flat index.
  std::size_t digit(std::size_t flat_index, RegisterId r) const;

  /// Compose a flat index from one digit per register (ordered by addition).
  std::size_t index_of(std::span<const std::size_t> digits) const;

  /// Replace register r's digit inside a flat index.
  std::size_t with_digit(std::size_t flat_index, RegisterId r,
                         std::size_t new_digit) const;

  /// Two layouts are compatible when dims match position-by-position
  /// (names are documentation only).
  bool same_shape(const RegisterLayout& other) const noexcept;

 private:
  void check(RegisterId r) const;

  std::vector<std::string> names_;
  std::vector<std::size_t> dims_;
  std::vector<std::size_t> strides_;
  std::size_t total_dim_ = 1;
};

}  // namespace qs
