#include "qsim/density_evolution.hpp"

#include "common/require.hpp"

namespace qs {

DensityState::DensityState(RegisterLayout layout, std::size_t basis_index)
    : layout_(std::move(layout)),
      rho_(layout_.total_dim(), layout_.total_dim()) {
  QS_REQUIRE(basis_index < layout_.total_dim(), "basis state out of range");
  QS_REQUIRE(layout_.total_dim() <= 4096,
             "density evolution is meant for small validation instances");
  rho_(basis_index, basis_index) = 1.0;
}

DensityState::DensityState(const StateVector& pure)
    : layout_(pure.layout()), rho_(pure.dim(), pure.dim()) {
  QS_REQUIRE(pure.dim() <= 4096,
             "density evolution is meant for small validation instances");
  const auto amps = pure.amplitudes();
  for (std::size_t i = 0; i < amps.size(); ++i) {
    if (amps[i] == cplx{0.0, 0.0}) continue;
    for (std::size_t j = 0; j < amps.size(); ++j)
      rho_(i, j) = amps[i] * std::conj(amps[j]);
  }
}

void DensityState::apply_unitary_fragment(
    const std::function<void(StateVector&)>& fragment) {
  const std::size_t dim = rho_.rows();
  const auto apply_to_columns = [&](Matrix& m) {
    StateVector column(layout_);
    for (std::size_t c = 0; c < dim; ++c) {
      std::vector<cplx> amps(dim);
      for (std::size_t r = 0; r < dim; ++r) amps[r] = m(r, c);
      column.set_amplitudes(std::move(amps));
      fragment(column);
      const auto out = column.amplitudes();
      for (std::size_t r = 0; r < dim; ++r) m(r, c) = out[r];
    }
  };
  // ρ ← U ρ, then ρ ← (U (U ρ)†)† = U ρ U†.
  apply_to_columns(rho_);
  Matrix adj = rho_.adjoint();
  apply_to_columns(adj);
  rho_ = adj.adjoint();
}

void DensityState::apply_dephasing(RegisterId r, double p) {
  QS_REQUIRE(p >= 0.0 && p <= 1.0, "channel strength must be in [0, 1]");
  const std::size_t dim = rho_.rows();
  for (std::size_t x = 0; x < dim; ++x) {
    const std::size_t jx = layout_.digit(x, r);
    for (std::size_t y = 0; y < dim; ++y) {
      if (layout_.digit(y, r) != jx) rho_(x, y) *= (1.0 - p);
    }
  }
}

void DensityState::apply_depolarizing(RegisterId r, double p) {
  QS_REQUIRE(p >= 0.0 && p <= 1.0, "channel strength must be in [0, 1]");
  const std::size_t dim = rho_.rows();
  const std::size_t d = layout_.dim(r);
  Matrix out = rho_;
  out *= cplx(1.0 - p, 0.0);
  // p · (I_r/d ⊗ Tr_r ρ): entry (x, y) gets (p/d)·δ_{j_x j_y}·Σ_k ρ_{x_k y_k}
  // where x_k replaces register r's digit with k.
  for (std::size_t x = 0; x < dim; ++x) {
    const std::size_t jx = layout_.digit(x, r);
    for (std::size_t y = 0; y < dim; ++y) {
      if (layout_.digit(y, r) != jx) continue;
      cplx sum{0.0, 0.0};
      for (std::size_t k = 0; k < d; ++k) {
        sum += rho_(layout_.with_digit(x, r, k),
                    layout_.with_digit(y, r, k));
      }
      out(x, y) += cplx(p / static_cast<double>(d), 0.0) * sum;
    }
  }
  rho_ = std::move(out);
}

double DensityState::trace() const { return rho_.trace().real(); }

double DensityState::fidelity_with(const StateVector& pure) const {
  QS_REQUIRE(pure.layout().same_shape(layout_),
             "fidelity needs identically shaped layouts");
  const auto psi = pure.amplitudes();
  cplx acc{0.0, 0.0};
  for (std::size_t i = 0; i < psi.size(); ++i) {
    if (psi[i] == cplx{0.0, 0.0}) continue;
    for (std::size_t j = 0; j < psi.size(); ++j)
      acc += std::conj(psi[i]) * rho_(i, j) * psi[j];
  }
  return acc.real();
}

}  // namespace qs
