#include "qsim/noise.hpp"

#include <cmath>
#include <numbers>

#include "common/require.hpp"

namespace qs {

void apply_weyl(StateVector& state, RegisterId r, std::size_t a,
                std::size_t b) {
  const auto& layout = state.layout();
  const std::size_t d = layout.dim(r);
  QS_REQUIRE(a < d && b < d, "Weyl exponents must be < register dimension");
  // Z^b first (diagonal), then X^a (cyclic shift); X^a Z^b |j⟩ =
  // ω^{jb} |j+a⟩.
  if (b != 0) {
    const double unit = 2.0 * std::numbers::pi / static_cast<double>(d);
    const std::size_t stride = layout.stride(r);
    state.apply_diagonal([&](std::size_t x) {
      const std::size_t j = (x / stride) % d;
      const double angle = unit * static_cast<double>((j * b) % d);
      return cplx(std::cos(angle), std::sin(angle));
    });
  }
  if (a != 0) {
    // Unconditioned shift: shift amount independent of any other register.
    // Reuse the conditioned-shift kernel with a constant table keyed on the
    // register itself is not allowed (target == cond), so use another
    // register if one exists, else a plain permutation.
    state.apply_permutation([&](std::size_t x) {
      const std::size_t j = layout.digit(x, r);
      return layout.with_digit(x, r, (j + a) % d);
    });
  }
}

void apply_dephasing_trajectory(StateVector& state, RegisterId r, double p,
                                Rng& rng) {
  QS_REQUIRE(p >= 0.0 && p <= 1.0, "channel strength must be in [0, 1]");
  if (p == 0.0 || !rng.bernoulli(p)) return;
  const std::size_t d = state.layout().dim(r);
  const auto b = static_cast<std::size_t>(rng.uniform_below(d));
  apply_weyl(state, r, 0, b);
}

void apply_depolarizing_trajectory(StateVector& state, RegisterId r, double p,
                                   Rng& rng) {
  QS_REQUIRE(p >= 0.0 && p <= 1.0, "channel strength must be in [0, 1]");
  if (p == 0.0 || !rng.bernoulli(p)) return;
  const std::size_t d = state.layout().dim(r);
  const auto a = static_cast<std::size_t>(rng.uniform_below(d));
  const auto b = static_cast<std::size_t>(rng.uniform_below(d));
  apply_weyl(state, r, a, b);
}

Matrix dephasing_exact(const Matrix& rho, double p) {
  QS_REQUIRE(rho.rows() == rho.cols(), "density matrix must be square");
  const std::size_t d = rho.rows();
  Matrix out = rho;
  // (1/d) Σ_b Z^b ρ Z^{−b} zeroes all off-diagonals.
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      if (i != j) out(i, j) *= (1.0 - p);
    }
  }
  return out;
}

Matrix depolarizing_exact(const Matrix& rho, double p) {
  QS_REQUIRE(rho.rows() == rho.cols(), "density matrix must be square");
  const std::size_t d = rho.rows();
  Matrix out = rho;
  out *= cplx(1.0 - p, 0.0);
  const cplx mixed = rho.trace() * cplx(p / static_cast<double>(d), 0.0);
  for (std::size_t i = 0; i < d; ++i) out(i, i) += mixed;
  return out;
}

}  // namespace qs
