// Standard gate matrices and state-preparation helpers.
//
// The paper's algorithms need only a handful of concrete unitaries: the
// Fourier-style preparation F with F|0⟩ = |π⟩ (uniform superposition), the
// count-conditioned rotation 𝒰 (Eq. 6), modular-addition shifts (Eq. 1),
// and phase oracles. This header provides them as dense matrices (for the
// operator-level tests) plus the Householder realisation of F that the
// runtime uses (O(d) per application instead of O(d²)).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "qsim/linalg.hpp"

namespace qs {

/// d-dimensional discrete Fourier transform: F[j][k] = ω^{jk}/√d.
/// Satisfies F|0⟩ = uniform superposition.
Matrix qft_matrix(std::size_t d);

/// Cyclic shift by `amount`: |s⟩ → |s + amount mod d⟩.
Matrix shift_matrix(std::size_t d, std::size_t amount);

/// Real rotation on a qubit: [[cos, -sin], [sin, cos]].
Matrix rotation_matrix(double angle);

/// Diagonal phase on one basis value: identity except [value][value]=e^{iφ}.
Matrix phase_matrix(std::size_t d, std::size_t value, double phi);

/// The normalised Householder vector v such that (I - 2vv†)|0⟩ = |π⟩, the
/// d-dimensional uniform superposition. Used as the preparation operator F;
/// the reflection is real, Hermitian and self-inverse (F = F†).
std::vector<cplx> uniform_prep_householder_vector(std::size_t d);

/// Dense matrix of the Householder reflection I - 2vv†.
Matrix householder_matrix(const std::vector<cplx>& v);

/// Haar-distributed random unitary (Gaussian matrix + Gram–Schmidt).
Matrix random_unitary(std::size_t d, Rng& rng);

/// Random normalised pure state on d dimensions.
std::vector<cplx> random_state(std::size_t d, Rng& rng);

}  // namespace qs
