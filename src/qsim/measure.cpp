#include "qsim/measure.hpp"

#include <cmath>

#include "common/require.hpp"

namespace qs {

std::size_t measure_basis_state(const StateVector& state, Rng& rng) {
  const double u = rng.uniform01();
  double acc = 0.0;
  if (state.is_sparse()) {
    // Same inverse-CDF walk over the nonzero support only: indices are
    // sorted, so the visit order (and hence the draw for a given u) matches
    // the dense scan exactly whenever the stored probabilities do.
    const auto indices = state.sparse_indices();
    const auto values = state.sparse_values();
    for (std::size_t k = 0; k < indices.size(); ++k) {
      acc += std::norm(values[k]);
      if (u < acc) return static_cast<std::size_t>(indices[k]);
    }
    for (std::size_t k = indices.size(); k-- > 0;) {
      if (std::norm(values[k]) > 0.0)
        return static_cast<std::size_t>(indices[k]);
    }
    QS_REQUIRE(false, "cannot measure the zero state");
    return 0;
  }
  const auto amps = state.amplitudes();
  for (std::size_t i = 0; i < amps.size(); ++i) {
    acc += std::norm(amps[i]);
    if (u < acc) return i;
  }
  // Floating point slack: return the last state with positive probability.
  for (std::size_t i = amps.size(); i-- > 0;) {
    if (std::norm(amps[i]) > 0.0) return i;
  }
  QS_REQUIRE(false, "cannot measure the zero state");
  return 0;
}

std::size_t measure_register(const StateVector& state, RegisterId r,
                             Rng& rng) {
  const auto probs = state.marginal(r);
  const double u = rng.uniform01();
  double acc = 0.0;
  for (std::size_t v = 0; v < probs.size(); ++v) {
    acc += probs[v];
    if (u < acc) return v;
  }
  for (std::size_t v = probs.size(); v-- > 0;) {
    if (probs[v] > 0.0) return v;
  }
  QS_REQUIRE(false, "cannot measure the zero state");
  return 0;
}

std::vector<std::uint64_t> histogram_register(const StateVector& state,
                                              RegisterId r, Rng& rng,
                                              std::size_t shots) {
  // One marginal computation, then `shots` inverse-CDF draws.
  const auto probs = state.marginal(r);
  std::vector<double> cdf(probs.size());
  double acc = 0.0;
  for (std::size_t v = 0; v < probs.size(); ++v) {
    acc += probs[v];
    cdf[v] = acc;
  }
  std::vector<std::uint64_t> hist(probs.size(), 0);
  for (std::size_t s = 0; s < shots; ++s) {
    const double u = rng.uniform01() * acc;
    std::size_t lo = 0, hi = cdf.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf[mid] <= u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    ++hist[lo];
  }
  return hist;
}

double total_variation(const std::vector<double>& p,
                       const std::vector<double>& q) {
  QS_REQUIRE(p.size() == q.size(), "total variation: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) s += std::abs(p[i] - q[i]);
  return 0.5 * s;
}

std::vector<double> normalize_histogram(const std::vector<std::uint64_t>& h) {
  std::uint64_t total = 0;
  for (auto c : h) total += c;
  QS_REQUIRE(total > 0, "cannot normalise an empty histogram");
  std::vector<double> p(h.size());
  for (std::size_t i = 0; i < h.size(); ++i)
    p[i] = static_cast<double>(h[i]) / static_cast<double>(total);
  return p;
}

}  // namespace qs
