#include "qsim/register_layout.hpp"

#include <limits>

#include "common/require.hpp"

namespace qs {

RegisterId RegisterLayout::add(std::string name, std::size_t dim) {
  QS_REQUIRE(dim >= 1, "register dimension must be >= 1");
  QS_REQUIRE(total_dim_ <= std::numeric_limits<std::size_t>::max() / dim,
             "layout dimension overflow");
  names_.push_back(std::move(name));
  dims_.push_back(dim);
  // Earlier registers become more significant: multiply their strides up.
  for (auto& s : strides_) s *= dim;
  strides_.push_back(1);
  total_dim_ *= dim;
  return RegisterId{dims_.size() - 1};
}

void RegisterLayout::check(RegisterId r) const {
  QS_REQUIRE(r.value < dims_.size(), "register id out of range");
}

std::size_t RegisterLayout::dim(RegisterId r) const {
  check(r);
  return dims_[r.value];
}

std::size_t RegisterLayout::stride(RegisterId r) const {
  check(r);
  return strides_[r.value];
}

const std::string& RegisterLayout::name(RegisterId r) const {
  check(r);
  return names_[r.value];
}

RegisterId RegisterLayout::find(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return RegisterId{i};
  }
  QS_REQUIRE(false, "no register named '" + name + "'");
  return {};  // unreachable
}

std::size_t RegisterLayout::digit(std::size_t flat_index, RegisterId r) const {
  check(r);
  return (flat_index / strides_[r.value]) % dims_[r.value];
}

std::size_t RegisterLayout::index_of(std::span<const std::size_t> digits) const {
  QS_REQUIRE(digits.size() == dims_.size(),
             "index_of needs one digit per register");
  std::size_t idx = 0;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    QS_REQUIRE(digits[i] < dims_[i], "digit out of range for register");
    idx += digits[i] * strides_[i];
  }
  return idx;
}

std::size_t RegisterLayout::with_digit(std::size_t flat_index, RegisterId r,
                                       std::size_t new_digit) const {
  check(r);
  QS_REQUIRE(new_digit < dims_[r.value], "digit out of range for register");
  const std::size_t old = digit(flat_index, r);
  return flat_index + (new_digit - old) * strides_[r.value];
}

bool RegisterLayout::same_shape(const RegisterLayout& other) const noexcept {
  return dims_ == other.dims_;
}

}  // namespace qs
