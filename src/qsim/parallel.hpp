// OpenMP-backed loop helpers for the statevector kernels.
//
// The kernels are embarrassingly parallel over independent "fibers" of the
// amplitude array, which maps directly onto an OpenMP worksharing loop (the
// canonical pattern from the OpenMP examples guide). When the library is
// built without OpenMP the helpers degrade to plain sequential loops, so no
// call site needs #ifdefs.
//
// Reductions (norms, inner products, marginals) go through
// parallel_reduce_blocks: the index range is cut into FIXED-size blocks
// (independent of the thread count), per-block partials are summed
// sequentially inside each block, and the partials are combined with a
// fixed-shape pairwise tree. The arithmetic — every operand pairing, in
// order — is a function of n alone, so results are bit-identical run to
// run, across OMP_NUM_THREADS values, and between the OpenMP and serial
// builds. That determinism contract (docs/PERF.md) is what lets the test
// suite and the quickstart demo diff outputs across build flavours.
//
// ThreadSanitizer builds take a separate code path. GCC's libgomp is not
// TSan-instrumented: the fork/join barriers of a worksharing region are
// futex-based and invisible to TSan, which then reports false races between
// worker-thread loop bodies and unrelated code that later reuses the same
// stack or heap addresses. Under TSan the helpers therefore (a) publish the
// loop descriptor through an atomic global with release/acquire semantics
// instead of the compiler-generated shared-argument block (so workers never
// read the caller's stack without a TSan-visible edge), and (b) annotate
// the join with __tsan_release/__tsan_acquire. Real races inside the loop
// bodies remain fully visible to TSan; only the fork/join edges libgomp
// already guarantees are restored. The slot protocol admits ONE in-flight
// worksharing region at a time; when a second coordinator (e.g. a
// src/serving worker drawing from a shared prepared state while another
// worker runs a preparation) would need a region concurrently, the TSan
// path runs its loop serially in the calling thread instead. That is
// always correct — parallel_reduce_blocks' fixed block partition and
// combine tree make the serial and parallel paths bit-identical — so the
// fallback trades only speed, never results (docs/SERVING.md).
#pragma once

#include <algorithm>
#include <complex>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#if defined(__SANITIZE_THREAD__)
#define DQS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DQS_TSAN 1
#endif
#endif

#if defined(DQS_HAVE_OPENMP) && defined(DQS_TSAN)
#include <atomic>
#endif

// SIMD annotation for the per-amplitude inner loops of the statevector
// kernels. It lives HERE because dqs_lint's omp-confinement rule allows
// OpenMP constructs only in this file: kernels write DQS_PRAGMA_SIMD and
// the vectorization story (like the scheduling story) stays in one place.
// Without OpenMP the macro degrades to the compiler's native no-dependence
// hint, and to nothing on unknown compilers — annotated loops must therefore
// be CORRECT without the pragma; it is an optimization assertion only.
//
// Contract: never annotate a loop that accumulates across iterations. The
// deterministic-reduction guarantee below depends on a fixed association
// order, which `omp simd` would reassociate. dqs_lint's simd-discipline
// rule makes per-amplitude block loops in the kernel files carry either
// this macro or an explicit allow(simd-discipline) naming the reduction.
#if defined(DQS_HAVE_OPENMP)
#define DQS_PRAGMA_SIMD _Pragma("omp simd")
#elif defined(__clang__)
#define DQS_PRAGMA_SIMD _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(__GNUC__)
#define DQS_PRAGMA_SIMD _Pragma("GCC ivdep")
#else
#define DQS_PRAGMA_SIMD
#endif

namespace qs {

#if defined(DQS_HAVE_OPENMP) && defined(DQS_TSAN)
namespace detail {

extern "C" void __tsan_acquire(void* addr);
extern "C" void __tsan_release(void* addr);

/// Slot through which the coordinator publishes the descriptor of the
/// in-flight worksharing region. Non-null exactly while a region runs.
inline std::atomic<void*>& omp_region_slot() {
  static std::atomic<void*> slot{nullptr};
  return slot;
}

/// Join-edge tag: every thread releases it at the end of its chunk and the
/// coordinator acquires it after the region, so TSan sees the barrier
/// libgomp implements invisibly.
inline int& omp_region_exit_tag() {
  static int tag = 0;
  return tag;
}

/// Try to publish `desc` for the region about to start. Returns false when
/// a region is already in flight (a concurrent coordinator or a nested
/// launch); the caller must then run its loop serially — the slot protocol
/// supports exactly one worksharing region at a time.
[[nodiscard]] inline bool try_publish_region(void* desc) {
  void* expected = nullptr;
  return omp_region_slot().compare_exchange_strong(
      expected, desc, std::memory_order_release);
}

template <class Desc>
Desc* acquire_region() {
  return static_cast<Desc*>(
      omp_region_slot().load(std::memory_order_acquire));
}

inline void end_region_worker() { __tsan_release(&omp_region_exit_tag()); }

inline void join_region() {
  omp_region_slot().store(nullptr, std::memory_order_relaxed);
  __tsan_acquire(&omp_region_exit_tag());
}

}  // namespace detail
#endif  // DQS_HAVE_OPENMP && DQS_TSAN

/// Run fn(i) for i in [0, n), in parallel when OpenMP is available.
template <class F>
void parallel_for(std::size_t n, F&& fn) {
#if !defined(DQS_HAVE_OPENMP)
  for (std::size_t i = 0; i < n; ++i) fn(i);
#elif !defined(DQS_TSAN)
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    fn(static_cast<std::size_t>(i));
  }
#else
  struct Desc {
    std::size_t n;
    F* fn;
  };
  Desc desc{n, std::addressof(fn)};
  if (!detail::try_publish_region(&desc)) {
    // A concurrent coordinator holds the slot: run serially (bit-identical
    // by the deterministic-reduction contract above).
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
#pragma omp parallel default(none)
  {
    auto* d = detail::acquire_region<Desc>();
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(d->n); ++i) {
      (*d->fn)(static_cast<std::size_t>(i));
    }
    detail::end_region_worker();
  }
  detail::join_region();
#endif
}

/// Run fn(i, scratch) for i in [0, n) with a per-thread scratch buffer of
/// `scratch_size` complex values (so gather/scatter kernels do not allocate
/// inside the loop).
template <class F>
void parallel_for_with_scratch(std::size_t n, std::size_t scratch_size,
                               F&& fn) {
#if !defined(DQS_HAVE_OPENMP)
  std::vector<std::complex<double>> buffer(scratch_size);
  const std::span<std::complex<double>> scratch(buffer);
  for (std::size_t i = 0; i < n; ++i) fn(i, scratch);
#elif !defined(DQS_TSAN)
#pragma omp parallel
  {
    std::vector<std::complex<double>> buffer(scratch_size);
    const std::span<std::complex<double>> scratch(buffer);
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
      fn(static_cast<std::size_t>(i), scratch);
    }
  }
#else
  struct Desc {
    std::size_t n;
    std::size_t scratch_size;
    F* fn;
  };
  Desc desc{n, scratch_size, std::addressof(fn)};
  if (!detail::try_publish_region(&desc)) {
    std::vector<std::complex<double>> buffer(scratch_size);
    const std::span<std::complex<double>> scratch(buffer);
    for (std::size_t i = 0; i < n; ++i) fn(i, scratch);
    return;
  }
#pragma omp parallel default(none)
  {
    auto* d = detail::acquire_region<Desc>();
    {
      std::vector<std::complex<double>> buffer(d->scratch_size);
      const std::span<std::complex<double>> scratch(buffer);
#pragma omp for schedule(static)
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(d->n); ++i) {
        (*d->fn)(static_cast<std::size_t>(i), scratch);
      }
    }
    detail::end_region_worker();
  }
  detail::join_region();
#endif
}

/// Tile width for the cache-blocked streaming kernels. 4096 complex
/// amplitudes = 64 KiB — one tile of source data plus one of destination
/// fits in L2 with room for a permutation-table tile (16 KiB of uint32), so
/// a gather whose reads jump within the tile window still hits cache. Fixed
/// (never derived from the thread count) for the same reason as
/// kReduceBlockSize below.
inline constexpr std::size_t kKernelBlockSize = 4096;

/// Run fn(begin, end) over [0, n) cut into kKernelBlockSize-wide tiles,
/// tiles distributed through parallel_for. This is the shape the SIMD
/// kernels need: parallel_for hands out single indices, which leaves no
/// inner loop to annotate; this helper hands out countable ranges that
/// DQS_PRAGMA_SIMD can vectorize while the tile bound keeps the working
/// set cache-resident.
template <class F>
void parallel_for_blocks(std::size_t n, F&& fn) {
  const std::size_t num_blocks =
      (n + kKernelBlockSize - 1) / kKernelBlockSize;
  if (num_blocks <= 1) {
    if (n != 0) fn(std::size_t{0}, n);
    return;
  }
  parallel_for(num_blocks, [&](std::size_t b) {
    const std::size_t begin = b * kKernelBlockSize;
    fn(begin, std::min(n, begin + kKernelBlockSize));
  });
}

/// Block size for deterministic reductions. Fixed — never derived from the
/// thread count — so the reduction's arithmetic shape depends only on the
/// problem size. 4096 amplitudes ≈ 64 KiB of cplx per block: large enough
/// to amortise the parallel_for dispatch, small enough that every bench
/// grid still fans out over all cores.
inline constexpr std::size_t kReduceBlockSize = 4096;

/// Deterministic parallel reduction over [0, n).
///
/// `block(begin, end)` must return the sequential left-fold of the caller's
/// term over [begin, end); blocks are kReduceBlockSize wide and run in
/// parallel. `combine(into, from)` folds two partials. The partials are then
/// merged with a fixed-shape pairwise halving tree: width w folds element
/// i+ceil(w/2) into element i. Both the block partition and the tree shape
/// depend only on n, so the result is bit-identical regardless of thread
/// count or whether OpenMP is compiled in at all.
template <class T, class BlockFn, class CombineFn>
T parallel_reduce_blocks(std::size_t n, T identity, BlockFn&& block,
                         CombineFn&& combine) {
  if (n == 0) return identity;
  const std::size_t num_blocks = (n + kReduceBlockSize - 1) / kReduceBlockSize;
  if (num_blocks == 1) return block(std::size_t{0}, n);
  std::vector<T> partials(num_blocks, identity);
  parallel_for(num_blocks, [&](std::size_t b) {
    const std::size_t begin = b * kReduceBlockSize;
    const std::size_t end = std::min(n, begin + kReduceBlockSize);
    partials[b] = block(begin, end);
  });
  // Pairwise halving: O(num_blocks) work on a handful of partials; running
  // it sequentially keeps the combine order trivially fixed.
  for (std::size_t width = num_blocks; width > 1;) {
    const std::size_t half = (width + 1) / 2;
    for (std::size_t i = 0; i + half < width; ++i)
      combine(partials[i], partials[i + half]);
    width = half;
  }
  return partials[0];
}

/// parallel_reduce_blocks for types where `+=` is the combine.
template <class T, class BlockFn>
T parallel_sum_blocks(std::size_t n, T identity, BlockFn&& block) {
  return parallel_reduce_blocks(
      n, identity, std::forward<BlockFn>(block),
      [](T& into, const T& from) { into += from; });
}

}  // namespace qs
