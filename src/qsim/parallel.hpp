// OpenMP-backed loop helpers for the statevector kernels.
//
// The kernels are embarrassingly parallel over independent "fibers" of the
// amplitude array, which maps directly onto an OpenMP worksharing loop (the
// canonical pattern from the OpenMP examples guide). When the library is
// built without OpenMP the helpers degrade to plain sequential loops, so no
// call site needs #ifdefs.
//
// Reductions (norms, inner products) are deliberately kept sequential:
// deterministic, run-to-run identical floating-point results matter more to
// the test suite and the reproducibility story than the last 2x of speed on
// what is already O(dim) work.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

namespace qs {

/// Run fn(i) for i in [0, n), in parallel when OpenMP is available.
template <class F>
void parallel_for(std::size_t n, F&& fn) {
#if defined(DQS_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    fn(static_cast<std::size_t>(i));
  }
#else
  for (std::size_t i = 0; i < n; ++i) fn(i);
#endif
}

/// Run fn(i, scratch) for i in [0, n) with a per-thread scratch buffer of
/// `scratch_size` complex values (so gather/scatter kernels do not allocate
/// inside the loop).
template <class F>
void parallel_for_with_scratch(std::size_t n, std::size_t scratch_size,
                               F&& fn) {
#if defined(DQS_HAVE_OPENMP)
#pragma omp parallel
  {
    std::vector<std::complex<double>> buffer(scratch_size);
    const std::span<std::complex<double>> scratch(buffer);
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
      fn(static_cast<std::size_t>(i), scratch);
    }
  }
#else
  std::vector<std::complex<double>> buffer(scratch_size);
  const std::span<std::complex<double>> scratch(buffer);
  for (std::size_t i = 0; i < n; ++i) fn(i, scratch);
#endif
}

}  // namespace qs
