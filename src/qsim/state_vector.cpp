#include "qsim/state_vector.hpp"

#include <cmath>
#include <limits>

#include "common/require.hpp"
#include "qsim/parallel.hpp"
#include "telemetry/trace.hpp"

namespace qs {

namespace {

// A register of dimension d and stride s partitions [0, dim) into dim/d
// fibers of d amplitudes spaced s apart. Fiber f has base index
// (f / s) * d * s + (f % s); the fiber's elements are base + j*s.
struct FiberSpec {
  std::size_t d;         // register dimension
  std::size_t s;         // register stride
  std::size_t count;     // number of fibers = dim / d

  std::size_t base(std::size_t fiber) const noexcept {
    return (fiber / s) * d * s + (fiber % s);
  }
};

FiberSpec fiber_spec(const RegisterLayout& layout, RegisterId r) {
  FiberSpec spec{};
  spec.d = layout.dim(r);
  spec.s = layout.stride(r);
  spec.count = layout.total_dim() / spec.d;
  return spec;
}

}  // namespace

StateVector::StateVector(RegisterLayout layout, std::size_t basis_index)
    : layout_(std::move(layout)),
      amplitudes_(layout_.total_dim(), cplx{0.0, 0.0}) {
  QS_REQUIRE(basis_index < amplitudes_.size(),
             "initial basis state out of range");
  amplitudes_[basis_index] = 1.0;
}

cplx StateVector::amplitude(std::size_t flat_index) const {
  QS_REQUIRE(flat_index < amplitudes_.size(), "amplitude index out of range");
  return amplitudes_[flat_index];
}

void StateVector::reset(std::size_t basis_index) {
  QS_REQUIRE(basis_index < amplitudes_.size(),
             "initial basis state out of range");
  std::fill(amplitudes_.begin(), amplitudes_.end(), cplx{0.0, 0.0});
  amplitudes_[basis_index] = 1.0;
}

void StateVector::set_amplitudes(std::vector<cplx> amplitudes) {
  QS_REQUIRE(amplitudes.size() == layout_.total_dim(),
             "amplitude vector size must match layout dimension");
  amplitudes_ = std::move(amplitudes);
}

double StateVector::norm() const {
  const cplx* amps = amplitudes_.data();
  const double s = parallel_sum_blocks(
      amplitudes_.size(), 0.0, [amps](std::size_t begin, std::size_t end) {
        double acc = 0.0;
        for (std::size_t i = begin; i < end; ++i) acc += std::norm(amps[i]);
        return acc;
      });
  return std::sqrt(s);
}

void StateVector::normalize() {
  const double n = norm();
  QS_REQUIRE(n > 0.0, "cannot normalise the zero vector");
  const double inv = 1.0 / n;
  parallel_for(amplitudes_.size(), [&](std::size_t i) {
    amplitudes_[i] *= inv;
  });
}

void StateVector::apply_unitary(RegisterId r, const Matrix& u) {
  static auto& t_calls = telemetry::counter("qsim.sv.apply_unitary");
  static auto& t_ns = telemetry::histogram("qsim.sv.apply_unitary.ns");
  telemetry::Span t_span("sv.apply_unitary", &t_ns);
  t_span.tag("dim", static_cast<std::int64_t>(amplitudes_.size()));
  t_calls.add();
  const auto spec = fiber_spec(layout_, r);
  QS_REQUIRE(u.rows() == spec.d && u.cols() == spec.d,
             "unitary dimension must match register dimension");
  parallel_for_with_scratch(
      spec.count, spec.d, [&](std::size_t f, std::span<cplx> scratch) {
        const std::size_t base = spec.base(f);
        for (std::size_t j = 0; j < spec.d; ++j)
          scratch[j] = amplitudes_[base + j * spec.s];
        for (std::size_t i = 0; i < spec.d; ++i) {
          cplx acc{0.0, 0.0};
          for (std::size_t j = 0; j < spec.d; ++j)
            acc += u(i, j) * scratch[j];
          amplitudes_[base + i * spec.s] = acc;
        }
      });
}

void StateVector::apply_conditioned_unitary(
    RegisterId target,
    // dqs-lint: allow(no-std-function-in-kernels) retained naive reference
    const std::function<const Matrix*(std::size_t fiber_base)>& selector) {
  static auto& t_calls = telemetry::counter("qsim.sv.apply_conditioned_unitary");
  static auto& t_ns = telemetry::histogram("qsim.sv.apply_conditioned_unitary.ns");
  telemetry::Span t_span("sv.apply_conditioned_unitary", &t_ns);
  t_span.tag("dim", static_cast<std::int64_t>(amplitudes_.size()));
  t_calls.add();
  const auto spec = fiber_spec(layout_, target);
  parallel_for_with_scratch(
      spec.count, spec.d, [&](std::size_t f, std::span<cplx> scratch) {
        const std::size_t base = spec.base(f);
        const Matrix* u = selector(base);
        if (u == nullptr) return;  // identity on this fiber
        QS_ASSERT(u->rows() == spec.d && u->cols() == spec.d,
                  "conditioned unitary dimension mismatch");
        for (std::size_t j = 0; j < spec.d; ++j)
          scratch[j] = amplitudes_[base + j * spec.s];
        for (std::size_t i = 0; i < spec.d; ++i) {
          cplx acc{0.0, 0.0};
          for (std::size_t j = 0; j < spec.d; ++j)
            acc += (*u)(i, j) * scratch[j];
          amplitudes_[base + i * spec.s] = acc;
        }
      });
}

void StateVector::apply_fiber_dense(
    RegisterId target, std::span<const cplx> matrix_pool,
    std::span<const std::uint32_t> mat_of_fiber) {
  static auto& t_calls = telemetry::counter("qsim.sv.apply_fiber_dense");
  static auto& t_ns = telemetry::histogram("qsim.sv.apply_fiber_dense.ns");
  telemetry::Span t_span("sv.apply_fiber_dense", &t_ns);
  t_span.tag("dim", static_cast<std::int64_t>(amplitudes_.size()));
  t_calls.add();
  const auto spec = fiber_spec(layout_, target);
  QS_REQUIRE(mat_of_fiber.size() == spec.count,
             "need one matrix index per fiber");
  QS_REQUIRE(matrix_pool.size() % (spec.d * spec.d) == 0,
             "matrix pool must hold whole d×d matrices");
  const std::size_t num_mats = matrix_pool.size() / (spec.d * spec.d);
  cplx* amps = amplitudes_.data();
  const cplx* pool = matrix_pool.data();
  const std::uint32_t* idx = mat_of_fiber.data();
  if (spec.d == 2) {
    const std::size_t s = spec.s;
    parallel_for(spec.count, [&](std::size_t f) {
      const std::uint32_t m = idx[f];
      if (m == kFiberIdentity) return;
      QS_ASSERT(m < num_mats, "fiber matrix index out of range");
      const cplx* u = pool + static_cast<std::size_t>(m) * 4;
      const std::size_t base = spec.base(f);
      const cplx a0 = amps[base];
      const cplx a1 = amps[base + s];
      // Same accumulation order as the naive kernel (j ascending), so the
      // unrolled path is bit-identical, not just close.
      amps[base] = u[0] * a0 + u[1] * a1;
      amps[base + s] = u[2] * a0 + u[3] * a1;
    });
    return;
  }
  if (spec.d == 4) {
    const std::size_t s = spec.s;
    parallel_for(spec.count, [&](std::size_t f) {
      const std::uint32_t m = idx[f];
      if (m == kFiberIdentity) return;
      QS_ASSERT(m < num_mats, "fiber matrix index out of range");
      const cplx* u = pool + static_cast<std::size_t>(m) * 16;
      const std::size_t base = spec.base(f);
      const cplx a0 = amps[base];
      const cplx a1 = amps[base + s];
      const cplx a2 = amps[base + 2 * s];
      const cplx a3 = amps[base + 3 * s];
      amps[base] = u[0] * a0 + u[1] * a1 + u[2] * a2 + u[3] * a3;
      amps[base + s] = u[4] * a0 + u[5] * a1 + u[6] * a2 + u[7] * a3;
      amps[base + 2 * s] = u[8] * a0 + u[9] * a1 + u[10] * a2 + u[11] * a3;
      amps[base + 3 * s] = u[12] * a0 + u[13] * a1 + u[14] * a2 + u[15] * a3;
    });
    return;
  }
  parallel_for_with_scratch(
      spec.count, spec.d, [&](std::size_t f, std::span<cplx> scratch) {
        const std::uint32_t m = idx[f];
        if (m == kFiberIdentity) return;
        QS_ASSERT(m < num_mats, "fiber matrix index out of range");
        const cplx* u = pool + static_cast<std::size_t>(m) * spec.d * spec.d;
        const std::size_t base = spec.base(f);
        for (std::size_t j = 0; j < spec.d; ++j)
          scratch[j] = amps[base + j * spec.s];
        for (std::size_t i = 0; i < spec.d; ++i) {
          cplx acc{0.0, 0.0};
          for (std::size_t j = 0; j < spec.d; ++j)
            acc += u[i * spec.d + j] * scratch[j];
          amps[base + i * spec.s] = acc;
        }
      });
}

void StateVector::apply_permutation(
    // dqs-lint: allow(no-std-function-in-kernels) retained naive reference
    const std::function<std::size_t(std::size_t)>& map) {
  static auto& t_calls = telemetry::counter("qsim.sv.apply_permutation");
  static auto& t_ns = telemetry::histogram("qsim.sv.apply_permutation.ns");
  telemetry::Span t_span("sv.apply_permutation", &t_ns);
  t_span.tag("dim", static_cast<std::int64_t>(amplitudes_.size()));
  t_calls.add();
  scratch_.resize(amplitudes_.size());
#ifndef NDEBUG
  // Debug builds prefill the scratch with NaN and scan it afterwards to
  // certify `map` really is a bijection. Release builds skip the O(dim)
  // prefill + serial scan on every query: callers wanting a certified map
  // lower it once through CompiledOp::permutation, whose compile-time check
  // runs exactly once per (operator, layout).
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::fill(scratch_.begin(), scratch_.end(), cplx{nan, nan});
#endif
  parallel_for(amplitudes_.size(), [&](std::size_t x) {
    const std::size_t y = map(x);
    QS_REQUIRE(y < scratch_.size(), "permutation image out of range");
    scratch_[y] = amplitudes_[x];
  });
#ifndef NDEBUG
  for (const auto& a : scratch_) {
    QS_ASSERT(!std::isnan(a.real()), "permutation map is not a bijection");
  }
#endif
  amplitudes_.swap(scratch_);
}

void StateVector::apply_permutation_table(
    std::span<const std::uint32_t> table) {
  static auto& t_calls = telemetry::counter("qsim.sv.apply_permutation_table");
  static auto& t_ns = telemetry::histogram("qsim.sv.apply_permutation_table.ns");
  telemetry::Span t_span("sv.apply_permutation_table", &t_ns);
  t_span.tag("dim", static_cast<std::int64_t>(amplitudes_.size()));
  t_calls.add();
  QS_REQUIRE(table.size() == amplitudes_.size(),
             "permutation table size must match state dimension");
  scratch_.resize(amplitudes_.size());
  const cplx* src = amplitudes_.data();
  cplx* dst = scratch_.data();
  const std::uint32_t* t = table.data();
  parallel_for(amplitudes_.size(), [&](std::size_t x) {
    dst[t[x]] = src[x];
  });
  amplitudes_.swap(scratch_);
}

void StateVector::apply_value_shift(
    RegisterId r, RegisterId cond,
    std::span<const std::size_t> shift_per_cond_value) {
  static auto& t_calls = telemetry::counter("qsim.sv.apply_value_shift");
  static auto& t_ns = telemetry::histogram("qsim.sv.apply_value_shift.ns");
  telemetry::Span t_span("sv.apply_value_shift", &t_ns);
  t_span.tag("dim", static_cast<std::int64_t>(amplitudes_.size()));
  t_calls.add();
  QS_REQUIRE(!(r == cond), "shift target and condition must differ");
  QS_REQUIRE(shift_per_cond_value.size() == layout_.dim(cond),
             "need one shift per condition value");
  const auto spec = fiber_spec(layout_, r);
  parallel_for_with_scratch(
      spec.count, spec.d, [&](std::size_t f, std::span<cplx> scratch) {
        const std::size_t base = spec.base(f);
        const std::size_t c = layout_.digit(base, cond);
        const std::size_t shift = shift_per_cond_value[c] % spec.d;
        if (shift == 0) return;
        for (std::size_t j = 0; j < spec.d; ++j)
          scratch[j] = amplitudes_[base + j * spec.s];
        for (std::size_t j = 0; j < spec.d; ++j) {
          const std::size_t jj = j + shift < spec.d ? j + shift
                                                    : j + shift - spec.d;
          amplitudes_[base + jj * spec.s] = scratch[j];
        }
      });
}

void StateVector::apply_controlled_value_shift(
    RegisterId r, RegisterId cond, RegisterId flag,
    std::span<const std::size_t> shift_per_cond_value) {
  static auto& t_calls = telemetry::counter("qsim.sv.apply_controlled_value_shift");
  static auto& t_ns = telemetry::histogram("qsim.sv.apply_controlled_value_shift.ns");
  telemetry::Span t_span("sv.apply_controlled_value_shift", &t_ns);
  t_span.tag("dim", static_cast<std::int64_t>(amplitudes_.size()));
  t_calls.add();
  QS_REQUIRE(!(r == cond) && !(r == flag) && !(cond == flag),
             "shift target, condition and flag must be distinct registers");
  QS_REQUIRE(layout_.dim(flag) == 2, "control flag must be a qubit");
  QS_REQUIRE(shift_per_cond_value.size() == layout_.dim(cond),
             "need one shift per condition value");
  const auto spec = fiber_spec(layout_, r);
  parallel_for_with_scratch(
      spec.count, spec.d, [&](std::size_t f, std::span<cplx> scratch) {
        const std::size_t base = spec.base(f);
        if (layout_.digit(base, flag) != 1) return;
        const std::size_t c = layout_.digit(base, cond);
        const std::size_t shift = shift_per_cond_value[c] % spec.d;
        if (shift == 0) return;
        for (std::size_t j = 0; j < spec.d; ++j)
          scratch[j] = amplitudes_[base + j * spec.s];
        for (std::size_t j = 0; j < spec.d; ++j) {
          const std::size_t jj = j + shift < spec.d ? j + shift
                                                    : j + shift - spec.d;
          amplitudes_[base + jj * spec.s] = scratch[j];
        }
      });
}

void StateVector::apply_diagonal(
    // dqs-lint: allow(no-std-function-in-kernels) retained naive reference
    const std::function<cplx(std::size_t)>& phase) {
  static auto& t_calls = telemetry::counter("qsim.sv.apply_diagonal");
  static auto& t_ns = telemetry::histogram("qsim.sv.apply_diagonal.ns");
  telemetry::Span t_span("sv.apply_diagonal", &t_ns);
  t_span.tag("dim", static_cast<std::int64_t>(amplitudes_.size()));
  t_calls.add();
  parallel_for(amplitudes_.size(), [&](std::size_t x) {
    amplitudes_[x] *= phase(x);
  });
}

void StateVector::apply_diagonal_factors(std::span<const cplx> factors) {
  static auto& t_calls = telemetry::counter("qsim.sv.apply_diagonal_factors");
  static auto& t_ns = telemetry::histogram("qsim.sv.apply_diagonal_factors.ns");
  telemetry::Span t_span("sv.apply_diagonal_factors", &t_ns);
  t_span.tag("dim", static_cast<std::int64_t>(amplitudes_.size()));
  t_calls.add();
  QS_REQUIRE(factors.size() == amplitudes_.size(),
             "diagonal factor array size must match state dimension");
  cplx* amps = amplitudes_.data();
  const cplx* f = factors.data();
  parallel_for(amplitudes_.size(), [&](std::size_t x) {
    amps[x] *= f[x];
  });
}

void StateVector::apply_phase_on_basis_state(std::size_t flat_index,
                                             cplx phase) {
  QS_REQUIRE(flat_index < amplitudes_.size(), "basis state out of range");
  amplitudes_[flat_index] *= phase;
}

void StateVector::apply_phase_on_register_value(RegisterId r,
                                                std::size_t value,
                                                cplx phase) {
  static auto& t_calls = telemetry::counter("qsim.sv.apply_phase_on_register_value");
  static auto& t_ns = telemetry::histogram("qsim.sv.apply_phase_on_register_value.ns");
  telemetry::Span t_span("sv.apply_phase_on_register_value", &t_ns);
  t_span.tag("dim", static_cast<std::int64_t>(amplitudes_.size()));
  t_calls.add();
  QS_REQUIRE(value < layout_.dim(r), "register value out of range");
  const std::size_t s = layout_.stride(r);
  const std::size_t d = layout_.dim(r);
  parallel_for(amplitudes_.size() / d, [&](std::size_t f) {
    const std::size_t base = (f / s) * d * s + (f % s);
    amplitudes_[base + value * s] *= phase;
  });
}

void StateVector::apply_householder(RegisterId r, std::span<const cplx> v) {
  static auto& t_calls = telemetry::counter("qsim.sv.apply_householder");
  static auto& t_ns = telemetry::histogram("qsim.sv.apply_householder.ns");
  telemetry::Span t_span("sv.apply_householder", &t_ns);
  t_span.tag("dim", static_cast<std::int64_t>(amplitudes_.size()));
  t_calls.add();
  const auto spec = fiber_spec(layout_, r);
  QS_REQUIRE(v.size() == spec.d,
             "Householder vector must match register dimension");
  parallel_for(spec.count, [&](std::size_t f) {
    const std::size_t base = spec.base(f);
    cplx ip{0.0, 0.0};
    for (std::size_t j = 0; j < spec.d; ++j)
      ip += std::conj(v[j]) * amplitudes_[base + j * spec.s];
    if (ip == cplx{0.0, 0.0}) return;
    const cplx twice = 2.0 * ip;
    for (std::size_t j = 0; j < spec.d; ++j)
      amplitudes_[base + j * spec.s] -= twice * v[j];
  });
}

void StateVector::apply_global_phase(cplx phase) {
  static auto& t_calls = telemetry::counter("qsim.sv.apply_global_phase");
  static auto& t_ns = telemetry::histogram("qsim.sv.apply_global_phase.ns");
  telemetry::Span t_span("sv.apply_global_phase", &t_ns);
  t_span.tag("dim", static_cast<std::int64_t>(amplitudes_.size()));
  t_calls.add();
  parallel_for(amplitudes_.size(), [&](std::size_t x) {
    amplitudes_[x] *= phase;
  });
}

cplx StateVector::inner_product(const StateVector& other) const {
  QS_REQUIRE(layout_.same_shape(other.layout_),
             "inner product needs identically shaped layouts");
  const cplx* a = amplitudes_.data();
  const cplx* b = other.amplitudes_.data();
  return parallel_sum_blocks(
      amplitudes_.size(), cplx{0.0, 0.0},
      [a, b](std::size_t begin, std::size_t end) {
        cplx acc{0.0, 0.0};
        for (std::size_t i = begin; i < end; ++i)
          acc += std::conj(a[i]) * b[i];
        return acc;
      });
}

double StateVector::distance_squared(const StateVector& other) const {
  QS_REQUIRE(layout_.same_shape(other.layout_),
             "distance needs identically shaped layouts");
  const cplx* a = amplitudes_.data();
  const cplx* b = other.amplitudes_.data();
  return parallel_sum_blocks(
      amplitudes_.size(), 0.0, [a, b](std::size_t begin, std::size_t end) {
        double acc = 0.0;
        for (std::size_t i = begin; i < end; ++i)
          acc += std::norm(a[i] - b[i]);
        return acc;
      });
}

std::vector<double> StateVector::marginal(RegisterId r) const {
  static auto& t_calls = telemetry::counter("qsim.sv.marginal");
  static auto& t_ns = telemetry::histogram("qsim.sv.marginal.ns");
  telemetry::Span t_span("sv.marginal", &t_ns);
  t_span.tag("dim", static_cast<std::int64_t>(amplitudes_.size()));
  t_calls.add();
  const auto spec = fiber_spec(layout_, r);
  const cplx* amps = amplitudes_.data();
  // Deterministic parallel reduction over FIBERS: each block folds its
  // fibers' |amplitude|² into a local d-vector sequentially, then the
  // per-block d-vectors merge through the fixed pairwise tree — same
  // value-by-value order regardless of thread count (docs/PERF.md).
  return parallel_reduce_blocks(
      spec.count, std::vector<double>(spec.d, 0.0),
      [&spec, amps](std::size_t begin, std::size_t end) {
        std::vector<double> probs(spec.d, 0.0);
        for (std::size_t f = begin; f < end; ++f) {
          const std::size_t base = spec.base(f);
          for (std::size_t j = 0; j < spec.d; ++j)
            probs[j] += std::norm(amps[base + j * spec.s]);
        }
        return probs;
      },
      [](std::vector<double>& into, const std::vector<double>& from) {
        for (std::size_t j = 0; j < into.size(); ++j) into[j] += from[j];
      });
}

double StateVector::probability_of(RegisterId r, std::size_t value) const {
  QS_REQUIRE(value < layout_.dim(r), "register value out of range");
  return marginal(r)[value];
}

double pure_fidelity(const StateVector& a, const StateVector& b) {
  return std::norm(a.inner_product(b));
}

}  // namespace qs
