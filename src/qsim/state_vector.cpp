#include "qsim/state_vector.hpp"

#include <cmath>
#include <limits>

#include "common/require.hpp"
#include "qsim/parallel.hpp"
#include "telemetry/trace.hpp"

namespace qs {

// state_backend.cpp mirrors this sentinel as a file-local constant (it
// cannot include this header: the include edge points the other way).
static_assert(StateVector::kFiberIdentity == 0xFFFFFFFFu,
              "keep the sparse backend's kIdentity mirror in sync");

namespace {

// A register of dimension d and stride s partitions [0, dim) into dim/d
// fibers of d amplitudes spaced s apart. Fiber f has base index
// (f / s) * d * s + (f % s); the fiber's elements are base + j*s.
struct FiberSpec {
  std::size_t d;         // register dimension
  std::size_t s;         // register stride
  std::size_t count;     // number of fibers = dim / d

  std::size_t base(std::size_t fiber) const noexcept {
    return (fiber / s) * d * s + (fiber % s);
  }
};

FiberSpec fiber_spec(const RegisterLayout& layout, RegisterId r) {
  FiberSpec spec{};
  spec.d = layout.dim(r);
  spec.s = layout.stride(r);
  spec.count = layout.total_dim() / spec.d;
  return spec;
}

FiberGeom fiber_geom(const RegisterLayout& layout, RegisterId r) {
  return FiberGeom{layout.dim(r), layout.stride(r)};
}

// Backend-tagged apply accounting: which backend ran a kernel and how many
// amplitudes it stores afterwards. The telemetry⇄ledger grid test balances
// the gauges against StateVector::stored_amplitudes().
void note_backend(bool sparse, std::size_t stored) {
  static auto& c_dense = telemetry::counter("qsim.backend.dense.apply");
  static auto& c_sparse = telemetry::counter("qsim.backend.sparse.apply");
  static auto& g_dense = telemetry::gauge("qsim.backend.dense.amplitudes");
  static auto& g_sparse = telemetry::gauge("qsim.backend.sparse.amplitudes");
  if (sparse) {
    c_sparse.add();
    g_sparse.set(static_cast<std::int64_t>(stored));
  } else {
    c_dense.add();
    g_dense.set(static_cast<std::int64_t>(stored));
  }
}

// Certify a fiber-matrix table once, before the replay loop, so the inner
// loops are throw-free and DQS_PRAGMA_SIMD-safe.
void require_valid_fiber_table(std::span<const std::uint32_t> mat_of_fiber,
                               std::size_t num_mats) {
  for (const std::uint32_t m : mat_of_fiber) {
    QS_REQUIRE(m == StateVector::kFiberIdentity || m < num_mats,
               "fiber matrix index out of range");
  }
}

}  // namespace

StateVector::StateVector(RegisterLayout layout, std::size_t basis_index)
    : layout_(std::move(layout)),
      amplitudes_(layout_.total_dim(), cplx{0.0, 0.0}) {
  QS_REQUIRE(basis_index < amplitudes_.size(),
             "initial basis state out of range");
  amplitudes_[basis_index] = 1.0;
}

StateVector::StateVector(RegisterLayout layout, const StateBackendConfig& config,
                         std::size_t basis_index)
    : layout_(std::move(layout)) {
  if (config.kind == StateBackendKind::kSparse) {
    sparse_ = std::make_unique<SparseAmplitudes>(
        layout_.total_dim(), config.amplitude_budget, basis_index);
    return;
  }
  QS_REQUIRE(basis_index < layout_.total_dim(),
             "initial basis state out of range");
  amplitudes_.assign(layout_.total_dim(), cplx{0.0, 0.0});
  amplitudes_[basis_index] = 1.0;
}

StateVector::StateVector(const StateVector& other)
    : layout_(other.layout_),
      amplitudes_(other.amplitudes_),
      // scratch_ is transient ping-pong storage; a copy starts without it.
      sparse_(other.sparse_ ? std::make_unique<SparseAmplitudes>(*other.sparse_)
                            : nullptr) {}

StateVector& StateVector::operator=(const StateVector& other) {
  if (this == &other) return *this;
  layout_ = other.layout_;
  amplitudes_ = other.amplitudes_;
  scratch_.clear();
  sparse_ = other.sparse_ ? std::make_unique<SparseAmplitudes>(*other.sparse_)
                          : nullptr;
  return *this;
}

std::size_t StateVector::stored_amplitudes() const noexcept {
  return sparse_ ? sparse_->nnz() : amplitudes_.size();
}

std::size_t StateVector::sparse_peak_amplitudes() const {
  QS_REQUIRE(sparse_ != nullptr,
             "sparse_peak_amplitudes() on a dense-backend state");
  return sparse_->peak_nnz();
}

std::size_t StateVector::sparse_amplitude_budget() const {
  QS_REQUIRE(sparse_ != nullptr,
             "sparse_amplitude_budget() on a dense-backend state");
  return sparse_->budget();
}

void StateVector::densify() {
  if (!sparse_) return;
  static auto& t_calls = telemetry::counter("qsim.backend.densify");
  t_calls.add();
  amplitudes_ = sparse_->densify();
  sparse_.reset();
}

void StateVector::sparsify(std::size_t amplitude_budget) {
  if (sparse_) return;
  static auto& t_calls = telemetry::counter("qsim.backend.sparsify");
  t_calls.add();
  sparse_ = std::make_unique<SparseAmplitudes>(
      std::span<const cplx>(amplitudes_), amplitude_budget);
  amplitudes_.clear();
  amplitudes_.shrink_to_fit();
  scratch_.clear();
  scratch_.shrink_to_fit();
}

cplx StateVector::amplitude(std::size_t flat_index) const {
  if (sparse_) return sparse_->amplitude(flat_index);
  QS_REQUIRE(flat_index < amplitudes_.size(), "amplitude index out of range");
  return amplitudes_[flat_index];
}

std::span<const cplx> StateVector::amplitudes() const {
  if (sparse_) {
    raise_sparse_state_error(
        "amplitudes(): dense-only accessor on a sparse-backend state; use "
        "sparse_indices()/sparse_values() or densify() first",
        sparse_->nnz(), 0);
  }
  return amplitudes_;
}

std::span<cplx> StateVector::mutable_amplitudes() {
  if (sparse_) {
    raise_sparse_state_error(
        "mutable_amplitudes(): dense-only accessor on a sparse-backend "
        "state; densify() first",
        sparse_->nnz(), 0);
  }
  return amplitudes_;
}

std::span<const std::uint64_t> StateVector::sparse_indices() const {
  QS_REQUIRE(sparse_ != nullptr, "sparse_indices() on a dense-backend state");
  return sparse_->indices();
}

std::span<const cplx> StateVector::sparse_values() const {
  QS_REQUIRE(sparse_ != nullptr, "sparse_values() on a dense-backend state");
  return sparse_->values();
}

void StateVector::reset(std::size_t basis_index) {
  if (sparse_) {
    sparse_->reset(basis_index);
    return;
  }
  QS_REQUIRE(basis_index < amplitudes_.size(),
             "initial basis state out of range");
  std::fill(amplitudes_.begin(), amplitudes_.end(), cplx{0.0, 0.0});
  amplitudes_[basis_index] = 1.0;
}

void StateVector::set_amplitudes(std::vector<cplx> amplitudes) {
  if (sparse_) {
    raise_sparse_state_error(
        "set_amplitudes(): dense-only accessor on a sparse-backend state",
        sparse_->nnz(), 0);
  }
  QS_REQUIRE(amplitudes.size() == layout_.total_dim(),
             "amplitude vector size must match layout dimension");
  amplitudes_ = std::move(amplitudes);
}

void StateVector::set_sparse_amplitudes(std::vector<std::uint64_t> indices,
                                        std::vector<cplx> values) {
  if (!sparse_) {
    raise_sparse_state_error(
        "set_sparse_amplitudes(): sparse-only accessor on a dense-backend "
        "state",
        indices.size(), 0);
  }
  sparse_->assign(std::move(indices), std::move(values));
  note_backend(true, sparse_->nnz());
}

double StateVector::norm() const {
  if (sparse_) return std::sqrt(sparse_->norm_squared());
  const cplx* amps = amplitudes_.data();
  const double s = parallel_sum_blocks(
      amplitudes_.size(), 0.0, [amps](std::size_t begin, std::size_t end) {
        double acc = 0.0;
        // dqs-lint: allow(simd-discipline) deterministic reduction: the
        // fixed left-fold order must not be reassociated.
        for (std::size_t i = begin; i < end; ++i) acc += std::norm(amps[i]);
        return acc;
      });
  return std::sqrt(s);
}

void StateVector::normalize() {
  const double n = norm();
  QS_REQUIRE(n > 0.0, "cannot normalise the zero vector");
  const double inv = 1.0 / n;
  if (sparse_) {
    sparse_->scale_real(inv);
    return;
  }
  cplx* amps = amplitudes_.data();
  parallel_for_blocks(amplitudes_.size(),
                      [amps, inv](std::size_t begin, std::size_t end) {
                        DQS_PRAGMA_SIMD
                        for (std::size_t i = begin; i < end; ++i)
                          amps[i] *= inv;
                      });
}

void StateVector::apply_unitary(RegisterId r, const Matrix& u) {
  static auto& t_calls = telemetry::counter("qsim.sv.apply_unitary");
  static auto& t_ns = telemetry::histogram("qsim.sv.apply_unitary.ns");
  telemetry::Span t_span("sv.apply_unitary", &t_ns);
  t_span.tag("dim", static_cast<std::int64_t>(dim()));
  t_calls.add();
  const auto spec = fiber_spec(layout_, r);
  QS_REQUIRE(u.rows() == spec.d && u.cols() == spec.d,
             "unitary dimension must match register dimension");
  if (sparse_) {
    sparse_->unitary(fiber_geom(layout_, r), u);
    note_backend(true, sparse_->nnz());
    return;
  }
  parallel_for_with_scratch(
      spec.count, spec.d, [&](std::size_t f, std::span<cplx> scratch) {
        const std::size_t base = spec.base(f);
        for (std::size_t j = 0; j < spec.d; ++j)
          scratch[j] = amplitudes_[base + j * spec.s];
        for (std::size_t i = 0; i < spec.d; ++i) {
          cplx acc{0.0, 0.0};
          for (std::size_t j = 0; j < spec.d; ++j)
            acc += cmul(u(i, j), scratch[j]);
          amplitudes_[base + i * spec.s] = acc;
        }
      });
  note_backend(false, amplitudes_.size());
}

void StateVector::apply_conditioned_unitary(
    RegisterId target,
    // dqs-lint: allow(no-std-function-in-kernels) retained naive reference
    const std::function<const Matrix*(std::size_t fiber_base)>& selector) {
  static auto& t_calls = telemetry::counter("qsim.sv.apply_conditioned_unitary");
  static auto& t_ns = telemetry::histogram("qsim.sv.apply_conditioned_unitary.ns");
  telemetry::Span t_span("sv.apply_conditioned_unitary", &t_ns);
  t_span.tag("dim", static_cast<std::int64_t>(dim()));
  t_calls.add();
  if (sparse_) {
    raise_sparse_state_error(
        "apply_conditioned_unitary(): the naive selector path is dense-only; "
        "lower through CompiledOp::fiber_dense for sparse replay",
        sparse_->nnz(), 0);
  }
  const auto spec = fiber_spec(layout_, target);
  parallel_for_with_scratch(
      spec.count, spec.d, [&](std::size_t f, std::span<cplx> scratch) {
        const std::size_t base = spec.base(f);
        const Matrix* u = selector(base);
        if (u == nullptr) return;  // identity on this fiber
        QS_ASSERT(u->rows() == spec.d && u->cols() == spec.d,
                  "conditioned unitary dimension mismatch");
        for (std::size_t j = 0; j < spec.d; ++j)
          scratch[j] = amplitudes_[base + j * spec.s];
        for (std::size_t i = 0; i < spec.d; ++i) {
          cplx acc{0.0, 0.0};
          for (std::size_t j = 0; j < spec.d; ++j)
            acc += (*u)(i, j) * scratch[j];
          amplitudes_[base + i * spec.s] = acc;
        }
      });
  note_backend(false, amplitudes_.size());
}

void StateVector::apply_fiber_dense(
    RegisterId target, std::span<const cplx> matrix_pool,
    std::span<const std::uint32_t> mat_of_fiber, std::size_t fiber_period) {
  static auto& t_calls = telemetry::counter("qsim.sv.apply_fiber_dense");
  static auto& t_ns = telemetry::histogram("qsim.sv.apply_fiber_dense.ns");
  telemetry::Span t_span("sv.apply_fiber_dense", &t_ns);
  t_span.tag("dim", static_cast<std::int64_t>(dim()));
  t_calls.add();
  const auto spec = fiber_spec(layout_, target);
  if (fiber_period == 0) {
    QS_REQUIRE(mat_of_fiber.size() == spec.count,
               "need one matrix index per fiber");
  } else {
    QS_REQUIRE(fiber_period == mat_of_fiber.size(),
               "fiber_period must equal the compressed table size");
    QS_REQUIRE(spec.count % fiber_period == 0,
               "fiber_period must divide the fiber count");
  }
  QS_REQUIRE(matrix_pool.size() % (spec.d * spec.d) == 0,
             "matrix pool must hold whole d×d matrices");
  const std::size_t num_mats = matrix_pool.size() / (spec.d * spec.d);
  require_valid_fiber_table(mat_of_fiber, num_mats);
  if (sparse_) {
    sparse_->fiber_dense(fiber_geom(layout_, target), matrix_pool,
                         mat_of_fiber);
    note_backend(true, sparse_->nnz());
    return;
  }
  cplx* amps = amplitudes_.data();
  const cplx* pool = matrix_pool.data();
  const std::uint32_t* idx = mat_of_fiber.data();
  const bool full_table = mat_of_fiber.size() == spec.count;
  const std::size_t period = mat_of_fiber.size();
  if (spec.d == 2) {
    const std::size_t s = spec.s;
    parallel_for_blocks(spec.count, [&](std::size_t begin, std::size_t end) {
      if (full_table && s == 1) {
        // Contiguous pairs, affine table lookup: the vectorizable shape.
        DQS_PRAGMA_SIMD
        for (std::size_t f = begin; f < end; ++f) {
          const std::uint32_t m = idx[f];
          if (m == kFiberIdentity) continue;
          const cplx* u = pool + std::size_t{m} * 4;
          const cplx a0 = amps[2 * f];
          const cplx a1 = amps[2 * f + 1];
          // Same accumulation order as the naive kernel (j ascending), so
          // the unrolled path is bit-identical, not just close.
          amps[2 * f] = cmul(u[0], a0) + cmul(u[1], a1);
          amps[2 * f + 1] = cmul(u[2], a0) + cmul(u[3], a1);
        }
        return;
      }
      if (full_table) {
        DQS_PRAGMA_SIMD
        for (std::size_t f = begin; f < end; ++f) {
          const std::uint32_t m = idx[f];
          if (m == kFiberIdentity) continue;
          const cplx* u = pool + std::size_t{m} * 4;
          const std::size_t base = (f / s) * 2 * s + (f % s);
          const cplx a0 = amps[base];
          const cplx a1 = amps[base + s];
          amps[base] = cmul(u[0], a0) + cmul(u[1], a1);
          amps[base + s] = cmul(u[2], a0) + cmul(u[3], a1);
        }
        return;
      }
      std::size_t k = begin % period;
      // dqs-lint: allow(simd-discipline) the running period counter is a
      // loop-carried dependence; the compressed table is the memory win.
      for (std::size_t f = begin; f < end; ++f) {
        const std::uint32_t m = idx[k];
        if (++k == period) k = 0;
        if (m == kFiberIdentity) continue;
        const cplx* u = pool + std::size_t{m} * 4;
        const std::size_t base = (f / s) * 2 * s + (f % s);
        const cplx a0 = amps[base];
        const cplx a1 = amps[base + s];
        amps[base] = cmul(u[0], a0) + cmul(u[1], a1);
        amps[base + s] = cmul(u[2], a0) + cmul(u[3], a1);
      }
    });
    note_backend(false, amplitudes_.size());
    return;
  }
  if (spec.d == 4) {
    const std::size_t s = spec.s;
    parallel_for_blocks(spec.count, [&](std::size_t begin, std::size_t end) {
      if (full_table) {
        DQS_PRAGMA_SIMD
        for (std::size_t f = begin; f < end; ++f) {
          const std::uint32_t m = idx[f];
          if (m == kFiberIdentity) continue;
          const cplx* u = pool + std::size_t{m} * 16;
          const std::size_t base = (f / s) * 4 * s + (f % s);
          const cplx a0 = amps[base];
          const cplx a1 = amps[base + s];
          const cplx a2 = amps[base + 2 * s];
          const cplx a3 = amps[base + 3 * s];
          amps[base] =
              cmul(u[0], a0) + cmul(u[1], a1) + cmul(u[2], a2) + cmul(u[3], a3);
          amps[base + s] =
              cmul(u[4], a0) + cmul(u[5], a1) + cmul(u[6], a2) + cmul(u[7], a3);
          amps[base + 2 * s] = cmul(u[8], a0) + cmul(u[9], a1) +
                               cmul(u[10], a2) + cmul(u[11], a3);
          amps[base + 3 * s] = cmul(u[12], a0) + cmul(u[13], a1) +
                               cmul(u[14], a2) + cmul(u[15], a3);
        }
        return;
      }
      std::size_t k = begin % period;
      // dqs-lint: allow(simd-discipline) running period counter (see d=2)
      for (std::size_t f = begin; f < end; ++f) {
        const std::uint32_t m = idx[k];
        if (++k == period) k = 0;
        if (m == kFiberIdentity) continue;
        const cplx* u = pool + std::size_t{m} * 16;
        const std::size_t base = (f / s) * 4 * s + (f % s);
        const cplx a0 = amps[base];
        const cplx a1 = amps[base + s];
        const cplx a2 = amps[base + 2 * s];
        const cplx a3 = amps[base + 3 * s];
        amps[base] =
            cmul(u[0], a0) + cmul(u[1], a1) + cmul(u[2], a2) + cmul(u[3], a3);
        amps[base + s] =
            cmul(u[4], a0) + cmul(u[5], a1) + cmul(u[6], a2) + cmul(u[7], a3);
        amps[base + 2 * s] = cmul(u[8], a0) + cmul(u[9], a1) +
                             cmul(u[10], a2) + cmul(u[11], a3);
        amps[base + 3 * s] = cmul(u[12], a0) + cmul(u[13], a1) +
                             cmul(u[14], a2) + cmul(u[15], a3);
      }
    });
    note_backend(false, amplitudes_.size());
    return;
  }
  parallel_for_with_scratch(
      spec.count, spec.d, [&](std::size_t f, std::span<cplx> scratch) {
        const std::uint32_t m = idx[f % period];
        if (m == kFiberIdentity) return;
        const cplx* u = pool + std::size_t{m} * spec.d * spec.d;
        const std::size_t base = spec.base(f);
        for (std::size_t j = 0; j < spec.d; ++j)
          scratch[j] = amps[base + j * spec.s];
        for (std::size_t i = 0; i < spec.d; ++i) {
          cplx acc{0.0, 0.0};
          for (std::size_t j = 0; j < spec.d; ++j)
            acc += cmul(u[i * spec.d + j], scratch[j]);
          amps[base + i * spec.s] = acc;
        }
      });
  note_backend(false, amplitudes_.size());
}

void StateVector::apply_permutation(
    // dqs-lint: allow(no-std-function-in-kernels) retained naive reference
    const std::function<std::size_t(std::size_t)>& map) {
  static auto& t_calls = telemetry::counter("qsim.sv.apply_permutation");
  static auto& t_ns = telemetry::histogram("qsim.sv.apply_permutation.ns");
  telemetry::Span t_span("sv.apply_permutation", &t_ns);
  t_span.tag("dim", static_cast<std::int64_t>(dim()));
  t_calls.add();
  if (sparse_) {
    raise_sparse_state_error(
        "apply_permutation(): the naive map path is dense-only; lower "
        "through CompiledOp::permutation for sparse replay",
        sparse_->nnz(), 0);
  }
  scratch_.resize(amplitudes_.size());
#ifndef NDEBUG
  // Debug builds prefill the scratch with NaN and scan it afterwards to
  // certify `map` really is a bijection. Release builds skip the O(dim)
  // prefill + serial scan on every query: callers wanting a certified map
  // lower it once through CompiledOp::permutation, whose compile-time check
  // runs exactly once per (operator, layout).
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::fill(scratch_.begin(), scratch_.end(), cplx{nan, nan});
#endif
  parallel_for(amplitudes_.size(), [&](std::size_t x) {
    const std::size_t y = map(x);
    QS_REQUIRE(y < scratch_.size(), "permutation image out of range");
    scratch_[y] = amplitudes_[x];
  });
#ifndef NDEBUG
  for (const auto& a : scratch_) {
    QS_ASSERT(!std::isnan(a.real()), "permutation map is not a bijection");
  }
#endif
  amplitudes_.swap(scratch_);
  note_backend(false, amplitudes_.size());
}

void StateVector::apply_permutation_table(
    std::span<const std::uint32_t> table) {
  static auto& t_calls = telemetry::counter("qsim.sv.apply_permutation_table");
  static auto& t_ns = telemetry::histogram("qsim.sv.apply_permutation_table.ns");
  telemetry::Span t_span("sv.apply_permutation_table", &t_ns);
  t_span.tag("dim", static_cast<std::int64_t>(dim()));
  t_calls.add();
  QS_REQUIRE(table.size() == dim(),
             "permutation table size must match state dimension");
  if (sparse_) {
    sparse_->permute_forward(table);
    note_backend(true, sparse_->nnz());
    return;
  }
  scratch_.resize(amplitudes_.size());
  const cplx* src = amplitudes_.data();
  cplx* dst = scratch_.data();
  const std::uint32_t* t = table.data();
  parallel_for_blocks(amplitudes_.size(),
                      [src, dst, t](std::size_t begin, std::size_t end) {
                        // dqs-lint: allow(simd-discipline) scattered writes;
                        // the gather twin below is the vectorized replay.
                        for (std::size_t x = begin; x < end; ++x)
                          dst[t[x]] = src[x];
                      });
  amplitudes_.swap(scratch_);
  note_backend(false, amplitudes_.size());
}

void StateVector::apply_permutation_inverse_table(
    std::span<const std::uint32_t> inverse) {
  static auto& t_calls =
      telemetry::counter("qsim.sv.apply_permutation_inverse_table");
  static auto& t_ns =
      telemetry::histogram("qsim.sv.apply_permutation_inverse_table.ns");
  telemetry::Span t_span("sv.apply_permutation_inverse_table", &t_ns);
  t_span.tag("dim", static_cast<std::int64_t>(dim()));
  t_calls.add();
  QS_REQUIRE(inverse.size() == dim(),
             "permutation table size must match state dimension");
  if (sparse_) {
    raise_sparse_state_error(
        "apply_permutation_inverse_table(): sparse replay rewrites indices "
        "through the FORWARD table (apply_permutation_table)",
        sparse_->nnz(), 0);
  }
  scratch_.resize(amplitudes_.size());
  const cplx* src = amplitudes_.data();
  cplx* dst = scratch_.data();
  const std::uint32_t* inv = inverse.data();
  // Sequential writes, gathered reads: within a tile the destinations are
  // one streaming run and the table tile fits L1, so this is the form the
  // vectorizer (and the prefetcher) can actually use.
  parallel_for_blocks(amplitudes_.size(),
                      [src, dst, inv](std::size_t begin, std::size_t end) {
                        DQS_PRAGMA_SIMD
                        for (std::size_t x = begin; x < end; ++x)
                          dst[x] = src[inv[x]];
                      });
  amplitudes_.swap(scratch_);
  note_backend(false, amplitudes_.size());
}

void StateVector::apply_value_shift(
    RegisterId r, RegisterId cond,
    std::span<const std::size_t> shift_per_cond_value) {
  static auto& t_calls = telemetry::counter("qsim.sv.apply_value_shift");
  static auto& t_ns = telemetry::histogram("qsim.sv.apply_value_shift.ns");
  telemetry::Span t_span("sv.apply_value_shift", &t_ns);
  t_span.tag("dim", static_cast<std::int64_t>(dim()));
  t_calls.add();
  QS_REQUIRE(!(r == cond), "shift target and condition must differ");
  QS_REQUIRE(shift_per_cond_value.size() == layout_.dim(cond),
             "need one shift per condition value");
  if (sparse_) {
    sparse_->value_shift(fiber_geom(layout_, r), fiber_geom(layout_, cond),
                         shift_per_cond_value, /*has_flag=*/false, 1);
    note_backend(true, sparse_->nnz());
    return;
  }
  const auto spec = fiber_spec(layout_, r);
  parallel_for_with_scratch(
      spec.count, spec.d, [&](std::size_t f, std::span<cplx> scratch) {
        const std::size_t base = spec.base(f);
        const std::size_t c = layout_.digit(base, cond);
        const std::size_t shift = shift_per_cond_value[c] % spec.d;
        if (shift == 0) return;
        cplx* fiber = amplitudes_.data() + base;
        const std::size_t s = spec.s;
        DQS_PRAGMA_SIMD
        for (std::size_t j = 0; j < spec.d; ++j) scratch[j] = fiber[j * s];
        // Rotation as two modulo-free copy runs instead of a per-element
        // wrap test: j < split lands at j+shift, the tail wraps to the
        // front. Pure data movement — exact.
        const std::size_t split = spec.d - shift;
        DQS_PRAGMA_SIMD
        for (std::size_t j = 0; j < split; ++j)
          fiber[(j + shift) * s] = scratch[j];
        DQS_PRAGMA_SIMD
        for (std::size_t j = split; j < spec.d; ++j)
          fiber[(j + shift - spec.d) * s] = scratch[j];
      });
  note_backend(false, amplitudes_.size());
}

void StateVector::apply_controlled_value_shift(
    RegisterId r, RegisterId cond, RegisterId flag,
    std::span<const std::size_t> shift_per_cond_value) {
  static auto& t_calls = telemetry::counter("qsim.sv.apply_controlled_value_shift");
  static auto& t_ns = telemetry::histogram("qsim.sv.apply_controlled_value_shift.ns");
  telemetry::Span t_span("sv.apply_controlled_value_shift", &t_ns);
  t_span.tag("dim", static_cast<std::int64_t>(dim()));
  t_calls.add();
  QS_REQUIRE(!(r == cond) && !(r == flag) && !(cond == flag),
             "shift target, condition and flag must be distinct registers");
  QS_REQUIRE(layout_.dim(flag) == 2, "control flag must be a qubit");
  QS_REQUIRE(shift_per_cond_value.size() == layout_.dim(cond),
             "need one shift per condition value");
  if (sparse_) {
    sparse_->value_shift(fiber_geom(layout_, r), fiber_geom(layout_, cond),
                         shift_per_cond_value, /*has_flag=*/true,
                         layout_.stride(flag));
    note_backend(true, sparse_->nnz());
    return;
  }
  const auto spec = fiber_spec(layout_, r);
  parallel_for_with_scratch(
      spec.count, spec.d, [&](std::size_t f, std::span<cplx> scratch) {
        const std::size_t base = spec.base(f);
        if (layout_.digit(base, flag) != 1) return;
        const std::size_t c = layout_.digit(base, cond);
        const std::size_t shift = shift_per_cond_value[c] % spec.d;
        if (shift == 0) return;
        cplx* fiber = amplitudes_.data() + base;
        const std::size_t s = spec.s;
        DQS_PRAGMA_SIMD
        for (std::size_t j = 0; j < spec.d; ++j) scratch[j] = fiber[j * s];
        const std::size_t split = spec.d - shift;
        DQS_PRAGMA_SIMD
        for (std::size_t j = 0; j < split; ++j)
          fiber[(j + shift) * s] = scratch[j];
        DQS_PRAGMA_SIMD
        for (std::size_t j = split; j < spec.d; ++j)
          fiber[(j + shift - spec.d) * s] = scratch[j];
      });
  note_backend(false, amplitudes_.size());
}

void StateVector::apply_diagonal(
    // dqs-lint: allow(no-std-function-in-kernels) retained naive reference
    const std::function<cplx(std::size_t)>& phase) {
  static auto& t_calls = telemetry::counter("qsim.sv.apply_diagonal");
  static auto& t_ns = telemetry::histogram("qsim.sv.apply_diagonal.ns");
  telemetry::Span t_span("sv.apply_diagonal", &t_ns);
  t_span.tag("dim", static_cast<std::int64_t>(dim()));
  t_calls.add();
  if (sparse_) {
    raise_sparse_state_error(
        "apply_diagonal(): the naive phase path is dense-only; lower "
        "through CompiledOp::diagonal for sparse replay",
        sparse_->nnz(), 0);
  }
  parallel_for(amplitudes_.size(), [&](std::size_t x) {
    amplitudes_[x] *= phase(x);
  });
  note_backend(false, amplitudes_.size());
}

void StateVector::apply_diagonal_factors(std::span<const cplx> factors) {
  static auto& t_calls = telemetry::counter("qsim.sv.apply_diagonal_factors");
  static auto& t_ns = telemetry::histogram("qsim.sv.apply_diagonal_factors.ns");
  telemetry::Span t_span("sv.apply_diagonal_factors", &t_ns);
  t_span.tag("dim", static_cast<std::int64_t>(dim()));
  t_calls.add();
  QS_REQUIRE(factors.size() == dim(),
             "diagonal factor array size must match state dimension");
  if (sparse_) {
    sparse_->diagonal_factors(factors);
    note_backend(true, sparse_->nnz());
    return;
  }
  cplx* amps = amplitudes_.data();
  const cplx* f = factors.data();
  parallel_for_blocks(amplitudes_.size(),
                      [amps, f](std::size_t begin, std::size_t end) {
                        DQS_PRAGMA_SIMD
                        for (std::size_t x = begin; x < end; ++x)
                          amps[x] = cmul(amps[x], f[x]);
                      });
  note_backend(false, amplitudes_.size());
}

void StateVector::apply_phase_on_basis_state(std::size_t flat_index,
                                             cplx phase) {
  if (sparse_) {
    sparse_->phase_on_basis(flat_index, phase);
    return;
  }
  QS_REQUIRE(flat_index < amplitudes_.size(), "basis state out of range");
  amplitudes_[flat_index] = cmul(amplitudes_[flat_index], phase);
}

void StateVector::apply_phase_on_register_value(RegisterId r,
                                                std::size_t value,
                                                cplx phase) {
  static auto& t_calls = telemetry::counter("qsim.sv.apply_phase_on_register_value");
  static auto& t_ns = telemetry::histogram("qsim.sv.apply_phase_on_register_value.ns");
  telemetry::Span t_span("sv.apply_phase_on_register_value", &t_ns);
  t_span.tag("dim", static_cast<std::int64_t>(dim()));
  t_calls.add();
  QS_REQUIRE(value < layout_.dim(r), "register value out of range");
  if (sparse_) {
    sparse_->phase_on_register_value(fiber_geom(layout_, r), value, phase);
    note_backend(true, sparse_->nnz());
    return;
  }
  const std::size_t s = layout_.stride(r);
  const std::size_t d = layout_.dim(r);
  cplx* amps = amplitudes_.data();
  parallel_for_blocks(
      amplitudes_.size() / d, [&](std::size_t begin, std::size_t end) {
        DQS_PRAGMA_SIMD
        for (std::size_t f = begin; f < end; ++f) {
          const std::size_t base = (f / s) * d * s + (f % s);
          amps[base + value * s] = cmul(amps[base + value * s], phase);
        }
      });
  note_backend(false, amplitudes_.size());
}

void StateVector::apply_householder(RegisterId r, std::span<const cplx> v) {
  static auto& t_calls = telemetry::counter("qsim.sv.apply_householder");
  static auto& t_ns = telemetry::histogram("qsim.sv.apply_householder.ns");
  telemetry::Span t_span("sv.apply_householder", &t_ns);
  t_span.tag("dim", static_cast<std::int64_t>(dim()));
  t_calls.add();
  const auto spec = fiber_spec(layout_, r);
  QS_REQUIRE(v.size() == spec.d,
             "Householder vector must match register dimension");
  if (sparse_) {
    sparse_->householder(fiber_geom(layout_, r), v);
    note_backend(true, sparse_->nnz());
    return;
  }
  cplx* amps = amplitudes_.data();
  const cplx* vv = v.data();
  parallel_for(spec.count, [&](std::size_t f) {
    const std::size_t base = spec.base(f);
    cplx ip{0.0, 0.0};
    // Ascending-j left fold: the accumulation order every other path
    // (naive, sparse) reproduces. Not SIMD-annotated — reassociation
    // would break the determinism contract.
    for (std::size_t j = 0; j < spec.d; ++j)
      ip += cmul_conj(vv[j], amps[base + j * spec.s]);
    if (ip == cplx{0.0, 0.0}) return;
    const cplx twice = 2.0 * ip;
    DQS_PRAGMA_SIMD
    for (std::size_t j = 0; j < spec.d; ++j)
      amps[base + j * spec.s] -= cmul(twice, vv[j]);
  });
  note_backend(false, amplitudes_.size());
}

void StateVector::apply_global_phase(cplx phase) {
  static auto& t_calls = telemetry::counter("qsim.sv.apply_global_phase");
  static auto& t_ns = telemetry::histogram("qsim.sv.apply_global_phase.ns");
  telemetry::Span t_span("sv.apply_global_phase", &t_ns);
  t_span.tag("dim", static_cast<std::int64_t>(dim()));
  t_calls.add();
  if (sparse_) {
    sparse_->scale(phase);
    note_backend(true, sparse_->nnz());
    return;
  }
  cplx* amps = amplitudes_.data();
  parallel_for_blocks(amplitudes_.size(),
                      [amps, phase](std::size_t begin, std::size_t end) {
                        DQS_PRAGMA_SIMD
                        for (std::size_t x = begin; x < end; ++x)
                          amps[x] = cmul(amps[x], phase);
                      });
  note_backend(false, amplitudes_.size());
}

cplx StateVector::inner_product(const StateVector& other) const {
  QS_REQUIRE(layout_.same_shape(other.layout_),
             "inner product needs identically shaped layouts");
  if (sparse_ && other.sparse_)
    return SparseAmplitudes::inner(*sparse_, *other.sparse_);
  if (sparse_)
    return SparseAmplitudes::inner(*sparse_,
                                   std::span<const cplx>(other.amplitudes_));
  if (other.sparse_)
    return SparseAmplitudes::inner(std::span<const cplx>(amplitudes_),
                                   *other.sparse_);
  const cplx* a = amplitudes_.data();
  const cplx* b = other.amplitudes_.data();
  return parallel_sum_blocks(
      amplitudes_.size(), cplx{0.0, 0.0},
      [a, b](std::size_t begin, std::size_t end) {
        cplx acc{0.0, 0.0};
        // dqs-lint: allow(simd-discipline) deterministic reduction: the
        // fixed left-fold order must not be reassociated.
        for (std::size_t i = begin; i < end; ++i)
          acc += cmul_conj(a[i], b[i]);
        return acc;
      });
}

double StateVector::distance_squared(const StateVector& other) const {
  QS_REQUIRE(layout_.same_shape(other.layout_),
             "distance needs identically shaped layouts");
  if (sparse_ && other.sparse_)
    return SparseAmplitudes::distance_squared(*sparse_, *other.sparse_);
  if (sparse_)
    return SparseAmplitudes::distance_squared(
        std::span<const cplx>(other.amplitudes_), *sparse_);
  if (other.sparse_)
    return SparseAmplitudes::distance_squared(
        std::span<const cplx>(amplitudes_), *other.sparse_);
  const cplx* a = amplitudes_.data();
  const cplx* b = other.amplitudes_.data();
  return parallel_sum_blocks(
      amplitudes_.size(), 0.0, [a, b](std::size_t begin, std::size_t end) {
        double acc = 0.0;
        // dqs-lint: allow(simd-discipline) deterministic reduction: the
        // fixed left-fold order must not be reassociated.
        for (std::size_t i = begin; i < end; ++i)
          acc += std::norm(a[i] - b[i]);
        return acc;
      });
}

std::vector<double> StateVector::marginal(RegisterId r) const {
  static auto& t_calls = telemetry::counter("qsim.sv.marginal");
  static auto& t_ns = telemetry::histogram("qsim.sv.marginal.ns");
  telemetry::Span t_span("sv.marginal", &t_ns);
  t_span.tag("dim", static_cast<std::int64_t>(dim()));
  t_calls.add();
  if (sparse_) return sparse_->marginal(fiber_geom(layout_, r));
  const auto spec = fiber_spec(layout_, r);
  const cplx* amps = amplitudes_.data();
  // Deterministic parallel reduction over FIBERS: each block folds its
  // fibers' |amplitude|² into a local d-vector sequentially, then the
  // per-block d-vectors merge through the fixed pairwise tree — same
  // value-by-value order regardless of thread count (docs/PERF.md).
  return parallel_reduce_blocks(
      spec.count, std::vector<double>(spec.d, 0.0),
      [&spec, amps](std::size_t begin, std::size_t end) {
        std::vector<double> probs(spec.d, 0.0);
        // dqs-lint: allow(simd-discipline) deterministic reduction: the
        // fixed left-fold order must not be reassociated.
        for (std::size_t f = begin; f < end; ++f) {
          const std::size_t base = spec.base(f);
          for (std::size_t j = 0; j < spec.d; ++j)
            probs[j] += std::norm(amps[base + j * spec.s]);
        }
        return probs;
      },
      [](std::vector<double>& into, const std::vector<double>& from) {
        for (std::size_t j = 0; j < into.size(); ++j) into[j] += from[j];
      });
}

double StateVector::probability_of(RegisterId r, std::size_t value) const {
  QS_REQUIRE(value < layout_.dim(r), "register value out of range");
  return marginal(r)[value];
}

double pure_fidelity(const StateVector& a, const StateVector& b) {
  return std::norm(a.inner_product(b));
}

}  // namespace qs
