// Dense complex linear algebra for small operators.
//
// The simulator's hot path never materialises matrices larger than one
// register's dimension, but the test suite verifies circuit identities at
// the operator level (Lemmas 4.1, 4.2, 4.4) and the lower-bound experiments
// need mixed-state fidelities, which require a Hermitian eigensolver. This
// header provides an owning row-major matrix plus exactly those routines —
// written from scratch so the library has no BLAS/LAPACK dependency.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace qs {

using cplx = std::complex<double>;

/// Complex product written out over real components. std::complex's
/// operator* compiles to a __muldc3 libcall (Annex G NaN recovery) that the
/// vectorizer cannot touch; the open-coded form is bit-identical for finite
/// operands — __muldc3 computes the same ac−bd / ad+bc with the same
/// roundings and only diverges on NaN results, which unit-modulus phases
/// and normalised amplitudes never produce — and keeps the kernel loops
/// vectorizable. The kernel-equivalence and sparse differential grids pin
/// the contract.
inline cplx cmul(cplx a, cplx b) noexcept {
  return cplx{a.real() * b.real() - a.imag() * b.imag(),
              a.real() * b.imag() + a.imag() * b.real()};
}

/// conj(a) * b, open-coded like cmul (inner products, Householder rows).
inline cplx cmul_conj(cplx a, cplx b) noexcept {
  return cplx{a.real() * b.real() + a.imag() * b.imag(),
              a.real() * b.imag() - a.imag() * b.real()};
}

/// Owning row-major complex matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols);

  static Matrix identity(std::size_t n);
  /// Build from a row-major initializer (size must equal rows*cols).
  static Matrix from_rows(std::size_t rows, std::size_t cols,
                          std::vector<cplx> data);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  cplx& operator()(std::size_t r, std::size_t c);
  const cplx& operator()(std::size_t r, std::size_t c) const;

  const std::vector<cplx>& data() const noexcept { return data_; }
  std::vector<cplx>& data() noexcept { return data_; }

  Matrix adjoint() const;
  Matrix transpose() const;

  friend Matrix operator*(const Matrix& a, const Matrix& b);
  friend Matrix operator+(const Matrix& a, const Matrix& b);
  friend Matrix operator-(const Matrix& a, const Matrix& b);
  Matrix& operator*=(cplx scalar);

  /// Matrix-vector product; v.size() must equal cols().
  std::vector<cplx> apply(const std::vector<cplx>& v) const;

  double frobenius_norm() const;
  /// max_ij |a_ij - b_ij|
  static double max_abs_diff(const Matrix& a, const Matrix& b);

  /// ||A A† - I||_F — 0 for a unitary.
  double unitarity_defect() const;

  /// (1/2)||A - A†||_F — 0 for a Hermitian matrix.
  double hermiticity_defect() const;

  cplx trace() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<cplx> data_;
};

/// Eigen-decomposition of a Hermitian matrix by the cyclic Jacobi method.
/// Returns ascending eigenvalues; `vectors` (if non-null) receives the
/// unitary whose COLUMNS are the corresponding eigenvectors.
std::vector<double> hermitian_eigen(const Matrix& a, Matrix* vectors = nullptr,
                                    double tol = 1e-13,
                                    std::size_t max_sweeps = 64);

/// Principal square root of a positive semidefinite Hermitian matrix.
Matrix psd_sqrt(const Matrix& a);

/// Uhlmann fidelity F(rho, sigma) = (Tr sqrt(sqrt(rho) sigma sqrt(rho)))^2
/// for density matrices (Hermitian, PSD, unit trace).
double fidelity(const Matrix& rho, const Matrix& sigma);

/// Kronecker product a ⊗ b.
Matrix kron(const Matrix& a, const Matrix& b);

}  // namespace qs
