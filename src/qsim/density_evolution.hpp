// Exact mixed-state (density matrix) evolution for small systems.
//
// The noisy sampler uses trajectory unravelling; this module provides the
// ground truth it is certified against: evolve the FULL density matrix
// exactly under unitaries and the library's noise channels. Cost is
// O(dim²) memory / O(dim³)-ish time, so it is reserved for validation
// instances, where it turns statistical trajectory tests into exact
// equalities.
#pragma once

#include <functional>

#include "qsim/linalg.hpp"
#include "qsim/state_vector.hpp"

namespace qs {

/// Density matrix over a full RegisterLayout.
class DensityState {
 public:
  /// Start in |basis_index⟩⟨basis_index|.
  explicit DensityState(RegisterLayout layout, std::size_t basis_index = 0);

  /// Start from a pure StateVector.
  explicit DensityState(const StateVector& pure);

  const RegisterLayout& layout() const noexcept { return layout_; }
  std::size_t dim() const noexcept { return rho_.rows(); }
  const Matrix& rho() const noexcept { return rho_; }

  /// ρ ← U ρ U† where U is given as a circuit fragment acting on pure
  /// states (applied column-by-column; the fragment must be linear, i.e.
  /// any composition of the StateVector kernels).
  void apply_unitary_fragment(
      const std::function<void(StateVector&)>& fragment);

  /// Exact dephasing channel on register r with strength p (Weyl-Z mix).
  void apply_dephasing(RegisterId r, double p);

  /// Exact depolarizing channel on register r with strength p (Weyl mix).
  void apply_depolarizing(RegisterId r, double p);

  /// Tr ρ (should stay 1).
  double trace() const;

  /// ⟨ψ|ρ|ψ⟩ for a pure state on the same layout.
  double fidelity_with(const StateVector& pure) const;

 private:
  RegisterLayout layout_;
  Matrix rho_;
};

}  // namespace qs
