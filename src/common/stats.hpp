// Small statistics helpers used by the experiment harnesses: summary
// statistics, least-squares fits (for log–log scaling-exponent extraction),
// and exact/logarithmic binomial coefficients (for Lemma 5.6's |T| = C(N, m)
// counting checks).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace qs {

/// Running mean / variance / extrema accumulator (Welford's algorithm).
class Accumulator {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Result of an ordinary least-squares line fit y = slope * x + intercept.
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Least-squares fit. Requires xs.size() == ys.size() >= 2.
LineFit fit_line(const std::vector<double>& xs, const std::vector<double>& ys);

/// Fit y = c * x^e by regressing log y on log x; returns {e, log c, R^2}.
/// All inputs must be strictly positive.
LineFit fit_power_law(const std::vector<double>& xs,
                      const std::vector<double>& ys);

/// Exact binomial coefficient if it fits in 64 bits, otherwise nullopt.
std::optional<std::uint64_t> binomial(std::uint64_t n, std::uint64_t k);

/// Natural log of C(n, k) via lgamma, valid for all 0 <= k <= n.
double log_binomial(std::uint64_t n, std::uint64_t k);

/// Median of a vector (copied; input untouched). Requires non-empty input.
double median(std::vector<double> values);

/// Pearson chi-square goodness-of-fit of observed counts against expected
/// probabilities. Bins with expected probability 0 must observe 0 (else the
/// statistic is +inf); they contribute no degrees of freedom.
struct ChiSquareResult {
  double statistic = 0.0;
  std::size_t degrees_of_freedom = 0;
  double p_value = 0.0;  ///< survival function (Wilson–Hilferty approx.)
};
ChiSquareResult chi_square_gof(const std::vector<std::uint64_t>& observed,
                               const std::vector<double>& expected_probs);

/// Survival function of the chi-square distribution (Wilson–Hilferty
/// normal approximation — adequate for goodness-of-fit verdicts).
double chi_square_p_value(double statistic, std::size_t degrees_of_freedom);

/// Wilson score interval for a binomial proportion: the [lo, hi] range for
/// the true success probability after `hits` successes in `trials` trials,
/// at z standard normal quantiles (z = 1.96 for 95%). Well-behaved at the
/// 0/1 boundaries, unlike the normal approximation.
struct WilsonInterval {
  double lo = 0.0;
  double hi = 1.0;
  double center = 0.0;
};
WilsonInterval wilson_interval(std::uint64_t hits, std::uint64_t trials,
                               double z = 1.96);

}  // namespace qs
