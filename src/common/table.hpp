// Plain-text table rendering for the experiment harnesses.
//
// Every bench binary in this repository regenerates one of the paper's
// "tables"/"figures" (see DESIGN.md); TextTable renders the rows as aligned
// monospace output and can additionally dump CSV for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace qs {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> row);

  /// Convenience cell formatters.
  static std::string cell(std::uint64_t v);
  static std::string cell(std::int64_t v);
  static std::string cell(double v, int precision = 4);
  static std::string cell_sci(double v, int precision = 3);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Raw cells, for machine-readable re-serialisation (bench --json).
  const std::vector<std::string>& headers() const noexcept {
    return headers_;
  }
  const std::vector<std::vector<std::string>>& data() const noexcept {
    return rows_;
  }

  /// Render with a title line, column separators and a header rule.
  void print(std::ostream& os, const std::string& title = "") const;

  /// Comma-separated dump (headers + rows) for downstream plotting.
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qs
