#include "common/cli.hpp"

#include <string_view>

#include "common/require.hpp"

namespace qs {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    QS_REQUIRE(arg.starts_with("--"),
               "flags must start with '--' (got '" + std::string(arg) + "')");
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      continue;
    }
    // `--name value` unless the next token is another flag (then boolean).
    if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      values_[std::string(arg)] = argv[++i];
    } else {
      values_[std::string(arg)] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  touched_[name] = true;
  return values_.contains(name);
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  touched_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get(const std::string& name,
                          std::int64_t fallback) const {
  touched_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::stoll(it->second);
}

std::uint64_t CliArgs::get(const std::string& name,
                           std::uint64_t fallback) const {
  touched_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::stoull(it->second);
}

double CliArgs::get(const std::string& name, double fallback) const {
  touched_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::stod(it->second);
}

bool CliArgs::get(const std::string& name, bool fallback) const {
  touched_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> CliArgs::unused() const {
  std::vector<std::string> result;
  for (const auto& [name, _] : values_) {
    if (!touched_.contains(name)) result.push_back(name);
  }
  return result;
}

}  // namespace qs
