// Precondition / invariant checking for the distributed-quantum-sampling
// library.
//
// Following the C++ Core Guidelines (I.5 "State preconditions", E.12), public
// API entry points validate their inputs with QS_REQUIRE, which throws
// qs::ContractViolation carrying the failed expression and source location.
// Internal invariants use QS_ASSERT, which compiles to the same check; both
// are always on because every operation in this library is dominated by
// O(dim) statevector work, so the branch cost is negligible.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace qs {

/// Thrown when a documented precondition or internal invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line,
                                          const std::string& message) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!message.empty()) os << " — " << message;
  throw ContractViolation(os.str());
}

}  // namespace detail
}  // namespace qs

/// Validate a documented precondition of a public API.
#define QS_REQUIRE(expr, message)                                             \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::qs::detail::contract_failure("precondition", #expr, __FILE__,         \
                                     __LINE__, (message));                    \
    }                                                                         \
  } while (false)

/// Validate an internal invariant.
#define QS_ASSERT(expr, message)                                              \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::qs::detail::contract_failure("invariant", #expr, __FILE__, __LINE__,  \
                                     (message));                              \
    }                                                                         \
  } while (false)
