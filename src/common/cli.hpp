// Minimal command-line flag parsing for examples and bench binaries.
//
// Supports `--name value` and `--name=value` forms plus boolean switches.
// Unknown flags are an error so typos surface immediately.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qs {

class CliArgs {
 public:
  /// Parses argv; throws qs::ContractViolation on a malformed flag.
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get(const std::string& name, std::int64_t fallback) const;
  std::uint64_t get(const std::string& name, std::uint64_t fallback) const;
  double get(const std::string& name, double fallback) const;
  bool get(const std::string& name, bool fallback) const;

  /// Flags the program never queried; useful for typo diagnostics.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> touched_;
};

}  // namespace qs
