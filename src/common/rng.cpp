#include "common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <set>

#include "common/require.hpp"

namespace qs {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // Avoid the (measure-zero but fatal) all-zero state.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_below(std::uint64_t bound) noexcept {
  // Lemire-style rejection to remove modulo bias.
  if (bound == 0) return 0;  // degenerate; callers QS_REQUIRE bound > 0
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_below(span));
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

double Rng::normal() noexcept {
  // Box–Muller; draw u1 away from zero to keep log finite.
  double u1 = 0.0;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  const double u2 = uniform01();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::bernoulli(double p) noexcept { return uniform01() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  double x = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (x < w) return i;
    x -= w;
  }
  // Floating-point slack: return the last positive-weight index.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return 0;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  QS_REQUIRE(k <= n, "cannot sample more values than the range holds");
  // Floyd's algorithm: for j = n-k .. n-1, insert a uniform value from
  // [0, j]; on collision insert j itself.
  std::set<std::size_t> chosen;
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = uniform_below(j + 1);
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  return {chosen.begin(), chosen.end()};
}

Rng Rng::split() noexcept { return Rng(next_u64() ^ 0xa0761d6478bd642full); }

Rng rng_for_stream(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Two SplitMix64 steps over a state that folds in both inputs: the first
  // decorrelates the seed, the second decorrelates the stream id, so
  // (s, k) and (s, k+1) — or (s, k) and (s+1, k) — land in unrelated
  // regions of the xoshiro seed space.
  std::uint64_t state = seed;
  const std::uint64_t a = splitmix64(state);
  state ^= stream;
  const std::uint64_t b = splitmix64(state);
  return Rng(a ^ (b * 0x9e3779b97f4a7c15ull));
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  QS_REQUIRE(n > 0, "Zipf sampler needs a non-empty range");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += std::pow(static_cast<double>(i + 1), -exponent);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::probability(std::size_t i) const {
  QS_REQUIRE(i < cdf_.size(), "Zipf probability index out of range");
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace qs
