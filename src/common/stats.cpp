#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/require.hpp"

namespace qs {

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

LineFit fit_line(const std::vector<double>& xs,
                 const std::vector<double>& ys) {
  QS_REQUIRE(xs.size() == ys.size(), "fit_line: size mismatch");
  QS_REQUIRE(xs.size() >= 2, "fit_line: need at least two points");
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  QS_REQUIRE(std::abs(denom) > 0.0, "fit_line: degenerate x values");
  LineFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double r = ys[i] - (fit.slope * xs[i] + fit.intercept);
    ss_res += r * r;
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

LineFit fit_power_law(const std::vector<double>& xs,
                      const std::vector<double>& ys) {
  QS_REQUIRE(xs.size() == ys.size(), "fit_power_law: size mismatch");
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    QS_REQUIRE(xs[i] > 0.0 && ys[i] > 0.0,
               "fit_power_law: inputs must be strictly positive");
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  return fit_line(lx, ly);
}

std::optional<std::uint64_t> binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::uint64_t result = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    const std::uint64_t numer = n - k + i;
    // result * numer / i is exact at every step; detect overflow of the
    // multiply before dividing.
    const std::uint64_t g = std::gcd(result, i);
    std::uint64_t r = result / g;
    const std::uint64_t d = i / g;
    const std::uint64_t m = numer / d;  // d divides numer * (result/g) overall
    if (numer % d == 0) {
      if (r > std::numeric_limits<std::uint64_t>::max() / m)
        return std::nullopt;
      result = r * m;
    } else {
      if (r > std::numeric_limits<std::uint64_t>::max() / numer)
        return std::nullopt;
      result = r * numer / d;
    }
  }
  return result;
}

double log_binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double median(std::vector<double> values) {
  QS_REQUIRE(!values.empty(), "median of empty range");
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  const double hi = values[mid];
  if (values.size() % 2 == 1) return hi;
  const double lo = *std::max_element(values.begin(), values.begin() + mid);
  return 0.5 * (lo + hi);
}

double chi_square_p_value(double statistic, std::size_t degrees_of_freedom) {
  // An infinite statistic (mass observed in a zero-probability bin) is
  // impossible under the null regardless of the degrees of freedom.
  if (!std::isfinite(statistic)) return 0.0;
  if (degrees_of_freedom == 0) return 1.0;
  const double k = static_cast<double>(degrees_of_freedom);
  // Wilson–Hilferty: (X²/k)^(1/3) is approximately normal with mean
  // 1 − 2/(9k) and variance 2/(9k).
  const double variance = 2.0 / (9.0 * k);
  const double z = (std::cbrt(statistic / k) - (1.0 - variance)) /
                   std::sqrt(variance);
  return 0.5 * std::erfc(z / std::sqrt(2.0));
}

WilsonInterval wilson_interval(std::uint64_t hits, std::uint64_t trials,
                               double z) {
  QS_REQUIRE(trials > 0, "Wilson interval needs at least one trial");
  QS_REQUIRE(hits <= trials, "more hits than trials");
  QS_REQUIRE(z > 0.0, "z must be positive");
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(hits) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double spread =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  WilsonInterval interval;
  interval.center = center;
  interval.lo = std::max(0.0, center - spread);
  interval.hi = std::min(1.0, center + spread);
  return interval;
}

ChiSquareResult chi_square_gof(const std::vector<std::uint64_t>& observed,
                               const std::vector<double>& expected_probs) {
  QS_REQUIRE(observed.size() == expected_probs.size(),
             "chi-square: size mismatch");
  QS_REQUIRE(!observed.empty(), "chi-square: empty input");
  std::uint64_t total = 0;
  for (const auto o : observed) total += o;
  QS_REQUIRE(total > 0, "chi-square: no observations");

  ChiSquareResult result;
  std::size_t live_bins = 0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    QS_REQUIRE(expected_probs[i] >= 0.0, "chi-square: negative probability");
    const double expected =
        expected_probs[i] * static_cast<double>(total);
    if (expected == 0.0) {
      if (observed[i] != 0) {
        result.statistic = std::numeric_limits<double>::infinity();
      }
      continue;
    }
    ++live_bins;
    const double delta = static_cast<double>(observed[i]) - expected;
    result.statistic += delta * delta / expected;
  }
  result.degrees_of_freedom = live_bins > 0 ? live_bins - 1 : 0;
  result.p_value =
      chi_square_p_value(result.statistic, result.degrees_of_freedom);
  return result;
}

}  // namespace qs
