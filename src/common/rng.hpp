// Deterministic pseudo-random number generation.
//
// Everything in this repository that consumes randomness takes an explicit
// qs::Rng so that every test, example and benchmark is reproducible from a
// seed printed in its output. The generator is xoshiro256** seeded through
// SplitMix64 (the construction recommended by its authors), implemented here
// so the library has no hidden dependence on the standard library's
// unspecified distributions.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace qs {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** 1.0 — fast, high-quality, 2^256-period generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

  /// Uniform 64-bit word.
  std::uint64_t next_u64() noexcept;

  /// UniformRandomBitGenerator interface.
  std::uint64_t operator()() noexcept { return next_u64(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ull; }

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased
  /// (rejection-based).
  std::uint64_t uniform_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Standard normal via Box–Muller (no cached spare: keeps state minimal).
  double normal() noexcept;

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;

  /// Sample an index from an unnormalised non-negative weight vector.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights) noexcept;

  /// Choose k distinct values out of [0, n), returned sorted ascending.
  /// Uses Floyd's algorithm: O(k) expected memory and time (plus sort).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Split off an independent stream (seeded from this stream's output).
  Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> s_;
};

/// Deterministic independent stream for (seed, stream) — the per-job RNG
/// discipline of the serving layer (docs/SERVING.md): job k of a client
/// with seed s draws from rng_for_stream(s, k), so a coalesced batch and a
/// serial replay of the same jobs produce bit-identical samples regardless
/// of worker interleaving. Mixes both words through SplitMix64 (the same
/// construction Rng's own seeding uses) so adjacent stream ids yield
/// uncorrelated generators.
Rng rng_for_stream(std::uint64_t seed, std::uint64_t stream) noexcept;

/// Zipf(s) sampler over {0, ..., n-1}: P(i) ∝ 1/(i+1)^s. Precomputes the
/// CDF once; sampling is O(log n) per draw.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  std::size_t sample(Rng& rng) const noexcept;

  /// Probability of value i (normalised).
  double probability(std::size_t i) const;

  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cdf_[i] = P(X <= i)
};

}  // namespace qs
