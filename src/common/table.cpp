#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/require.hpp"

namespace qs {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  QS_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  QS_REQUIRE(row.size() == headers_.size(),
             "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string TextTable::cell(std::uint64_t v) { return std::to_string(v); }
std::string TextTable::cell(std::int64_t v) { return std::to_string(v); }

std::string TextTable::cell(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::cell_sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

void TextTable::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }

  const auto emit_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c]
         << " | ";
    }
    os << '\n';
  };

  if (!title.empty()) os << "## " << title << '\n';
  emit_row(headers_);
  os << "|-";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c], '-') << (c + 1 < headers_.size() ? "-|-" : "-|");
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void TextTable::write_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << (c + 1 < row.size() ? "," : "");
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace qs
