// Exporters: Chrome trace-event JSON and JSONL metric snapshots.
//
// Trace format — the "JSON Object Format" of the Trace Event spec, loadable
// in Perfetto (ui.perfetto.dev) and chrome://tracing: every completed span
// becomes one complete event
//
//   {"name": …, "ph": "X", "ts": µs, "dur": µs, "pid": 1, "tid": …,
//    "cat": "dqs", "args": {…span tags…}}
//
// with timestamps in (fractional) microseconds on the process steady
// clock, plus a leading process_name metadata record.
//
// Metrics format — one self-describing JSON object per line
// ("dqs-metrics-v1"), safe to append and to grep:
//
//   {"schema":"dqs-metrics-v1","kind":"counter","name":…,"value":…}
//   {"schema":"dqs-metrics-v1","kind":"gauge","name":…,"value":…}
//   {"schema":"dqs-metrics-v1","kind":"histogram","name":…,"count":…,
//    "sum":…,"min":…,"max":…,"buckets":[[bucket,count],…]}
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <string_view>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace qs::telemetry {

/// Escape for inclusion inside a JSON string literal (no surrounding
/// quotes added).
std::string json_escape(std::string_view raw);

/// Write the events as a complete Chrome trace-event JSON document.
void write_chrome_trace(std::ostream& os, std::span<const TraceEvent> events);

/// Convenience: drain nothing — export the global tracer's current buffer.
void write_chrome_trace(std::ostream& os);

/// Write one JSONL line per metric sample.
void write_metrics_jsonl(std::ostream& os, const MetricsSnapshot& snapshot);

/// Convenience: snapshot the global registry and write it.
void write_metrics_jsonl(std::ostream& os);

}  // namespace qs::telemetry
