#include "telemetry/metrics.hpp"

#include <bit>

namespace qs::telemetry {

void Histogram::record(std::uint64_t sample) noexcept {
  if (!metrics_enabled()) return;
  buckets_[std::bit_width(sample)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (sample < seen &&
         !min_.compare_exchange_weak(seen, sample, std::memory_order_relaxed))
    ;
  seen = max_.load(std::memory_order_relaxed);
  while (sample > seen &&
         !max_.compare_exchange_weak(seen, sample, std::memory_order_relaxed))
    ;
}

std::uint64_t Histogram::min() const noexcept {
  const auto raw = min_.load(std::memory_order_relaxed);
  return raw == ~std::uint64_t{0} ? 0 : raw;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

namespace {

template <typename Map, typename Instrument>
Instrument& find_or_register(std::mutex& mu, Map& map, std::string_view name) {
  const std::scoped_lock lock(mu);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), std::make_unique<Instrument>()).first;
  }
  return *it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  return find_or_register<decltype(counters_), Counter>(mu_, counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return find_or_register<decltype(gauges_), Gauge>(mu_, gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return find_or_register<decltype(histograms_), Histogram>(mu_, histograms_,
                                                            name);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::scoped_lock lock(mu_);
  MetricsSnapshot out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kCounter;
    s.name = name;
    s.count = c->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kGauge;
    s.name = name;
    s.gauge = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kHistogram;
    s.name = name;
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (const auto n = h->bucket(b); n != 0) s.buckets.emplace_back(b, n);
    }
    out.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::reset() {
  const std::scoped_lock lock(mu_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& registry() {
  static MetricsRegistry instance;
  return instance;
}

Counter& counter(std::string_view name) { return registry().counter(name); }
Gauge& gauge(std::string_view name) { return registry().gauge(name); }
Histogram& histogram(std::string_view name) {
  return registry().histogram(name);
}

}  // namespace qs::telemetry
