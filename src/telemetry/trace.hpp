// RAII span tracing with steady-clock timestamps and small thread ids.
//
// A Span measures one scoped operation (a statevector kernel, one schedule
// event, a cache rebuild). Completed spans are appended to the global
// Tracer buffer and exported as Chrome trace-event JSON (export.hpp) that
// loads directly in Perfetto / chrome://tracing. Spans carry up to
// kMaxTags integer tags — the sampling layer uses them to stamp every
// schedule span with its protocol-IR event index, so a trace lines up
// one-to-one with dqs-verify diagnostics (docs/ANALYSIS.md).
//
// Cost model: when tracing is off (the default) constructing a Span is one
// relaxed atomic load and a branch; no clock is read and nothing is
// buffered. When on, a span costs two steady_clock reads plus one
// mutex-guarded append at destruction. A Span may also feed a duration
// Histogram, which activates it under metrics even when tracing is off.
//
// This header is the ONLY sanctioned home of wall-clock time in src/: the
// dqs_lint `timing-discipline` rule rejects raw std::chrono use elsewhere
// so that every measurement flows through one exportable pipeline.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

#include "telemetry/metrics.hpp"

namespace qs::telemetry {

/// Nanoseconds on a monotonic (steady) clock, for code that needs a raw
/// reading — e.g. the overhead gate in tools/dqs_trace.
std::uint64_t monotonic_ns() noexcept;

/// Small dense id for the calling thread (0, 1, 2, … in first-use order);
/// stable for the thread's lifetime. Exported as the trace `tid`.
std::uint32_t current_thread_id() noexcept;

/// One integer annotation on a span ("event", "machine", "adjoint", …).
struct TraceTag {
  const char* key = nullptr;
  std::int64_t value = 0;
};

/// A completed span. `name` must point at a string literal (or any storage
/// outliving the Tracer) — spans never copy it.
struct TraceEvent {
  const char* name = "";
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;
  std::array<TraceTag, 4> tags{};
  std::uint32_t num_tags = 0;
};

/// Global bounded buffer of completed spans. When full, further spans are
/// dropped and counted in the `telemetry.trace.dropped` counter instead of
/// growing without limit under long-running servers.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  void record(const TraceEvent& event);

  /// Copy out the buffer (in completion order).
  std::vector<TraceEvent> events() const;
  std::size_t size() const;
  void clear();

  /// Change the drop threshold (existing events are kept).
  void set_capacity(std::size_t capacity);

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::size_t capacity_ = kDefaultCapacity;
};

Tracer& tracer();

/// RAII measurement of the enclosing scope. Inactive (and nearly free)
/// unless tracing is enabled or a duration histogram is attached while
/// metrics are enabled.
class Span {
 public:
  static constexpr std::uint32_t kMaxTags = 4;

  explicit Span(const char* name,
                Histogram* duration_histogram = nullptr) noexcept
      : histogram_(duration_histogram) {
    const bool trace = tracing_enabled();
    const bool time = histogram_ != nullptr && metrics_enabled();
    if (!trace && !time) return;
    event_.name = name;
    event_.start_ns = monotonic_ns();
    traced_ = trace;
    timed_ = time;
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { if (traced_ || timed_) finish(); }

  bool active() const noexcept { return traced_ || timed_; }

  /// Attach an integer tag; silently ignored when inactive or full.
  void tag(const char* key, std::int64_t value) noexcept {
    if (!traced_ || event_.num_tags >= kMaxTags) return;
    event_.tags[event_.num_tags++] = TraceTag{key, value};
  }

 private:
  void finish() noexcept;

  TraceEvent event_{};
  Histogram* histogram_ = nullptr;
  bool traced_ = false;
  bool timed_ = false;
};

}  // namespace qs::telemetry
