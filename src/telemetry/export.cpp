#include "telemetry/export.hpp"

#include <cstdio>
#include <ostream>

namespace qs::telemetry {

std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Fractional microseconds with fixed 3-digit (nanosecond) precision — the
/// trace spec's `ts`/`dur` unit.
std::string us_of_ns(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

}  // namespace

void write_chrome_trace(std::ostream& os,
                        std::span<const TraceEvent> events) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"dqs\"}}";
  for (const auto& e : events) {
    os << ",\n{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\"dqs\","
       << "\"ph\":\"X\",\"ts\":" << us_of_ns(e.start_ns)
       << ",\"dur\":" << us_of_ns(e.dur_ns) << ",\"pid\":1,\"tid\":" << e.tid;
    if (e.num_tags != 0) {
      os << ",\"args\":{";
      for (std::uint32_t t = 0; t < e.num_tags; ++t) {
        if (t != 0) os << ',';
        os << '"' << json_escape(e.tags[t].key) << "\":" << e.tags[t].value;
      }
      os << '}';
    }
    os << '}';
  }
  os << "\n]}\n";
}

void write_chrome_trace(std::ostream& os) {
  const auto events = tracer().events();
  write_chrome_trace(os, events);
}

void write_metrics_jsonl(std::ostream& os, const MetricsSnapshot& snapshot) {
  for (const auto& s : snapshot) {
    os << "{\"schema\":\"dqs-metrics-v1\",";
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        os << "\"kind\":\"counter\",\"name\":\"" << json_escape(s.name)
           << "\",\"value\":" << s.count;
        break;
      case MetricSample::Kind::kGauge:
        os << "\"kind\":\"gauge\",\"name\":\"" << json_escape(s.name)
           << "\",\"value\":" << s.gauge;
        break;
      case MetricSample::Kind::kHistogram:
        os << "\"kind\":\"histogram\",\"name\":\"" << json_escape(s.name)
           << "\",\"count\":" << s.count << ",\"sum\":" << s.sum
           << ",\"min\":" << s.min << ",\"max\":" << s.max << ",\"buckets\":[";
        for (std::size_t b = 0; b < s.buckets.size(); ++b) {
          if (b != 0) os << ',';
          os << '[' << s.buckets[b].first << ',' << s.buckets[b].second
             << ']';
        }
        os << ']';
        break;
    }
    os << "}\n";
  }
}

void write_metrics_jsonl(std::ostream& os) {
  write_metrics_jsonl(os, registry().snapshot());
}

}  // namespace qs::telemetry
