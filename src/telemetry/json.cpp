#include "telemetry/json.hpp"

#include <cctype>
#include <charconv>

#include "common/require.hpp"

namespace qs::telemetry::json {

const Value& Value::at(const std::string& key) const {
  QS_REQUIRE(type == Type::kObject, "json: at(key) on a non-object");
  const auto it = object.find(key);
  QS_REQUIRE(it != object.end(), "json: missing key '" + key + "'");
  return it->second;
}

const Value& Value::at(std::size_t index) const {
  QS_REQUIRE(type == Type::kArray, "json: at(index) on a non-array");
  QS_REQUIRE(index < array.size(), "json: array index out of range");
  return array[index];
}

bool Value::contains(const std::string& key) const {
  return type == Type::kObject && object.find(key) != object.end();
}

double Value::as_number() const {
  QS_REQUIRE(type == Type::kNumber, "json: not a number");
  return number;
}

const std::string& Value::as_string() const {
  QS_REQUIRE(type == Type::kString, "json: not a string");
  return string;
}

bool Value::as_bool() const {
  QS_REQUIRE(type == Type::kBool, "json: not a boolean");
  return boolean;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    QS_REQUIRE(pos_ == text_.size(),
               "json: trailing garbage at offset " + std::to_string(pos_));
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    // Still the typed taxonomy (ContractViolation), thrown directly only
    // because QS_REQUIRE(false, ...) cannot express [[noreturn]].
    // dqs-lint: allow(error-taxonomy)
    throw ContractViolation("json: " + what + " at offset " +
                            std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.type = Value::Type::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        const bool truth = peek() == 't';
        if (!consume_literal(truth ? "true" : "false")) fail("bad literal");
        Value v;
        v.type = Value::Type::kBool;
        v.boolean = truth;
        return v;
      }
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type = Value::Type::kObject;
    skip_ws();
    if (peek() == '}') { ++pos_; return v; }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type = Value::Type::kArray;
    skip_ws();
    if (peek() == ']') { ++pos_; return v; }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // the exporters never emit them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    double value = 0.0;
    const auto* first = text_.data() + start;
    const auto* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || ptr != last) fail("malformed number");
    Value v;
    v.type = Value::Type::kNumber;
    v.number = value;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace qs::telemetry::json
