#include "telemetry/trace.hpp"

#include <chrono>

namespace qs::telemetry {

std::uint64_t monotonic_ns() noexcept {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

std::uint32_t current_thread_id() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void Tracer::record(const TraceEvent& event) {
  {
    const std::scoped_lock lock(mu_);
    if (events_.size() < capacity_) {
      events_.push_back(event);
      return;
    }
  }
  counter("telemetry.trace.dropped").add();
}

std::vector<TraceEvent> Tracer::events() const {
  const std::scoped_lock lock(mu_);
  return events_;
}

std::size_t Tracer::size() const {
  const std::scoped_lock lock(mu_);
  return events_.size();
}

void Tracer::clear() {
  const std::scoped_lock lock(mu_);
  events_.clear();
}

void Tracer::set_capacity(std::size_t capacity) {
  const std::scoped_lock lock(mu_);
  capacity_ = capacity;
}

Tracer& tracer() {
  static Tracer instance;
  return instance;
}

void Span::finish() noexcept {
  const std::uint64_t end = monotonic_ns();
  event_.dur_ns = end >= event_.start_ns ? end - event_.start_ns : 0;
  if (timed_) histogram_->record(event_.dur_ns);
  if (traced_) {
    event_.tid = current_thread_id();
    tracer().record(event_);
  }
}

}  // namespace qs::telemetry
