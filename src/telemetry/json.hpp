// Minimal recursive-descent JSON reader.
//
// Just enough JSON to round-trip the telemetry exporters inside the test
// suite and the dqs_trace self-checks: objects, arrays, strings (with the
// escapes json_escape emits plus \uXXXX for BMP code points), numbers
// (parsed as double), booleans and null. Not a general-purpose parser —
// library code has no business ingesting foreign JSON; tooling that does
// (tools/*.py) uses Python's json module.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace qs::telemetry::json {

struct Value {
  enum class Type : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject,
  };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool is_null() const noexcept { return type == Type::kNull; }
  bool is_object() const noexcept { return type == Type::kObject; }
  bool is_array() const noexcept { return type == Type::kArray; }

  /// Member access; throws qs::ContractViolation when absent or not an
  /// object/array.
  const Value& at(const std::string& key) const;
  const Value& at(std::size_t index) const;
  bool contains(const std::string& key) const;

  /// Typed reads; throw on a type mismatch.
  double as_number() const;
  const std::string& as_string() const;
  bool as_bool() const;
};

/// Parse a complete JSON document (trailing whitespace allowed, anything
/// else throws qs::ContractViolation with an offset).
Value parse(std::string_view text);

}  // namespace qs::telemetry::json
