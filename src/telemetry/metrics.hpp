// Metrics registry: named counters, gauges and log₂-bucketed histograms.
//
// The paper's cost model counts queries (Theorems 4.3/4.5); making the
// simulator "as fast as the hardware allows" additionally needs wall-clock
// visibility into the statevector kernels and the schedule executor. This
// module is the always-compiled substrate for that: instrumentation sites
// hold a stable `Counter&`/`Histogram&` obtained once from the global
// MetricsRegistry and hit it on every call. All mutation paths are
// thread-safe (relaxed atomics) and guarded by a single global off switch,
// so the DISABLED cost of an instrumentation site is one relaxed atomic
// load and a predictable branch — measured ≤ ~2% on bench_b0_qsim_micro
// and gated in CI (tools/dqs_trace --overhead).
//
// Telemetry is OFF by default. Enable metrics with set_metrics_enabled(),
// tracing (trace.hpp) with set_tracing_enabled(), or both with
// set_enabled(). Export snapshots through export.hpp.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace qs::telemetry {

namespace detail {
inline std::atomic<bool> metrics_enabled_flag{false};
inline std::atomic<bool> tracing_enabled_flag{false};
}  // namespace detail

/// Global-off fast path: every mutation checks this first.
inline bool metrics_enabled() noexcept {
  return detail::metrics_enabled_flag.load(std::memory_order_relaxed);
}
inline void set_metrics_enabled(bool on) noexcept {
  detail::metrics_enabled_flag.store(on, std::memory_order_relaxed);
}

inline bool tracing_enabled() noexcept {
  return detail::tracing_enabled_flag.load(std::memory_order_relaxed);
}
inline void set_tracing_enabled(bool on) noexcept {
  detail::tracing_enabled_flag.store(on, std::memory_order_relaxed);
}

/// Convenience: flip metrics and tracing together.
inline void set_enabled(bool on) noexcept {
  set_metrics_enabled(on);
  set_tracing_enabled(on);
}

/// Monotonically increasing event count. add() is wait-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!metrics_enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A signed level that can move both ways (e.g. live cache entries).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    if (!metrics_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    if (!metrics_enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Distribution of unsigned samples (typically nanosecond durations) in
/// power-of-two buckets: bucket b counts samples with bit_width == b, i.e.
/// values in [2^(b-1), 2^b). Exact count/sum plus min/max are kept too.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // bit_width(uint64) ∈ [0,64]

  void record(std::uint64_t sample) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Smallest / largest recorded sample; 0 when empty.
  std::uint64_t min() const noexcept;
  std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(std::size_t b) const {
    return buckets_.at(b).load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

/// One exported metric (see export.hpp for the JSONL wire format).
struct MetricSample {
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  std::uint64_t count = 0;                        ///< counter / histogram
  std::int64_t gauge = 0;                         ///< gauge
  std::uint64_t sum = 0, min = 0, max = 0;        ///< histogram
  /// Non-empty histogram buckets as (bucket_index, count) pairs; the value
  /// range of bucket b is [2^(b-1), 2^b) (b = 0 holds exact zeros).
  std::vector<std::pair<std::size_t, std::uint64_t>> buckets;
};

using MetricsSnapshot = std::vector<MetricSample>;

/// Registry of named instruments. Lookup registers on first use and
/// returns a reference that stays valid for the registry's lifetime, so
/// hot paths resolve their instrument once (function-local static or a
/// member pointer) and never touch the map again.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Consistent-enough snapshot for export: values are read with relaxed
  /// loads, names sorted lexicographically (counters, then gauges, then
  /// histograms, interleaved by name).
  MetricsSnapshot snapshot() const;

  /// Zero every instrument (registrations survive — references stay valid).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-wide registry all library instrumentation reports to.
MetricsRegistry& registry();

/// Shorthands for `registry().counter(name)` etc.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

}  // namespace qs::telemetry
