// Experiment D1 — ipc transport overhead (docs/DISTRIBUTION.md).
//
// The multi-process transport moves the coordinator's register amplitudes
// over unix-domain sockets for every oracle application; the oracle is an
// exact permutation, so the ONLY observable difference from the in-process
// transport is wall-clock cost. This bench measures that cost at three
// levels and asserts the bit-identity contract at each:
//
//   1. oracle round-trip — µs per single O_j application, in-process
//      Machine::apply_oracle vs one framed socket round-trip, across state
//      dimensions (the payload is 2 × dim × 16 bytes per call);
//   2. whole sampler — wall time of the full preparation, both query
//      modes, with the recovered state compared bit for bit;
//   3. serving — samples/sec through dqs-serve with real worker processes
//      vs the in-process transport, same job stream, same samples.
//
//   bench_d1_ipc [--json PATH] [--smoke] [--jobs N]
//
// Exit code: 0 when every ipc result (state amplitudes, fidelity, samples)
// is bit-identical to its in-process twin and every serving job completed
// without demotion; 1 otherwise. Overhead itself is reported, not gated —
// the socket hop is expected to cost; wrongness is not.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "faults/ipc_chaos.hpp"
#include "sampling/samplers.hpp"
#include "serving/service.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace qs;

bool same_amplitudes(std::span<const cplx> a, std::span<const cplx> b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(cplx)) == 0);
}

double us_per_call(std::uint64_t elapsed_ns, std::uint64_t calls) {
  return calls == 0 ? 0.0
                    : static_cast<double>(elapsed_ns) /
                          static_cast<double>(calls) / 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter(
      argc, argv, "D1",
      "ipc transport overhead: oracle round-trip, whole-preparation and "
      "served-samples cost of the multi-process socket transport vs the "
      "in-process oracle, with bit-identity asserted at every level");
  const CliArgs args(argc, argv);
  const bool smoke = args.get("smoke", false);
  const auto jobs = static_cast<std::size_t>(
      args.get("jobs", smoke ? std::uint64_t{4} : std::uint64_t{16}));

  bool ok = true;

  // ---- 1. oracle round-trip microbench --------------------------------
  // One machine, growing element register: the payload each round-trip
  // ships is the full dense amplitude vector, twice (out and back).
  TextTable rt({"universe", "state dim", "payload KiB/call",
                "in-process µs/call", "ipc µs/call", "overhead ×"});
  const std::size_t reps = smoke ? 64 : 256;
  for (const std::size_t universe : {8u, 32u, 128u}) {
    auto db = bench::uniform_db(universe, 1, universe / 2, 11, 2);
    RegisterLayout layout;
    const auto elem = layout.add("elem", universe);
    const auto count = layout.add("count", db.nu() + 1);

    StateVector in_state(layout);
    const auto t0 = telemetry::monotonic_ns();
    for (std::size_t k = 0; k < reps; ++k)
      db.machine(0).apply_oracle(in_state, elem, count, k % 2 == 1);
    const auto in_ns = telemetry::monotonic_ns() - t0;

    ipc::IpcSupervisor supervisor(db);
    ok = ok && !supervisor.start().has_value();
    StateVector ipc_state(layout);
    const auto t1 = telemetry::monotonic_ns();
    for (std::size_t k = 0; k < reps; ++k) {
      const auto failure = supervisor.oracle_roundtrip(
          0, k % 2 == 1, ipc_state, elem, count);
      ok = ok && !failure.has_value();
    }
    const auto ipc_ns = telemetry::monotonic_ns() - t1;
    supervisor.shutdown();
    ok = ok && supervisor.zombies() == 0;

    // An even number of alternating O / O† applications is the identity,
    // and both paths applied the same permutations: states must agree
    // bit for bit.
    ok = ok && same_amplitudes(in_state.amplitudes(), ipc_state.amplitudes());

    const double payload_kib =
        2.0 * static_cast<double>(in_state.dim()) * sizeof(cplx) / 1024.0;
    const double in_us = us_per_call(in_ns, reps);
    const double ipc_us = us_per_call(ipc_ns, reps);
    rt.add_row({TextTable::cell(std::uint64_t{universe}),
                TextTable::cell(std::uint64_t{in_state.dim()}),
                TextTable::cell(payload_kib, 1), TextTable::cell(in_us, 2),
                TextTable::cell(ipc_us, 2),
                TextTable::cell(in_us > 0 ? ipc_us / in_us : 0.0, 1)});
  }
  rt.print(std::cout, "D1: oracle round-trip cost, in-process vs socket");
  reporter.add("D1: oracle round-trip cost, in-process vs socket", rt);

  // ---- 2. whole-preparation wall time ---------------------------------
  TextTable prep({"mode", "machines", "queries", "in-process ms", "ipc ms",
                  "overhead ×", "bit-identical"});
  for (const auto mode : {QueryMode::kSequential, QueryMode::kParallel}) {
    auto db = bench::uniform_db(32, 3, 12, 7, 2);

    const auto t0 = telemetry::monotonic_ns();
    const auto base = mode == QueryMode::kSequential
                          ? run_sequential_sampler(db)
                          : run_parallel_sampler(db);
    const auto base_ns = telemetry::monotonic_ns() - t0;

    ipc::IpcSupervisor supervisor(db);
    ok = ok && !supervisor.start().has_value();
    const auto t1 = telemetry::monotonic_ns();
    const auto over = run_ipc_sampler(db, mode, supervisor);
    const auto over_ns = telemetry::monotonic_ns() - t1;
    supervisor.shutdown();
    ok = ok && supervisor.zombies() == 0;

    const bool identical =
        same_amplitudes(base.state.amplitudes(), over.state.amplitudes()) &&
        base.fidelity == over.fidelity && base.stats == over.stats;
    ok = ok && identical;
    const double base_ms = static_cast<double>(base_ns) / 1e6;
    const double over_ms = static_cast<double>(over_ns) / 1e6;
    prep.add_row(
        {mode == QueryMode::kSequential ? "sequential" : "parallel",
         TextTable::cell(std::uint64_t{3}),
         TextTable::cell(base.stats.total_machine_invocations()),
         TextTable::cell(base_ms, 2),
         TextTable::cell(over_ms, 2),
         TextTable::cell(base_ms > 0 ? over_ms / base_ms : 0.0, 1),
         identical ? "yes" : "NO"});
  }
  prep.print(std::cout, "D1: whole-preparation wall time by transport");
  reporter.add("D1: whole-preparation wall time by transport", prep);

  // ---- 3. served samples/sec with real workers ------------------------
  // Same job stream through two services that differ only in transport;
  // coalescing means one preparation each, so the gap is the prep cost
  // amortised over the draws plus any per-draw difference (none — draws
  // measure the published snapshot).
  TextTable serve({"transport", "jobs", "samples", "jobs/s", "demotions",
                   "samples identical"});
  std::vector<std::vector<std::size_t>> samples_by_transport;
  std::vector<double> rates;
  for (const auto kind :
       {ipc::TransportKind::kInProcess, ipc::TransportKind::kIpc}) {
    serving::ServiceOptions options;
    options.workers = 0;  // inline pump: deterministic, single-threaded
    options.transport = kind;
    serving::SampleService service(bench::uniform_db(64, 3, 24, 17, 2),
                                   options);
    std::vector<std::size_t> samples;
    std::uint64_t completed = 0;
    const auto t0 = telemetry::monotonic_ns();
    for (std::size_t k = 0; k < jobs; ++k) {
      serving::JobRequest request;
      request.client_seed = 100 + k;
      request.num_samples = 4;
      const auto outcome = service.run(std::move(request));
      if (outcome.ok()) {
        ++completed;
        samples.insert(samples.end(), outcome.result->samples.begin(),
                       outcome.result->samples.end());
      }
    }
    const auto elapsed = telemetry::monotonic_ns() - t0;
    const bool demoted =
        service.active_transport() != kind;  // ipc must not have died
    service.shutdown();
    ok = ok && completed == jobs && !demoted;

    samples_by_transport.push_back(samples);
    const bool identical = samples_by_transport.size() < 2 ||
                           samples_by_transport[0] == samples;
    ok = ok && identical;
    const double rate = static_cast<double>(completed) /
                        (static_cast<double>(elapsed) / 1e9);
    rates.push_back(rate);
    serve.add_row({ipc::to_string(kind), TextTable::cell(completed),
                   TextTable::cell(std::uint64_t{samples.size()}),
                   TextTable::cell(rate, 1),
                   TextTable::cell(std::uint64_t{demoted ? 1u : 0u}),
                   identical ? "yes" : "NO"});
  }
  serve.print(std::cout, "D1: served jobs/sec by transport (real workers)");
  reporter.add("D1: served jobs/sec by transport (real workers)", serve);

  if (rates.size() == 2 && rates[1] > 0) {
    std::printf("serving overhead: %.1fx slower over sockets "
                "(reported, not gated)\n",
                rates[0] / rates[1]);
  }
  if (!ok) {
    std::printf("FAILED: ipc transport must be bit-identical to the "
                "in-process oracle and must not demote or leak workers\n");
  }
  return reporter.finish(ok ? 0 : 1);
}
