// Experiment T12 — data-placement ablation. The paper's cost depends on
// the data only through (N, M, ν): placement changes ν. Replicating the
// same logical multiset r times multiplies every c_i by r, so ν and M both
// scale by r and a = M/(νN) is unchanged — the ITERATION count is placement
// invariant; what replication buys is fault tolerance, and what it costs is
// capacity (ν) — while range-sharding vs random placement of ONE copy is
// entirely free. A second ablation pads ν above the minimum (over-
// provisioned capacity) and shows queries growing as √ν at fixed M.
#include <cmath>

#include "bench_util.hpp"
#include "sampling/samplers.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  bench::Reporter reporter(argc, argv, "T12",
                "Placement ablation — replication, sharding and "
                "over-provisioned capacity");

  const std::size_t universe = 256;
  const std::size_t machines = 4;

  TextTable table({"placement", "M", "nu", "a", "queries", "fidelity"});
  // One logical multiset: 32 elements, 2 copies each.
  const auto shard = workload::disjoint_partition(universe, machines, 2);
  Rng rng(3);
  auto random_place = workload::uniform_random(universe, machines, 0, rng);
  {
    // Same logical content as `shard`, placed randomly.
    std::vector<Dataset> datasets(machines, Dataset(universe));
    for (std::size_t i = 0; i < universe; ++i) {
      for (int c = 0; c < 2; ++c)
        datasets[rng.uniform_below(machines)].insert(i);
    }
    random_place = std::move(datasets);
  }
  const auto replicated = workload::replicated(universe, machines, universe,
                                               2);  // every machine a copy

  struct Row {
    const char* name;
    std::vector<Dataset> datasets;
  };
  Row rows[] = {{"range-sharded x1", shard},
                {"random-placed x1", random_place},
                {"replicated x4", replicated}};

  std::uint64_t sharded_queries = 0, replicated_queries = 0;
  for (auto& row : rows) {
    const auto nu = min_capacity(row.datasets);
    const DistributedDatabase db(std::move(row.datasets), nu);
    const auto result = run_sequential_sampler(db);
    const double a = double(db.total()) / (double(nu) * double(universe));
    if (std::string(row.name) == "range-sharded x1")
      sharded_queries = result.stats.total_sequential();
    if (std::string(row.name) == "replicated x4")
      replicated_queries = result.stats.total_sequential();
    table.add_row({row.name, TextTable::cell(db.total()),
                   TextTable::cell(nu), TextTable::cell(a, 4),
                   TextTable::cell(result.stats.total_sequential()),
                   TextTable::cell(result.fidelity, 9)});
  }
  table.print(std::cout, "T12a: placement strategies for one logical store");
  reporter.add("T12a: placement strategies for one logical store", table);
  const bool invariant = sharded_queries == replicated_queries;
  std::printf("\nreplication scales M and nu together -> a and the query "
              "count are UNCHANGED: %s\n\n",
              invariant ? "confirmed" : "VIOLATED");

  // Over-provisioned capacity: fixed data, growing ν.
  TextTable caps({"nu", "queries", "sqrt(nu) ratio"});
  std::uint64_t base_queries = 0;
  bool scaling_ok = true;
  for (const std::uint64_t nu : {2u, 8u, 32u, 128u}) {
    const auto db = bench::controlled_db(universe, machines, 32, 2, nu);
    const auto result = run_sequential_sampler(db);
    if (nu == 2) base_queries = result.stats.total_sequential();
    const double measured_ratio =
        double(result.stats.total_sequential()) / double(base_queries);
    const double predicted_ratio = std::sqrt(double(nu) / 2.0);
    scaling_ok =
        scaling_ok && std::abs(measured_ratio / predicted_ratio - 1.0) < 0.35;
    caps.add_row({TextTable::cell(nu),
                  TextTable::cell(result.stats.total_sequential()),
                  TextTable::cell(measured_ratio / predicted_ratio, 3)});
  }
  caps.print(std::cout, "T12b: cost of over-provisioned capacity (fixed M)");
  reporter.add("T12b: cost of over-provisioned capacity (fixed M)", caps);
  std::printf("\nqueries grow as sqrt(nu) at fixed M: %s\n",
              scaling_ok ? "PASS" : "FAIL");
  return reporter.finish((invariant && scaling_ok) ? 0 : 1);
}
