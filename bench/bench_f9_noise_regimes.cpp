// Experiment F9 — two noise regimes, two winners. Which query model is
// more fault tolerant depends on WHERE the noise lives:
//
//   * per-ROUND noise (storage/latency-dominated decoherence): the
//     parallel model's Θ(√(νN/M)) rounds beat the sequential model's
//     Θ(n√(νN/M)) queries — F6's result;
//   * per-QUBIT-TRIP noise (transport-dominated): the parallel model
//     moves ~2(e+c+1)/(e+c) times MORE qubits per D (it parallelises the
//     same traffic plus control qubits), so the sequential model is the
//     robust one.
//
// The architecture lesson the paper's Section 6 asks about: the right
// topology depends on the channel physics, and this library can tell you
// which.
#include <cmath>

#include "bench_util.hpp"
#include "sampling/noisy_sampler.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  bench::Reporter reporter(argc, argv, "F9",
                "Noise regimes — per-round favours parallel, per-qubit-trip "
                "favours sequential");

  const std::size_t machines = 6;
  const auto db = bench::controlled_db(128, machines, 16, 2, 4);
  const std::size_t trajectories = 48;

  TextTable table({"regime", "rate", "seq_fid", "par_fid", "winner"});
  bool round_parallel_wins = true;
  bool trip_sequential_wins = true;

  for (const double p : {0.005, 0.01, 0.02}) {
    NoiseModel round_noise;
    round_noise.dephasing_per_round = p;
    Rng r1(11), r2(12);
    const auto seq_round = run_noisy_sampler(db, QueryMode::kSequential,
                                             round_noise, trajectories, r1);
    const auto par_round = run_noisy_sampler(db, QueryMode::kParallel,
                                             round_noise, trajectories, r2);
    round_parallel_wins =
        round_parallel_wins &&
        par_round.mean_fidelity > seq_round.mean_fidelity;
    table.add_row({"per-round", TextTable::cell(p, 3),
                   TextTable::cell(seq_round.mean_fidelity, 4),
                   TextTable::cell(par_round.mean_fidelity, 4),
                   par_round.mean_fidelity > seq_round.mean_fidelity
                       ? "parallel"
                       : "sequential"});
  }
  for (const double p : {0.0005, 0.001, 0.002}) {
    NoiseModel trip_noise;
    trip_noise.dephasing_per_qubit_trip = p;
    Rng r1(21), r2(22);
    const auto seq_trip = run_noisy_sampler(db, QueryMode::kSequential,
                                            trip_noise, trajectories, r1);
    const auto par_trip = run_noisy_sampler(db, QueryMode::kParallel,
                                            trip_noise, trajectories, r2);
    trip_sequential_wins =
        trip_sequential_wins &&
        seq_trip.mean_fidelity >= par_trip.mean_fidelity - 0.02;
    table.add_row({"per-qubit-trip", TextTable::cell(p, 4),
                   TextTable::cell(seq_trip.mean_fidelity, 4),
                   TextTable::cell(par_trip.mean_fidelity, 4),
                   seq_trip.mean_fidelity >= par_trip.mean_fidelity
                       ? "sequential"
                       : "parallel"});
  }
  table.print(std::cout, "F9: winner by noise regime (n = 6)");
  reporter.add("F9: winner by noise regime (n = 6)", table);

  const bool pass = round_parallel_wins && trip_sequential_wins;
  std::printf("\nparallel wins every per-round row, sequential (>=) every "
              "per-trip row: %s\n",
              pass ? "PASS" : "FAIL");
  return reporter.finish(pass ? 0 : 1);
}
