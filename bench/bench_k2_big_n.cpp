// Experiment K2 — sampling past the dense memory ceiling (docs/PERF.md).
//
// The dense statevector spends 16 bytes on every one of the
// 2·(ν+1)·N amplitudes whether or not they are nonzero; the paper's AA
// trajectory keeps the coordinator state supported on a handful of
// (count, flag) fibers, so the sorted-pairs sparse backend
// (qsim/state_backend.hpp, 24 bytes per stored nonzero) holds the same
// evolution in a fraction of the memory. This bench pins that claim to an
// equal-memory budget:
//
//   * the BUDGET is the dense footprint at the ceiling universe N_d —
//     every byte the dense backend needs at the largest N it can afford;
//   * the sparse run samples at N_s = 8·N_d under a HARD amplitude budget
//     of budget/24 entries — if the trajectory ever needed more memory
//     than the dense ceiling run, the backend raises the typed
//     SparseStateError and the bench fails. The equal-memory claim is
//     enforced by construction, not merely reported.
//
// Both runs must finish with fidelity ≥ 1 − 1e-9 against the (sparse-built,
// O(support)) target state, and every element drawn from the big-N state
// must be a member of the database — "samples correctly", not merely
// "does not crash". Exit is non-zero iff any gate fails (the CI perf-smoke
// leg runs this next to K1). Wall-clock is reported for context only.
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "qsim/measure.hpp"
#include "qsim/state_backend.hpp"
#include "sampling/samplers.hpp"

namespace {

using namespace qs;

/// Bytes per stored amplitude: dense always pays 16 (one cplx) per basis
/// state; the sparse backend pays 24 (uint64 index + cplx) per NONZERO.
constexpr double kDenseBytesPerAmp = 16.0;
constexpr double kSparseBytesPerEntry = 24.0;

/// Per-machine capacity. ν inflates the dense dimension 2·(ν+1)·N while
/// the sparse support only ever occupies the counts the workload realises
/// ({0, 1} here) — exactly the asymmetry the backend exploits.
constexpr std::uint64_t kNu = 31;
constexpr std::size_t kMachines = 8;
/// Distinct elements stored (multiplicity 1, round-robin): keeps every
/// machine under ν and the AA round count ~ √(νN/support) tractable.
constexpr std::size_t kSupport = 192;

std::size_t dense_dim(std::size_t universe) {
  return universe * 2 * (kNu + 1);
}

double dense_bytes(std::size_t universe) {
  return kDenseBytesPerAmp * static_cast<double>(dense_dim(universe));
}

struct RunResult {
  std::string backend;
  std::size_t universe = 0;
  double fidelity = 0.0;
  std::uint64_t queries = 0;
  std::size_t peak_amplitudes = 0;  ///< stored: dim (dense) / peak nnz
  double peak_bytes = 0.0;
  double wall_ms = 0.0;
  bool budget_exceeded = false;
  bool draws_ok = true;
};

RunResult run_one(const std::string& name, std::size_t universe,
                  const StateBackendConfig& backend) {
  const auto db =
      bench::controlled_db(universe, kMachines, kSupport,
                           /*multiplicity=*/1, kNu);
  SamplerOptions options;
  options.backend = backend;

  RunResult out;
  out.backend = name;
  out.universe = universe;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    const auto result = run_sequential_sampler(db, options);
    const auto t1 = std::chrono::steady_clock::now();
    out.wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    out.fidelity = result.fidelity;
    out.queries = result.stats.total_sequential();
    if (backend.kind == StateBackendKind::kSparse) {
      out.peak_amplitudes = result.state.sparse_peak_amplitudes();
      out.peak_bytes =
          kSparseBytesPerEntry * static_cast<double>(out.peak_amplitudes);
    } else {
      out.peak_amplitudes = result.state.dim();
      out.peak_bytes = dense_bytes(universe);
    }
    // "Samples correctly": every element measured from the final state
    // must be one the database stores.
    Rng rng(99);
    for (int draw = 0; draw < 64; ++draw) {
      const auto elem =
          measure_register(result.state, result.registers.elem, rng);
      out.draws_ok = out.draws_ok && db.total_count(elem) > 0;
    }
  } catch (const SparseStateError&) {
    // The trajectory needed more memory than the dense-ceiling budget:
    // the equal-memory claim fails, typed — never an OOM kill.
    out.budget_exceeded = true;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qs;
  bench::Reporter reporter(
      argc, argv, "K2",
      "the sparse StateBackend samples correctly (fidelity >= 1-1e-9) at a "
      "universe 8x beyond the dense backend's memory ceiling, inside the "
      "SAME byte budget the dense ceiling run spends");

  // Dense ceiling: the largest universe the byte budget admits. The budget
  // is deliberately modest so the bench runs everywhere; the RATIO is the
  // claim, and it is scale-free in N.
  const std::size_t dense_ceiling_n = 2048;
  const double budget = dense_bytes(dense_ceiling_n);
  const std::size_t big_n = 8 * dense_ceiling_n;
  const auto sparse_budget =
      static_cast<std::uint64_t>(budget / kSparseBytesPerEntry);

  const auto dense_run =
      run_one("dense", dense_ceiling_n, StateBackendConfig::dense());
  const auto sparse_run =
      run_one("sparse", big_n, StateBackendConfig::sparse(sparse_budget));

  TextTable table({"backend", "N", "dim", "fidelity", "queries",
                   "peak amps", "peak MiB", "budget MiB", "wall ms"});
  for (const auto& run : {dense_run, sparse_run}) {
    table.add_row(
        {run.backend, TextTable::cell(std::uint64_t{run.universe}),
         TextTable::cell(std::uint64_t{dense_dim(run.universe)}),
         run.budget_exceeded ? "BUDGET EXCEEDED"
                             : TextTable::cell(run.fidelity, 12),
         TextTable::cell(std::uint64_t{run.queries}),
         TextTable::cell(std::uint64_t{run.peak_amplitudes}),
         TextTable::cell(run.peak_bytes / (1024.0 * 1024.0), 2),
         TextTable::cell(budget / (1024.0 * 1024.0), 2),
         TextTable::cell(run.wall_ms, 1)});
  }
  table.print(std::cout, "K2: sampling past the dense memory ceiling");
  reporter.add("K2: sampling past the dense memory ceiling", table);

  // What the dense backend would have needed at N_s — the ceiling line.
  TextTable claim({"quantity", "value"});
  claim.add_row({"universe ratio N_s / N_d",
                 TextTable::cell(static_cast<double>(big_n) /
                                     static_cast<double>(dense_ceiling_n),
                                 1)});
  claim.add_row({"dense MiB at N_s (hypothetical)",
                 TextTable::cell(dense_bytes(big_n) / (1024.0 * 1024.0), 2)});
  claim.add_row(
      {"sparse peak MiB at N_s",
       TextTable::cell(sparse_run.peak_bytes / (1024.0 * 1024.0), 2)});
  claim.add_row(
      {"memory ratio dense(N_s) / sparse(N_s)",
       sparse_run.peak_bytes > 0.0
           ? TextTable::cell(dense_bytes(big_n) / sparse_run.peak_bytes, 1)
           : "-"});
  claim.print(std::cout, "K2: equal-memory claim");
  reporter.add("K2: equal-memory claim", claim);

  bool ok = true;
  const auto gate = [&ok](bool pass, const char* what) {
    if (!pass) {
      std::printf("FAILED: %s\n", what);
      ok = false;
    }
  };
  gate(!dense_run.budget_exceeded && dense_run.fidelity >= 1.0 - 1e-9,
       "dense ceiling run must sample exactly");
  gate(!sparse_run.budget_exceeded,
       "sparse big-N run exceeded the dense-ceiling byte budget");
  gate(sparse_run.fidelity >= 1.0 - 1e-9,
       "sparse big-N run must sample exactly (fidelity >= 1-1e-9)");
  gate(sparse_run.draws_ok,
       "every element drawn from the big-N state must be in the database");
  gate(sparse_run.peak_bytes <= budget,
       "sparse peak footprint must fit the dense-ceiling budget");
  gate(big_n >= 8 * dense_ceiling_n, "N_s must be >= 8x the dense ceiling");
  return reporter.finish(ok ? 0 : 1);
}
