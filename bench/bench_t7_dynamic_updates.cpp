// Experiment T7 — dynamic databases (Section 3): oracle updates are O(1)
// (left-multiplication by the fixed shift U/U†), and the sampler remains
// exact after arbitrary insert/delete streams, with query cost tracking the
// LIVE value of √(νN/M).
#include <cmath>

#include "bench_util.hpp"
#include "sampling/samplers.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  bench::Reporter reporter(argc, argv, "T7",
                "Dynamic updates — O(1) oracle maintenance, sampler exact "
                "after every update burst");

  const std::size_t universe = 128;
  const std::size_t machines = 4;
  Rng rng(7);
  auto datasets = workload::uniform_random(universe, machines, 64, rng);
  const auto nu = min_capacity(datasets) + 4;
  DistributedDatabase db(std::move(datasets), nu);

  TextTable table({"burst", "updates", "M(live)", "queries", "predicted",
                   "fidelity"});
  bool pass = true;
  std::uint64_t total_updates = 0;
  for (std::uint64_t burst = 0; burst < 8; ++burst) {
    // A mixed stream biased toward deletions in later bursts so M moves
    // through a wide range.
    std::uint64_t updates = 0;
    for (int u = 0; u < 40; ++u) {
      const auto j = static_cast<std::size_t>(rng.uniform_below(machines));
      const auto i = static_cast<std::size_t>(rng.uniform_below(universe));
      const bool insert = rng.bernoulli(burst < 4 ? 0.7 : 0.3);
      if (insert && db.total_count(i) < db.nu() &&
          db.machine(j).data().count(i) < db.machine(j).capacity()) {
        db.insert(j, i);
        ++updates;
      } else if (!insert && db.machine(j).data().count(i) > 0) {
        db.erase(j, i);
        ++updates;
      }
    }
    total_updates += updates;
    if (db.total() == 0) continue;

    const auto result = run_sequential_sampler(db);
    const auto predicted =
        predicted_sequential_queries(result.plan, machines);
    pass = pass && result.fidelity > 1.0 - 1e-9 &&
           result.stats.total_sequential() == predicted;
    table.add_row({TextTable::cell(burst), TextTable::cell(updates),
                   TextTable::cell(db.total()),
                   TextTable::cell(result.stats.total_sequential()),
                   TextTable::cell(predicted),
                   TextTable::cell(result.fidelity, 12)});
  }
  table.print(std::cout, "T7: exactness under a live update stream");
  reporter.add("T7: exactness under a live update stream", table);
  std::printf("\n%llu total updates applied, every post-burst sample exact "
              "with predicted cost: %s\n",
              (unsigned long long)total_updates, pass ? "PASS" : "FAIL");
  return reporter.finish(pass ? 0 : 1);
}
