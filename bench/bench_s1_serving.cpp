// Experiment S1 — serving-layer load bench (docs/SERVING.md).
//
// Closed-loop clients hammer one SampleService with same-version sampling
// jobs: each client submits a job, blocks on its ticket, and immediately
// submits the next. Because every job targets the same dataset version,
// the serving layer prepares the sampling state ONCE and coalesces the
// whole run onto it — so throughput scales with the worker pool while the
// serial SampleServer baseline pays a full Θ(n√(νN/M)) re-preparation per
// draw. The table reports throughput and p50/p99 job latency per client
// count, plus the speedup over the serial baseline at the same job count.
//
//   bench_s1_serving [--json PATH] [--smoke] [--jobs N] [--workers W]
//
// Exit code: 0 when the 8-client speedup over the serial server is ≥ 4×
// and every job completed and verified; 1 otherwise (the CI serving-leg
// gate; acceptance bar of the dqs-serve PR).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "apps/sample_server.hpp"
#include "bench_util.hpp"
#include "serving/service.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace qs;

double percentile_ms(std::vector<double>& latencies_ns, double q) {
  if (latencies_ns.empty()) return 0.0;
  std::sort(latencies_ns.begin(), latencies_ns.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(latencies_ns.size() - 1));
  return latencies_ns[rank] / 1e6;
}

struct LoadResult {
  double throughput = 0.0;  ///< jobs per second
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t completed = 0;
};

/// Closed loop: `clients` threads, each running `jobs_per_client` blocking
/// submit→wait cycles against the shared service.
LoadResult drive(serving::SampleService& service, std::size_t clients,
                 std::size_t jobs_per_client) {
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::uint64_t> completed(clients, 0);
  const auto start = telemetry::monotonic_ns();
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      for (std::size_t k = 0; k < jobs_per_client; ++k) {
        serving::JobRequest request;
        request.client_seed = c * 1000 + k;
        const auto t0 = telemetry::monotonic_ns();
        const auto outcome = service.run(std::move(request));
        latencies[c].push_back(
            static_cast<double>(telemetry::monotonic_ns() - t0));
        if (outcome.ok()) ++completed[c];
      }
    });
  }
  for (auto& t : pool) t.join();
  const auto elapsed = telemetry::monotonic_ns() - start;

  LoadResult result;
  std::vector<double> all;
  for (std::size_t c = 0; c < clients; ++c) {
    result.completed += completed[c];
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
  }
  result.throughput =
      static_cast<double>(result.completed) / (double(elapsed) / 1e9);
  result.p50_ms = percentile_ms(all, 0.50);
  result.p99_ms = percentile_ms(all, 0.99);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter(
      argc, argv, "S1",
      "Serving-layer load: throughput and p50/p99 latency vs concurrent "
      "clients; request coalescing amortises one preparation per version "
      "against the serial re-prepare-per-draw SampleServer baseline");
  const CliArgs args(argc, argv);
  const bool smoke = args.get("smoke", false);
  const auto jobs_per_client =
      static_cast<std::size_t>(args.get("jobs", smoke ? std::uint64_t{3}
                                                      : std::uint64_t{16}));
  const auto workers =
      static_cast<std::size_t>(args.get("workers", std::uint64_t{8}));

  // Large enough that preparation visibly dominates one draw, small enough
  // that the serial baseline finishes promptly.
  const auto make = [] { return bench::uniform_db(64, 3, 24, 17, 2); };

  // Serial baseline: one thread, one SampleServer, every draw re-prepares.
  const std::size_t baseline_jobs = std::max<std::size_t>(
      8 * jobs_per_client / 4, 4);  // keep the serial run bounded
  SampleServer serial(make(), QueryMode::kSequential);
  std::vector<double> serial_latencies;
  const auto serial_start = telemetry::monotonic_ns();
  for (std::size_t k = 0; k < baseline_jobs; ++k) {
    Rng rng = rng_for_stream(k, k + 1);
    const auto t0 = telemetry::monotonic_ns();
    (void)serial.draw(rng);
    serial_latencies.push_back(
        static_cast<double>(telemetry::monotonic_ns() - t0));
  }
  const auto serial_elapsed = telemetry::monotonic_ns() - serial_start;
  const double serial_throughput =
      static_cast<double>(baseline_jobs) / (double(serial_elapsed) / 1e9);

  bool ok = true;
  double speedup_at_8 = 0.0;
  TextTable table({"clients", "jobs", "throughput jobs/s", "p50 ms", "p99 ms",
                   "speedup vs serial"});
  table.add_row({"serial", TextTable::cell(std::uint64_t{baseline_jobs}),
                 TextTable::cell(serial_throughput, 1),
                 TextTable::cell(percentile_ms(serial_latencies, 0.50), 3),
                 TextTable::cell(percentile_ms(serial_latencies, 0.99), 3),
                 TextTable::cell(1.0, 2)});

  for (const std::size_t clients : {1u, 2u, 4u, 8u, 16u}) {
    serving::ServiceOptions options;
    options.workers = workers;
    serving::SampleService service(make(), options);
    const LoadResult load = drive(service, clients, jobs_per_client);
    service.shutdown();

    const auto stats = service.stats();
    ok = ok && load.completed == clients * jobs_per_client;
    ok = ok && stats.rebuilds == 1;  // one version ⇒ exactly one prep
    const double speedup = load.throughput / serial_throughput;
    if (clients == 8) speedup_at_8 = speedup;
    table.add_row({TextTable::cell(std::uint64_t{clients}),
                   TextTable::cell(load.completed),
                   TextTable::cell(load.throughput, 1),
                   TextTable::cell(load.p50_ms, 3),
                   TextTable::cell(load.p99_ms, 3),
                   TextTable::cell(speedup, 2)});
  }
  table.print(std::cout, "S1: serving throughput and latency vs clients");
  reporter.add("S1: serving throughput and latency vs clients", table);

  std::printf("speedup at 8 clients: %.2fx (gate: >= 4x)\n", speedup_at_8);
  if (speedup_at_8 < 4.0) {
    std::printf("FAILED: coalesced serving must beat the serial server by "
                ">= 4x at 8 concurrent clients\n");
    ok = false;
  }
  return reporter.finish(ok ? 0 : 1);
}
