// Experiment T15 — distributed heavy-hitter search (Dürr–Høyer over the
// multiplicity oracle): find argmax_i c_i without downloading a histogram.
// Cost grows ~√N (Grover regime) vs the classical nN scan; the table also
// reports the ratchet-step count (expected O(log of the distinct
// multiplicity levels)).
#include <cmath>
#include <vector>

#include "bench_util.hpp"
#include "apps/max_finding.hpp"
#include "common/stats.hpp"
#include "sampling/classical.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  bench::Reporter reporter(argc, argv, "T15",
                "Heavy-hitter search — Durr-Hoyer argmax c_i vs the "
                "classical nN scan");

  TextTable table({"N", "heavy(c)", "q_mean", "q_p90", "classical(nN)",
                   "advantage", "ratchets", "correct"});
  std::vector<double> ns, costs;
  bool all_correct = true;
  for (const std::size_t universe : {128u, 256u, 512u, 1024u, 2048u}) {
    // 8 keys present, multiplicities 1..4, unique maximum at key 0.
    std::vector<Dataset> datasets = {Dataset(universe), Dataset(universe)};
    datasets[0].insert(0, 4);
    for (std::size_t k = 1; k < 8; ++k)
      datasets[k % 2].insert(k * (universe / 8), 1 + k % 3);
    const DistributedDatabase db(std::move(datasets), 4);

    Accumulator cost, ratchets;
    std::vector<double> runs;
    std::size_t correct = 0;
    const std::size_t repeats = 12;
    for (std::size_t r = 0; r < repeats; ++r) {
      Rng rng(900 + 31 * r + universe);
      const auto result = find_heaviest_key(db, QueryMode::kSequential, rng);
      correct += (result.element == 0 && result.multiplicity == 4);
      runs.push_back(double(result.stats.total_sequential()));
      cost.add(runs.back());
      ratchets.add(double(result.ratchet_steps));
    }
    all_correct = all_correct && correct == repeats;
    std::sort(runs.begin(), runs.end());
    const double p90 = runs[runs.size() * 9 / 10];
    const std::uint64_t classical = 2ull * universe;
    ns.push_back(double(universe));
    costs.push_back(cost.mean());
    table.add_row({TextTable::cell(std::uint64_t{universe}),
                   TextTable::cell(std::uint64_t{4}),
                   TextTable::cell(cost.mean(), 0),
                   TextTable::cell(p90, 0), TextTable::cell(classical),
                   TextTable::cell(double(classical) / cost.mean(), 2),
                   TextTable::cell(ratchets.mean(), 1),
                   TextTable::cell(std::uint64_t{correct}) + "/" +
                       TextTable::cell(std::uint64_t{repeats})});
  }
  table.print(std::cout, "T15: argmax search cost");
  reporter.add("T15: argmax search cost", table);

  const auto fit = fit_power_law(ns, costs);
  std::printf("\ncost exponent in N: %.2f (Grover theory ~0.5; classical "
              "scan is 1.0); correct in every run: %s\n",
              fit.slope, all_correct ? "yes" : "NO");
  const bool pass = all_correct && fit.slope < 0.75;
  std::printf("heavy hitter always found with sublinear scaling: %s\n",
              pass ? "PASS" : "FAIL");
  return reporter.finish(pass ? 0 : 1);
}
