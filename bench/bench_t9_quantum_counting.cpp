// Experiment T9 — quantum counting of the database size M (the subroutine
// behind the "M is public" assumption): maximum-likelihood amplitude
// estimation achieves error ~ 1/Q (Heisenberg-like) vs the classical
// probing error ~ 1/√Q — a quadratic precision advantage at equal query
// budget.
#include <cmath>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "estimation/amplitude_estimation.hpp"
#include "estimation/iqae.hpp"
#include "estimation/qpe_counting.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  bench::Reporter reporter(argc, argv, "T9",
                "Quantum counting — estimation error vs query budget: "
                "quantum ~ 1/Q vs classical ~ 1/sqrt(Q)");

  const auto db = bench::controlled_db(256, 2, 32, 2, 4);  // M = 64
  const double truth = 64.0;
  const std::size_t repeats = 10;

  TextTable table({"rounds", "q_queries", "q_rms_err", "cl_probes",
                   "cl_rms_err"});
  std::vector<double> budgets, qerrs, cerrs;
  for (const std::size_t rounds : {2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    double q_se = 0.0;
    std::uint64_t q_cost = 0;
    for (std::size_t r = 0; r < repeats; ++r) {
      Rng rng(1000 + 37 * r + rounds);
      const auto estimate = estimate_total_count(
          db, QueryMode::kParallel, exponential_schedule(rounds, 32), rng);
      q_se += (estimate.m_hat - truth) * (estimate.m_hat - truth);
      q_cost = estimate.amplitude.oracle_cost;
    }
    const double q_rms = std::sqrt(q_se / repeats);

    // Classical baseline at the SAME budget (probes = quantum oracle cost).
    double c_se = 0.0;
    for (std::size_t r = 0; r < repeats; ++r) {
      Rng rng(2000 + 37 * r + rounds);
      const auto estimate = classical_count_estimate(db, q_cost, rng);
      c_se += (estimate.m_hat - truth) * (estimate.m_hat - truth);
    }
    const double c_rms = std::sqrt(c_se / repeats);

    budgets.push_back(static_cast<double>(q_cost));
    qerrs.push_back(std::max(q_rms, 1e-3));
    cerrs.push_back(std::max(c_rms, 1e-3));
    table.add_row({TextTable::cell(std::uint64_t{rounds}),
                   TextTable::cell(q_cost), TextTable::cell(q_rms, 3),
                   TextTable::cell(q_cost), TextTable::cell(c_rms, 3)});
  }
  table.print(std::cout, "T9: counting error vs budget");
  reporter.add("T9: counting error vs budget", table);

  const auto q_fit = fit_power_law(budgets, qerrs);
  const auto c_fit = fit_power_law(budgets, cerrs);
  std::printf("\nerror scaling exponents: quantum %.2f (theory ~ -1), "
              "classical %.2f (theory -0.5)\n",
              q_fit.slope, c_fit.slope);

  // Canonical QPE-based counting (BHMT Theorem 12) as a cross-check at a
  // few phase resolutions.
  TextTable qpe_table({"phase_bits", "queries", "M_hat", "|err|",
                       "resolution bound"});
  for (const std::size_t bits : {5u, 6u, 7u, 8u}) {
    Rng rng(4242 + bits);
    QpeEstimate details;
    const double m_hat = qpe_estimate_total_count(db, QueryMode::kParallel,
                                                  bits, 11, rng, &details);
    const double a = truth / (double(db.nu()) * 256.0);
    const double bound =
        (2.0 * 3.14159265 * std::sqrt(a * (1 - a)) / double(1u << bits) +
         9.87 / double(1ull << (2 * bits))) *
        double(db.nu()) * 256.0;
    qpe_table.add_row({TextTable::cell(std::uint64_t{bits}),
                       TextTable::cell(details.oracle_cost),
                       TextTable::cell(m_hat, 2),
                       TextTable::cell(std::abs(m_hat - truth), 2),
                       TextTable::cell(bound, 2)});
  }
  qpe_table.print(std::cout, "T9b: canonical (QPE) counting cross-check");
  reporter.add("T9b: canonical (QPE) counting cross-check", qpe_table);

  // IQAE: adaptive schedule with a rigorous confidence interval.
  TextTable iqae_table({"epsilon", "queries", "M interval", "contains M",
                        "rounds"});
  bool iqae_ok = true;
  for (const double eps : {0.02, 0.005, 0.002}) {
    Rng rng(5151 + int(1000 * eps));
    IqaeOptions options;
    options.epsilon = eps;
    const auto count =
        iqae_estimate_total_count(db, QueryMode::kParallel, options, rng);
    const bool contains = count.m_lo <= truth + 1e-6 &&
                          count.m_hi >= truth - 1e-6;
    iqae_ok = iqae_ok && count.amplitude.converged;
    iqae_table.add_row(
        {TextTable::cell(eps, 3),
         TextTable::cell(count.amplitude.oracle_cost),
         "[" + TextTable::cell(count.m_lo, 1) + ", " +
             TextTable::cell(count.m_hi, 1) + "]",
         contains ? "yes" : "NO",
         TextTable::cell(std::uint64_t{count.amplitude.rounds})});
  }
  iqae_table.print(std::cout,
                   "T9c: IQAE — adaptive counting with confidence "
                   "intervals");
  reporter.add("T9c: IQAE — adaptive counting with confidence "
                   "intervals", iqae_table);
  // Shape check: quantum decays strictly faster and beats classical at the
  // largest budget.
  const bool pass = q_fit.slope < c_fit.slope - 0.2 &&
                    qerrs.back() < cerrs.back();
  std::printf("quantum decays faster and wins at large budgets: %s\n",
              pass ? "PASS" : "FAIL");
  return reporter.finish(pass ? 0 : 1);
}
