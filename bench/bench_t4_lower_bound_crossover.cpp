// Experiment T4 — Theorem 5.1 (shape): the query budget below which NO
// oblivious algorithm can succeed scales as √(κ_k N / M).
//
// For each hard input we compute the certified lower bound t* — the first t
// where the Lemma 5.8 ceiling 4(m_k/N)t² can reach the Lemma 5.7/B.4 floor
// M_k/(2M) — and (a) confirm the paper's sampler indeed crosses the floor
// only at t ≥ t*, and (b) fit t* against √(κ_k N / M) across the sweep.
#include <cmath>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "lowerbound/potential.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  bench::Reporter reporter(argc, argv, "T4",
                "Theorem 5.1 shape — certified minimum queries t* ~ "
                "sqrt(kappa_k N / M)");

  TextTable table({"N", "m_k", "kappa_k", "M", "sqrt(kNM)", "t*",
                   "first_cross(meas)", "fid"});
  std::vector<double> xs, ys;
  bool sound = true;

  struct Config {
    std::size_t universe, support;
    std::uint64_t multiplicity;
  };
  // Wide N range so the integer rounding of t* (a ceiling) cannot distort
  // the fitted exponent.
  const Config configs[] = {
      {64, 2, 2},  {128, 2, 2},  {256, 2, 2},  {512, 2, 2},
      {1024, 2, 2}, {2048, 2, 2}, {4096, 2, 2}, {256, 4, 4},
      {1024, 4, 2},
  };

  for (const auto& c : configs) {
    const auto base = make_canonical_hard_input(c.universe, 2, 0, c.support,
                                                c.multiplicity);
    Rng rng(31);
    PotentialOptions options;
    options.family_samples = 8;
    const auto result =
        measure_potential(base, 0, c.multiplicity, options, rng);

    const double m_total = static_cast<double>(c.support) *
                           static_cast<double>(c.multiplicity);
    const double theory = std::sqrt(static_cast<double>(c.multiplicity) *
                                    static_cast<double>(c.universe) /
                                    m_total);
    const auto t_star = result.crossover(result.floor());

    // First measured t where the potential actually reaches the floor.
    std::size_t first_cross = result.d_t.size();
    for (std::size_t t = 0; t < result.d_t.size(); ++t) {
      if (result.d_t[t] >= result.floor()) {
        first_cross = t + 1;
        break;
      }
    }
    // Soundness of the certificate: the real algorithm cannot cross the
    // floor before t*.
    sound = sound && (first_cross >= t_star);

    xs.push_back(theory);
    ys.push_back(static_cast<double>(t_star));
    table.add_row({TextTable::cell(std::uint64_t{c.universe}),
                   TextTable::cell(std::uint64_t{c.support}),
                   TextTable::cell(c.multiplicity),
                   TextTable::cell(std::uint64_t(m_total)),
                   TextTable::cell(theory, 2), TextTable::cell(std::uint64_t{t_star}),
                   TextTable::cell(std::uint64_t{first_cross}),
                   TextTable::cell(result.mean_final_fidelity, 9)});
  }
  table.print(std::cout, "T4: certified lower bound vs theory");
  reporter.add("T4: certified lower bound vs theory", table);

  const auto fit = fit_power_law(xs, ys);
  std::printf("\nfit: t* ~ sqrt(kappa N/M)^%.3f (R2=%.4f); theory exponent "
              "1.000\n",
              fit.slope, fit.r_squared);
  std::printf("sampler never crosses the floor before t*: %s\n",
              sound ? "PASS" : "FAIL");
  const bool pass = std::abs(fit.slope - 1.0) < 0.1 && sound;
  return reporter.finish(pass ? 0 : 1);
}
