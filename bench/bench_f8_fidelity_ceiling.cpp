// Experiment F8 — the lower bound read as a fidelity CEILING. Chaining
// Lemma 5.8 (D_t ≤ 4(m_k/N)t²) with the Appendix-B decomposition
// (D ≥ (√F_t − √E_t)², F_t ≥ M_k/2M, E_t = 2(1 − √F)) gives, for any
// oblivious algorithm after t machine-k queries,
//
//   √(2(1−√F)) ≥ √(M_k/2M) − 2t√(m_k/N)
//   ⇒  F ≤ (1 − ((√(M_k/2M) − 2t√(m_k/N))₊)² / 2)².
//
// The bench traces the paper's own budgeted sampler against this ceiling:
// measured fidelity must sit below it at every budget, and the two curves
// must close up as t passes the certified crossover.
#include <algorithm>
#include <cmath>

#include "bench_util.hpp"
#include "lowerbound/potential.hpp"
#include "sampling/samplers.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  bench::Reporter reporter(argc, argv, "F8",
                "Fidelity ceiling from the potential argument vs the "
                "budgeted sampler");

  // Canonical hard input: machine 0 of 2 holds 8 elements x2 in N = 512.
  const std::size_t universe = 512;
  const double m_k = 8.0, m_total = 16.0;
  const auto base = make_canonical_hard_input(universe, 2, 0, 8, 2);
  const DistributedDatabase db(base, 2);

  const auto ceiling = [&](double t) {
    const double gap = std::sqrt(m_total / (2.0 * m_total)) -
                       2.0 * t * std::sqrt(m_k / double(universe));
    const double clipped = std::max(gap, 0.0);
    const double root_f = 1.0 - clipped * clipped / 2.0;
    return root_f * root_f;
  };

  const AAPlan plan = plan_zero_error(
      double(db.total()) / (2.0 * double(universe)));
  const std::size_t full = plan.full_iterations + (plan.needs_final ? 1 : 0);

  TextTable table({"iterations", "machine0_queries_t", "fidelity",
                   "ceiling F(t)", "respected"});
  bool pass = true;
  for (std::size_t budget = 0; budget <= full;
       budget += std::max<std::size_t>(1, full / 16)) {
    const auto result =
        run_budgeted_sampler(db, QueryMode::kSequential, budget);
    // Machine-0 oracle calls: 2 per D application.
    const double t = 2.0 * double(1 + 2 * budget);
    const double cap = ceiling(t);
    const bool ok = result.fidelity <= cap + 1e-9;
    pass = pass && ok;
    table.add_row({TextTable::cell(std::uint64_t{budget}),
                   TextTable::cell(t, 0),
                   TextTable::cell(result.fidelity, 8),
                   TextTable::cell(cap, 8), ok ? "yes" : "NO"});
  }
  table.print(std::cout, "F8: measured fidelity vs theoretical ceiling");
  reporter.add("F8: measured fidelity vs theoretical ceiling", table);
  std::printf("\nmeasured fidelity below the potential-derived ceiling at "
              "every budget: %s\n",
              pass ? "PASS" : "FAIL");
  return reporter.finish(pass ? 0 : 1);
}
