// Experiment K1 — compiled-operator kernels (qsim/compiled_op) vs the
// naive std::function dispatch they replace.
//
// Every kernel class of docs/PERF.md is timed both ways on coordinator-
// shaped layouts [elem, count, flag]:
//
//   permutation — an adder-style relabelling (digit extraction per
//       amplitude). Legacy re-evaluates the std::function map on every
//       apply; compiled replays a flat uint32 table.
//   dense(d=2)  — the count-controlled rotation 𝒰 (Eq. 6). Legacy calls
//       the selector std::function per fiber and runs the generic d-loop;
//       compiled replays the unrolled 2×2 path over a matrix pool.
//   diagonal    — a phase oracle. Legacy evaluates the phase lambda per
//       amplitude; compiled replays a flat factor array.
//   shift       — the Lemma 4.4 value shift lowered to a permutation
//       table vs the legacy digit-arithmetic kernel.
//
// Reported as ns/amplitude (best of `kReps` sweeps, so scheduler noise
// biases every column the same way), plus the bytes each compiled replay
// moves per amplitude and the effective bandwidth that implies — the
// roofline context for the SIMD/blocking work (docs/PERF.md). Wall-clock
// numbers are a trajectory record, NOT byte-reproducible — see
// docs/PERF.md before diffing them.
//
// Exit is non-zero iff any compiled kernel class is slower than its legacy
// counterpart at any dimension (the CI perf-smoke gate). With
// --baseline FILE (bench/baselines/k1_kernels.json) the gate additionally
// compares the measured speedups against the recorded pre-SIMD ones: both
// runs divide by the same unchanged naive-dispatch yardstick on the same
// machine, so the ratio current/baseline isolates the kernel-replay change
// from machine speed. The run fails unless >= min_improved_kinds kernel
// classes reach min_additional_speedup at the largest universe and every
// (kernel, N) cell stays above regression_floor.
#include <chrono>
#include <cstddef>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "qsim/compiled_op.hpp"
#include "qsim/gates.hpp"
#include "qsim/state_vector.hpp"
#include "sampling/backend.hpp"
#include "telemetry/json.hpp"

namespace {

using namespace qs;

constexpr int kReps = 7;

struct Regs {
  RegisterLayout layout;
  RegisterId elem, count, flag;
};

Regs coordinator(std::size_t universe, std::size_t nu) {
  Regs r;
  r.elem = r.layout.add("elem", universe);
  r.count = r.layout.add("count", nu + 1);
  r.flag = r.layout.add("flag", 2);
  return r;
}

StateVector seeded_state(const RegisterLayout& layout, std::uint64_t seed) {
  StateVector sv(layout);
  Rng rng(seed);
  sv.set_amplitudes(random_state(layout.total_dim(), rng));
  return sv;
}

/// Best-of-kReps wall time of `body`, in ns per amplitude of `dim`.
double time_ns_per_amp(std::size_t dim, const std::function<void()>& body) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    best = std::min(best, ns / static_cast<double>(dim));
  }
  return best;
}

struct Row {
  std::string kernel;
  std::size_t universe;
  double legacy_ns, compiled_ns;
  /// Bytes the compiled replay moves per amplitude (reads + writes of
  /// amplitudes, tables and factors — the roofline numerator).
  double bytes_per_amp;
  double speedup() const { return legacy_ns / compiled_ns; }
  /// B/ns == GB/s: effective bandwidth the compiled kernel sustains.
  double bandwidth_gbps() const { return bytes_per_amp / compiled_ns; }
};

// Bytes-moved accounting per amplitude of the compiled replays (16-byte
// complex amplitudes, 4-byte uint32 table entries):
//   permutation / shift-lowered-to-table: read src + write dst + read the
//       inverse table                              = 16 + 16 + 4 = 36
//   dense(d=2): read + write every amplitude, one table entry per 2-element
//       fiber (the 2×2 matrix pool stays in registers) = 16 + 16 + 4/2 = 34
//   diagonal: read amp + read factor + write amp       = 16 + 16 + 16 = 48
constexpr double kPermutationBytes = 36.0;
constexpr double kDense2Bytes = 34.0;
constexpr double kDiagonalBytes = 48.0;

Row bench_permutation(const Regs& r) {
  const auto& layout = r.layout;
  const auto count = r.count;
  const std::size_t counter_dim = layout.dim(count);
  // Adder-style relabelling: count ← count + f(elem) — the shape of every
  // oracle lowering in sampling/.
  const auto map = [&layout, count, counter_dim](std::size_t x) {
    const std::size_t c = layout.digit(x, count);
    const std::size_t bump = (x * 2654435761u) % counter_dim;
    return layout.with_digit(x, count, (c + bump) % counter_dim);
  };
  auto legacy_sv = seeded_state(layout, 11);
  auto compiled_sv = seeded_state(layout, 11);
  const auto op = CompiledOp::permutation(layout, map);
  const std::size_t dim = layout.total_dim();
  return {"permutation", layout.dim(r.elem),
          time_ns_per_amp(dim, [&] { legacy_sv.apply_permutation(map); }),
          time_ns_per_amp(dim, [&] { op.apply_to(compiled_sv); }),
          kPermutationBytes};
}

Row bench_dense2(const Regs& r, const std::vector<Matrix>& rotations) {
  const auto& layout = r.layout;
  const auto count = r.count;
  const auto selector = [&](std::size_t fiber_base) -> const Matrix* {
    return &rotations[layout.digit(fiber_base, count)];
  };
  auto legacy_sv = seeded_state(layout, 13);
  auto compiled_sv = seeded_state(layout, 13);
  const auto op = CompiledOp::fiber_dense(layout, r.flag, selector);
  const std::size_t dim = layout.total_dim();
  return {"dense(d=2)", layout.dim(r.elem),
          time_ns_per_amp(
              dim, [&] { legacy_sv.apply_conditioned_unitary(r.flag,
                                                             selector); }),
          time_ns_per_amp(dim, [&] { op.apply_to(compiled_sv); }),
          kDense2Bytes};
}

Row bench_diagonal(const Regs& r) {
  const auto& layout = r.layout;
  const auto elem = r.elem;
  const auto phase = [&layout, elem](std::size_t x) {
    const double angle =
        0.31 * static_cast<double>(layout.digit(x, elem) % 17);
    return cplx{std::cos(angle), std::sin(angle)};
  };
  auto legacy_sv = seeded_state(layout, 17);
  auto compiled_sv = seeded_state(layout, 17);
  const auto op = CompiledOp::diagonal(layout, phase);
  const std::size_t dim = layout.total_dim();
  return {"diagonal", layout.dim(r.elem),
          time_ns_per_amp(dim, [&] { legacy_sv.apply_diagonal(phase); }),
          time_ns_per_amp(dim, [&] { op.apply_to(compiled_sv); }),
          kDiagonalBytes};
}

Row bench_shift(const Regs& r) {
  const auto& layout = r.layout;
  const std::size_t universe = layout.dim(r.elem);
  std::vector<std::size_t> shifts(universe);
  for (std::size_t i = 0; i < universe; ++i) shifts[i] = i % 5;
  auto legacy_sv = seeded_state(layout, 19);
  auto compiled_sv = seeded_state(layout, 19);
  const auto op = CompiledOp::value_shift(layout, r.count, r.elem, shifts)
                      .lowered_to_permutation();
  const std::size_t dim = layout.total_dim();
  return {"shift", universe,
          time_ns_per_amp(dim, [&] {
            legacy_sv.apply_value_shift(r.count, r.elem, shifts);
          }),
          time_ns_per_amp(dim, [&] { op.apply_to(compiled_sv); }),
          kPermutationBytes};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qs;
  bench::Reporter reporter(
      argc, argv, "K1",
      "compiled-operator kernels at least match naive std::function "
      "dispatch on every kernel class; with --baseline, the SIMD/blocked "
      "replay beats the recorded pre-SIMD speedups on >= 2 kernel classes");
  const CliArgs args(argc, argv);
  const auto baseline_path = args.get("baseline", std::string());

  TextTable table({"kernel", "N", "legacy ns/amp", "compiled ns/amp",
                   "speedup", "bytes/amp", "GB/s"});

  const std::size_t universes[] = {256, 1024, 4096};
  const std::size_t largest = universes[std::size(universes) - 1];
  const std::size_t nu = 4;
  const auto rotations = make_u_rotations(nu, /*adjoint=*/false);

  bool any_slower = false;
  std::vector<Row> rows;
  for (const std::size_t universe : universes) {
    const auto regs = coordinator(universe, nu);
    for (const Row& row :
         {bench_permutation(regs), bench_dense2(regs, rotations),
          bench_diagonal(regs), bench_shift(regs)}) {
      any_slower = any_slower || row.speedup() < 1.0;
      rows.push_back(row);
      table.add_row({row.kernel, TextTable::cell(std::uint64_t{universe}),
                     TextTable::cell(row.legacy_ns, 3),
                     TextTable::cell(row.compiled_ns, 3),
                     TextTable::cell(row.speedup(), 2),
                     TextTable::cell(row.bytes_per_amp, 0),
                     TextTable::cell(row.bandwidth_gbps(), 2)});
    }
  }
  table.print(std::cout, "K1: compiled vs legacy kernels (ns/amplitude)");
  reporter.add("K1: compiled vs legacy kernels (ns/amplitude)", table);

  bool gate_failed = false;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    QS_REQUIRE(static_cast<bool>(in), "cannot open --baseline file");
    std::ostringstream text;
    text << in.rdbuf();
    const auto doc = telemetry::json::parse(text.str());
    QS_REQUIRE(doc.at("schema").as_string() == "dqs-k1-baseline-v1",
               "unexpected baseline schema");
    const double min_additional = doc.at("min_additional_speedup").as_number();
    const double min_kinds = doc.at("min_improved_kinds").as_number();
    const double floor = doc.at("regression_floor").as_number();

    TextTable gate({"kernel", "N", "baseline", "current", "ratio", "verdict"});
    std::size_t improved_kinds = 0;
    for (const Row& row : rows) {
      double base = 0.0;
      const auto& recorded = doc.at("rows").array;
      for (const auto& cell : recorded) {
        if (cell.at("kernel").as_string() == row.kernel &&
            static_cast<std::size_t>(cell.at("universe").as_number()) ==
                row.universe) {
          base = cell.at("speedup").as_number();
        }
      }
      QS_REQUIRE(base > 0.0,
                 "baseline has no row for " + row.kernel + " at N=" +
                     std::to_string(row.universe));
      const double ratio = row.speedup() / base;
      const bool regressed = ratio < floor;
      const bool improved = row.universe == largest && ratio >= min_additional;
      if (improved) ++improved_kinds;
      gate_failed = gate_failed || regressed;
      gate.add_row({row.kernel, TextTable::cell(std::uint64_t{row.universe}),
                    TextTable::cell(base, 2),
                    TextTable::cell(row.speedup(), 2),
                    TextTable::cell(ratio, 2),
                    regressed ? "REGRESSED"
                              : (improved ? "improved" : "ok")});
    }
    if (improved_kinds < static_cast<std::size_t>(min_kinds)) {
      gate_failed = true;
      std::printf("FAILED: only %zu kernel class(es) reached %.2fx over the "
                  "baseline at N=%zu (need %zu)\n",
                  improved_kinds, min_additional, largest,
                  static_cast<std::size_t>(min_kinds));
    }
    gate.print(std::cout, "K1: speedup vs pre-SIMD baseline");
    reporter.add("K1: speedup vs pre-SIMD baseline", gate);
  }

  return reporter.finish((any_slower || gate_failed) ? 1 : 0);
}
