// Experiment F4 — amplitude-amplification trajectory: fidelity after each
// Grover iterate, showing (a) the sin²((2t+1)θ) rotation, (b) what plain
// (uncorrected) AA leaves on the table, and (c) the zero-error final step
// landing exactly at 1 (the [9, Theorem 4] mechanism Theorems 4.3/4.5 use).
#include <cmath>

#include "bench_util.hpp"
#include "sampling/samplers.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  bench::Reporter reporter(argc, argv, "F4",
                "Zero-error amplitude amplification trajectory vs plain AA");

  // a = M/(νN) = 48/(4·256) ≈ 0.047 → enough iterations for a visible arc.
  const auto db = bench::controlled_db(256, 2, 24, 2, 4);
  SamplerOptions options;
  options.record_trajectory = true;
  const auto result = run_sequential_sampler(db, options);

  const double a = result.plan.a;
  const double theta = result.plan.theta;

  TextTable table({"iterate", "fidelity(measured)", "sin^2((2t+1)theta)",
                   "phase"});
  for (std::size_t t = 0; t < result.trajectory.size(); ++t) {
    const bool is_final =
        result.plan.needs_final && t + 1 == result.trajectory.size();
    const double rotation =
        std::pow(std::sin((2.0 * double(t) + 1.0) * theta), 2.0);
    table.add_row({TextTable::cell(std::uint64_t{t}),
                   TextTable::cell(result.trajectory[t], 10),
                   TextTable::cell(rotation, 10),
                   is_final ? "final corrected Q(phi,varphi)"
                            : (t == 0 ? "preparation A|0>" : "Q(pi,pi)")});
  }
  table.print(std::cout, "F4: fidelity per iterate (series for the figure)");
  reporter.add("F4: fidelity per iterate (series for the figure)", table);

  // Plain AA endpoint for contrast.
  const std::size_t plain_m = plain_iteration_count(a);
  const double plain_end =
      std::pow(std::sin((2.0 * double(plain_m) + 1.0) * theta), 2.0);
  std::printf("\nplain AA (%zu iterations, no correction) would end at "
              "%.10f;\nzero-error variant ends at %.12f\n",
              plain_m, plain_end, result.trajectory.back());

  // Checks: measured trajectory matches the rotation law at every full
  // iterate, and the corrected endpoint is exactly 1.
  bool pass = std::abs(result.trajectory.back() - 1.0) < 1e-9;
  const std::size_t full_points =
      result.trajectory.size() - (result.plan.needs_final ? 1 : 0);
  for (std::size_t t = 0; t < full_points; ++t) {
    const double rotation =
        std::pow(std::sin((2.0 * double(t) + 1.0) * theta), 2.0);
    pass = pass && std::abs(result.trajectory[t] - rotation) < 1e-9;
  }
  std::printf("trajectory matches sin^2((2t+1)theta) and ends exactly at 1: "
              "%s\n",
              pass ? "PASS" : "FAIL");
  return reporter.finish(pass ? 0 : 1);
}
