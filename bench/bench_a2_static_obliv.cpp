// Experiment A2 — static vs dynamic obliviousness proof cost
// (docs/ANALYSIS.md).
//
// The taint domain proves obliviousness by one abstract pass over the
// lifted program; the legacy dynamic pass recompiles the schedule under 3
// perturbed datasets and diffs the micro-op streams. The whole point of
// the static proof is that it is STRICTLY cheaper at the same verdict —
// this harness measures both on the same points and gates two things:
//
//   1. static < dynamic at every point (the ratio stays below 1), and
//   2. the worst static/dynamic ratio has not regressed past 2× the
//      committed baseline (bench/baselines/static_obliv.json).
//
//   bench_a2_static_obliv [--json PATH] [--baseline FILE]
//                         [--write-baseline FILE]
//
// Exit code: 0 clean, 1 verdict mismatch, static not cheaper, or ratio
// regression.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/abstint/engine.hpp"
#include "analysis/ir.hpp"
#include "analysis/passes.hpp"
#include "bench_util.hpp"
#include "telemetry/json.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace qs;

constexpr const char* kBaselineSchema = "dqs-static-obliv-v1";
constexpr double kRatioSlackFactor = 2.0;
constexpr std::size_t kDynamicTrials = 3;  // the verify_program default
constexpr std::uint64_t kSeed = 0x5eed;

double best_of_5_ns(const std::function<void()>& body) {
  double best = 1e300;
  body();  // warm-up
  for (int pass = 0; pass < 5; ++pass) {
    const auto start = telemetry::monotonic_ns();
    body();
    best = std::min(best, double(telemetry::monotonic_ns() - start));
  }
  return best;
}

const char* mode_name(QueryMode mode) {
  return mode == QueryMode::kSequential ? "sequential" : "parallel";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter(
      argc, argv, "A2",
      "Static obliviousness proof (taint domain over the lifted program) "
      "vs the dynamic perturbed-recompilation pass it replaces");
  const CliArgs args(argc, argv);
  const auto baseline_path = args.get("baseline", std::string());
  const auto write_path = args.get("write-baseline", std::string());

  struct Point {
    std::uint64_t universe;
    std::uint64_t machines;
  };
  const std::vector<Point> points = {{64, 4}, {256, 4}, {1024, 8},
                                     {4096, 8}};

  bool ok = true;
  double worst_ratio = 0.0;
  TextTable table({"N", "n", "mode", "static us", "dynamic us", "ratio",
                   "verdicts"});
  for (const auto& point : points) {
    const PublicParams params{point.universe, point.machines, 3,
                              3 * point.universe / 4};
    for (const auto mode : {QueryMode::kSequential, QueryMode::kParallel}) {
      analysis::TaintFacts facts;
      const auto static_ns = best_of_5_ns([&] {
        facts = analysis::taint_of(analysis::lift_compiled(params, mode));
      });
      bool dynamic_oblivious = false;
      const auto dynamic_ns = best_of_5_ns([&] {
        dynamic_oblivious =
            analysis::certify_obliviousness(params, mode, kDynamicTrials,
                                            kSeed)
                .empty();
      });
      const bool agree =
          facts.oblivious_statically_proven == dynamic_oblivious;
      ok = ok && facts.oblivious_statically_proven && agree;
      if (static_ns >= dynamic_ns) {
        std::printf("FAILED: static proof is not cheaper than the dynamic "
                    "pass at N=%llu n=%llu %s\n",
                    static_cast<unsigned long long>(params.universe),
                    static_cast<unsigned long long>(params.machines),
                    mode_name(mode));
        ok = false;
      }
      const double ratio = static_ns / dynamic_ns;
      worst_ratio = std::max(worst_ratio, ratio);
      table.add_row({TextTable::cell(params.universe),
                     TextTable::cell(params.machines), mode_name(mode),
                     TextTable::cell(static_ns / 1e3, 1),
                     TextTable::cell(dynamic_ns / 1e3, 1),
                     TextTable::cell(ratio, 3),
                     agree ? "agree" : "DISAGREE"});
    }
  }
  table.print(std::cout,
              "A2: static vs dynamic obliviousness proof cost");
  reporter.add("A2: static vs dynamic obliviousness proof cost", table);

  if (!write_path.empty()) {
    std::ofstream out(write_path);
    QS_REQUIRE(static_cast<bool>(out), "cannot write --write-baseline file");
    std::ostringstream doc;
    doc << "{\"schema\":\"" << kBaselineSchema << "\",\"max_ratio\":"
        << TextTable::cell(worst_ratio, 4) << "}";
    out << doc.str() << "\n";
    std::printf("baseline written to %s\n", write_path.c_str());
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    QS_REQUIRE(static_cast<bool>(in), "cannot open --baseline file");
    std::ostringstream text;
    text << in.rdbuf();
    const auto doc = telemetry::json::parse(text.str());
    QS_REQUIRE(doc.at("schema").as_string() == kBaselineSchema,
               "unexpected baseline schema");
    const double recorded = doc.at("max_ratio").as_number();
    const double budget = recorded * kRatioSlackFactor;
    std::printf("worst ratio %.3f vs baseline %.3f (budget %.3f)\n",
                worst_ratio, recorded, budget);
    if (worst_ratio > budget) {
      std::printf("FAILED: static/dynamic ratio regressed past the %gx "
                  "budget\n", kRatioSlackFactor);
      ok = false;
    }
  }

  return reporter.finish(ok ? 0 : 1);
}
