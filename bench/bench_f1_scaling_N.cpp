// Experiment F1 — scaling exponent in N: at fixed M and ν, queries grow
// like √N. Produces the log–log series and fits the power law; the fitted
// exponent must be 0.5 (±0.05) for both query models.
#include <cmath>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "sampling/samplers.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  bench::Reporter reporter(argc, argv, "F1",
                "Scaling in N at fixed M, nu: queries ~ sqrt(N) "
                "(log-log slope 1/2)");

  TextTable table({"N", "seq_queries", "par_rounds", "fidelity"});
  std::vector<double> ns, seq_q, par_q;
  for (const std::size_t universe :
       {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    // M = 32 (16 elements x2), nu = 4, n = 3 — constant across the sweep.
    const auto db = bench::controlled_db(universe, 3, 16, 2, 4);
    const auto seq = run_sequential_sampler(db);
    const auto par = run_parallel_sampler(db);
    ns.push_back(static_cast<double>(universe));
    seq_q.push_back(static_cast<double>(seq.stats.total_sequential()));
    par_q.push_back(static_cast<double>(par.stats.parallel_rounds));
    table.add_row({TextTable::cell(std::uint64_t{universe}),
                   TextTable::cell(seq.stats.total_sequential()),
                   TextTable::cell(par.stats.parallel_rounds),
                   TextTable::cell(seq.fidelity, 12)});
  }
  table.print(std::cout, "F1: queries vs N (series for the figure)");
  reporter.add("F1: queries vs N (series for the figure)", table);

  const auto seq_fit = fit_power_law(ns, seq_q);
  const auto par_fit = fit_power_law(ns, par_q);
  std::printf("\nfitted exponents: sequential %.3f (R2=%.4f), parallel %.3f "
              "(R2=%.4f); theory: 0.500\n",
              seq_fit.slope, seq_fit.r_squared, par_fit.slope,
              par_fit.r_squared);
  const bool pass = std::abs(seq_fit.slope - 0.5) < 0.05 &&
                    std::abs(par_fit.slope - 0.5) < 0.05;
  std::printf("exponent check (|slope - 0.5| < 0.05): %s\n",
              pass ? "PASS" : "FAIL");
  return reporter.finish(pass ? 0 : 1);
}
