// Shared helpers for the experiment benches (one binary per table/figure in
// DESIGN.md's experiment index). Each bench prints a paper-shaped table to
// stdout; headers announce the experiment id and the claim it reproduces.
//
// Every bench also speaks a machine-readable dialect through Reporter
// (docs/TELEMETRY.md):
//
//   --json PATH     write the tables as one dqs-bench-v1 JSON document
//                   (aggregated into BENCH_sampling.json by
//                   tools/bench_aggregate.py — the repo's perf trajectory);
//   --trace PATH    enable telemetry tracing and write a Chrome trace-event
//                   file loadable in Perfetto;
//   --metrics PATH  enable telemetry metrics and write a JSONL snapshot.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/verifier.hpp"
#include "common/cli.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "distdb/distributed_database.hpp"
#include "distdb/workload.hpp"
#include "sampling/schedule.hpp"
#include "telemetry/export.hpp"

namespace qs::bench {

/// Statically verify both query-model schedules for this database before
/// it is benched: every schedule a bench exercises passes the dqs-verify
/// checker passes (docs/ANALYSIS.md). Structural passes only — the
/// dataset-perturbation obliviousness trials run in the dqs_verify ctest
/// gates, not per bench database.
inline DistributedDatabase verified(DistributedDatabase db) {
  if (db.total() == 0) return db;  // nothing schedulable to verify
  const auto params = public_params_of(db);
  for (const auto mode : {QueryMode::kSequential, QueryMode::kParallel}) {
    analysis::VerifyOptions options;
    options.obliviousness_trials = 0;
    const auto report = analysis::verify_compiled(params, mode, options);
    QS_REQUIRE(report.clean(),
               "benched schedule failed static verification:\n" +
                   report.render());
  }
  return db;
}

inline void banner(const std::string& id, const std::string& claim) {
  std::printf("=================================================================\n");
  std::printf("%s — %s\n", id.c_str(), claim.c_str());
  std::printf("=================================================================\n");
}

/// Per-bench machine-readable reporting (see the header comment). Replaces
/// bench::banner: construct one Reporter at the top of main, add() every
/// table after printing it, and `return reporter.finish(code);` at the end.
class Reporter {
 public:
  Reporter(int argc, const char* const* argv, std::string id,
           const std::string& claim)
      : id_(std::move(id)), claim_(claim) {
    banner(id_, claim_);
    const CliArgs args(argc, argv);
    json_path_ = args.get("json", std::string());
    trace_path_ = args.get("trace", std::string());
    metrics_path_ = args.get("metrics", std::string());
    if (!trace_path_.empty()) {
      telemetry::set_tracing_enabled(true);
      telemetry::tracer().clear();
    }
    if (!metrics_path_.empty()) {
      telemetry::set_metrics_enabled(true);
      telemetry::registry().reset();
    }
  }

  Reporter(const Reporter&) = delete;
  Reporter& operator=(const Reporter&) = delete;

  /// Register a printed table under a stable name (use the print title).
  void add(const std::string& name, const TextTable& table) {
    tables_.emplace_back(name, Table{table.headers(), table.data()});
  }

  /// Write all requested outputs; returns `exit_code` so benches can end
  /// with `return reporter.finish(ok ? 0 : 1);`.
  int finish(int exit_code) {
    exit_code_ = exit_code;
    write_outputs();
    written_ = true;
    return exit_code;
  }

  ~Reporter() {
    // A bench that bails out early (exception path) still gets its tables
    // flushed, with exit_code null marking the run incomplete.
    if (!written_) write_outputs();
  }

 private:
  struct Table {
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };

  /// Cells that are entirely one finite number are emitted as JSON
  /// numbers; everything else stays a string.
  static void write_cell(std::ostream& os, const std::string& cell) {
    double value = 0.0;
    const auto* first = cell.data();
    const auto* last = cell.data() + cell.size();
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (!cell.empty() && ec == std::errc{} && ptr == last &&
        std::isfinite(value)) {
      os << cell;  // already a canonical numeric literal
    } else {
      os << '"' << telemetry::json_escape(cell) << '"';
    }
  }

  void write_outputs() const {
    if (!json_path_.empty()) {
      std::ofstream os(json_path_);
      QS_REQUIRE(os.good(), "cannot open --json output file " + json_path_);
      os << "{\"schema\":\"dqs-bench-v1\",\"bench\":\""
         << telemetry::json_escape(id_) << "\",\"claim\":\""
         << telemetry::json_escape(claim_) << "\",\"exit_code\":";
      if (exit_code_.has_value()) {
        os << *exit_code_;
      } else {
        os << "null";
      }
      os << ",\"tables\":[";
      for (std::size_t t = 0; t < tables_.size(); ++t) {
        const auto& [name, table] = tables_[t];
        if (t != 0) os << ',';
        os << "\n{\"name\":\"" << telemetry::json_escape(name)
           << "\",\"headers\":[";
        for (std::size_t h = 0; h < table.headers.size(); ++h) {
          if (h != 0) os << ',';
          os << '"' << telemetry::json_escape(table.headers[h]) << '"';
        }
        os << "],\"rows\":[";
        for (std::size_t r = 0; r < table.rows.size(); ++r) {
          if (r != 0) os << ',';
          os << "\n[";
          for (std::size_t c = 0; c < table.rows[r].size(); ++c) {
            if (c != 0) os << ',';
            write_cell(os, table.rows[r][c]);
          }
          os << ']';
        }
        os << "]}";
      }
      os << "\n]}\n";
    }
    if (!trace_path_.empty()) {
      std::ofstream os(trace_path_);
      QS_REQUIRE(os.good(), "cannot open --trace output file " + trace_path_);
      telemetry::write_chrome_trace(os);
    }
    if (!metrics_path_.empty()) {
      std::ofstream os(metrics_path_);
      QS_REQUIRE(os.good(),
                 "cannot open --metrics output file " + metrics_path_);
      telemetry::write_metrics_jsonl(os);
    }
  }

  std::string id_;
  std::string claim_;
  std::string json_path_;
  std::string trace_path_;
  std::string metrics_path_;
  std::vector<std::pair<std::string, Table>> tables_;
  std::optional<int> exit_code_;
  bool written_ = false;
};

inline DistributedDatabase uniform_db(std::size_t universe,
                                      std::size_t machines,
                                      std::uint64_t total, std::uint64_t seed,
                                      std::uint64_t extra_capacity = 0) {
  Rng rng(seed);
  auto datasets = workload::uniform_random(universe, machines, total, rng);
  const auto nu = min_capacity(datasets) + extra_capacity;
  return verified(DistributedDatabase(std::move(datasets), nu));
}

/// A database with an exactly-controlled (N, M, ν): every one of the first
/// `support` elements appears `multiplicity` times, round-robin across
/// machines, and ν is set explicitly. Gives clean √(νN/M) sweeps.
inline DistributedDatabase controlled_db(std::size_t universe,
                                         std::size_t machines,
                                         std::size_t support,
                                         std::uint64_t multiplicity,
                                         std::uint64_t nu) {
  std::vector<Dataset> datasets(machines, Dataset(universe));
  for (std::size_t i = 0; i < support; ++i)
    datasets[i % machines].insert(i, multiplicity);
  return verified(DistributedDatabase(std::move(datasets), nu));
}

}  // namespace qs::bench
