// Shared helpers for the experiment benches (one binary per table/figure in
// DESIGN.md's experiment index). Each bench prints a paper-shaped table to
// stdout; headers announce the experiment id and the claim it reproduces.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "analysis/verifier.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "distdb/distributed_database.hpp"
#include "distdb/workload.hpp"
#include "sampling/schedule.hpp"

namespace qs::bench {

/// Statically verify both query-model schedules for this database before
/// it is benched: every schedule a bench exercises passes the dqs-verify
/// checker passes (docs/ANALYSIS.md). Structural passes only — the
/// dataset-perturbation obliviousness trials run in the dqs_verify ctest
/// gates, not per bench database.
inline DistributedDatabase verified(DistributedDatabase db) {
  if (db.total() == 0) return db;  // nothing schedulable to verify
  const auto params = public_params_of(db);
  for (const auto mode : {QueryMode::kSequential, QueryMode::kParallel}) {
    analysis::VerifyOptions options;
    options.obliviousness_trials = 0;
    const auto report = analysis::verify_compiled(params, mode, options);
    QS_REQUIRE(report.clean(),
               "benched schedule failed static verification:\n" +
                   report.render());
  }
  return db;
}

inline void banner(const std::string& id, const std::string& claim) {
  std::printf("=================================================================\n");
  std::printf("%s — %s\n", id.c_str(), claim.c_str());
  std::printf("=================================================================\n");
}

inline DistributedDatabase uniform_db(std::size_t universe,
                                      std::size_t machines,
                                      std::uint64_t total, std::uint64_t seed,
                                      std::uint64_t extra_capacity = 0) {
  Rng rng(seed);
  auto datasets = workload::uniform_random(universe, machines, total, rng);
  const auto nu = min_capacity(datasets) + extra_capacity;
  return verified(DistributedDatabase(std::move(datasets), nu));
}

/// A database with an exactly-controlled (N, M, ν): every one of the first
/// `support` elements appears `multiplicity` times, round-robin across
/// machines, and ν is set explicitly. Gives clean √(νN/M) sweeps.
inline DistributedDatabase controlled_db(std::size_t universe,
                                         std::size_t machines,
                                         std::size_t support,
                                         std::uint64_t multiplicity,
                                         std::uint64_t nu) {
  std::vector<Dataset> datasets(machines, Dataset(universe));
  for (std::size_t i = 0; i < support; ++i)
    datasets[i % machines].insert(i, multiplicity);
  return verified(DistributedDatabase(std::move(datasets), nu));
}

}  // namespace qs::bench
