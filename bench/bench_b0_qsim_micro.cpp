// Experiment B0 — substrate microbenchmarks (google-benchmark): throughput
// of the statevector kernels that dominate the samplers' wall-clock, and
// the cost model behind choosing the Householder preparation over a dense
// QFT in the hot path.
//
// Each kernel benchmark also reports the bytes its inner loop moves per
// amplitude and the effective bandwidth that implies (bytes/amp is a fixed
// accounting constant per kernel — see the k*Bytes definitions — so GB/s
// is just bytes over measured time: the roofline context docs/PERF.md
// reads against the K1 compiled-replay numbers). The google-benchmark
// console output carries the counters; --json PATH additionally captures
// every run into a dqs-bench-v1 document so B0 rides BENCH_sampling.json
// next to the paper-shaped benches. Wall-clock numbers are a trajectory
// record, NOT byte-reproducible.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "distdb/workload.hpp"
#include "qsim/controlled.hpp"
#include "qsim/density.hpp"
#include "qsim/gates.hpp"
#include "qsim/state_vector.hpp"
#include "sampling/samplers.hpp"

namespace {

using namespace qs;

RegisterLayout coordinator_layout(std::size_t universe, std::size_t nu) {
  RegisterLayout layout;
  layout.add("elem", universe);
  layout.add("count", nu + 1);
  layout.add("flag", 2);
  return layout;
}

// Bytes-moved accounting per amplitude (16-byte complex amplitudes). These
// are the naive-dispatch kernels, which stage fibers through scratch:
//   value shift:  copy the fiber out to scratch and write it back shifted
//                 (2 reads + 2 writes)                    = 4 * 16 = 64
//   householder:  inner-product pass reads amp + v, update pass reads
//                 amp + v and writes amp                  = 5 * 16 = 80
//   conditioned:  scratch round-trip; the 2x2 matrix stays in registers
//                 (2 reads + 2 writes)                    = 4 * 16 = 64
//   dense QFT:    per output amplitude, read the whole d-fiber and one
//                 matrix row, write once            = 32 * d + 16 (O(d)!)
constexpr double kShiftBytes = 64.0;
constexpr double kHouseholderBytes = 80.0;
constexpr double kConditionedBytes = 64.0;
double qft_bytes_per_amp(std::size_t d) {
  return 32.0 * static_cast<double>(d) + 16.0;
}

/// Attach the shared throughput counters: items (amplitudes), bytes (so
/// google-benchmark derives GB/s), and the fixed bytes/amp constant.
void note_amplitude_traffic(benchmark::State& state, std::size_t dim,
                            double bytes_per_amp) {
  const auto amps = static_cast<std::int64_t>(state.iterations()) *
                    static_cast<std::int64_t>(dim);
  state.SetItemsProcessed(amps);
  state.SetBytesProcessed(
      static_cast<std::int64_t>(static_cast<double>(amps) * bytes_per_amp));
  state.counters["bytes/amp"] = bytes_per_amp;
}

void BM_ValueShiftOracle(benchmark::State& state) {
  const auto universe = static_cast<std::size_t>(state.range(0));
  const auto layout = coordinator_layout(universe, 4);
  StateVector sv(layout);
  Rng rng(1);
  sv.set_amplitudes(random_state(layout.total_dim(), rng));
  std::vector<std::size_t> shifts(universe);
  for (std::size_t i = 0; i < universe; ++i) shifts[i] = i % 5;
  const auto elem = layout.find("elem");
  const auto count = layout.find("count");
  for (auto _ : state) {
    sv.apply_value_shift(count, elem, shifts);
    benchmark::DoNotOptimize(sv.mutable_amplitudes().data());
  }
  note_amplitude_traffic(state, layout.total_dim(), kShiftBytes);
}
BENCHMARK(BM_ValueShiftOracle)->Arg(256)->Arg(1024)->Arg(4096);

void BM_HouseholderPrep(benchmark::State& state) {
  const auto universe = static_cast<std::size_t>(state.range(0));
  const auto layout = coordinator_layout(universe, 4);
  StateVector sv(layout);
  Rng rng(2);
  sv.set_amplitudes(random_state(layout.total_dim(), rng));
  const auto v = uniform_prep_householder_vector(universe);
  const auto elem = layout.find("elem");
  for (auto _ : state) {
    sv.apply_householder(elem, v);
    benchmark::DoNotOptimize(sv.mutable_amplitudes().data());
  }
  note_amplitude_traffic(state, layout.total_dim(), kHouseholderBytes);
}
BENCHMARK(BM_HouseholderPrep)->Arg(256)->Arg(1024)->Arg(4096);

void BM_DenseQftPrep(benchmark::State& state) {
  // O(N²) per fiber — kept small; contrast with BM_HouseholderPrep.
  const auto universe = static_cast<std::size_t>(state.range(0));
  const auto layout = coordinator_layout(universe, 4);
  StateVector sv(layout);
  Rng rng(3);
  sv.set_amplitudes(random_state(layout.total_dim(), rng));
  const auto f = qft_matrix(universe);
  const auto elem = layout.find("elem");
  for (auto _ : state) {
    sv.apply_unitary(elem, f);
    benchmark::DoNotOptimize(sv.mutable_amplitudes().data());
  }
  note_amplitude_traffic(state, layout.total_dim(),
                         qft_bytes_per_amp(universe));
}
BENCHMARK(BM_DenseQftPrep)->Arg(64)->Arg(256);

void BM_ConditionedRotationU(benchmark::State& state) {
  const auto universe = static_cast<std::size_t>(state.range(0));
  const std::size_t nu = 4;
  const auto layout = coordinator_layout(universe, nu);
  StateVector sv(layout);
  Rng rng(4);
  sv.set_amplitudes(random_state(layout.total_dim(), rng));
  std::vector<Matrix> rotations;
  for (std::size_t c = 0; c <= nu; ++c)
    rotations.push_back(rotation_matrix(0.1 * static_cast<double>(c)));
  const auto count = layout.find("count");
  const auto flag = layout.find("flag");
  for (auto _ : state) {
    sv.apply_conditioned_unitary(flag, [&](std::size_t base) {
      return &rotations[layout.digit(base, count)];
    });
    benchmark::DoNotOptimize(sv.mutable_amplitudes().data());
  }
  note_amplitude_traffic(state, layout.total_dim(), kConditionedBytes);
}
BENCHMARK(BM_ConditionedRotationU)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ControlledFragment(benchmark::State& state) {
  // Cost of the controlled-scope machinery (extract + run + stitch) per
  // amplitude — the overhead phase estimation pays per controlled power.
  // Per full-state amplitude, half the state takes an extract round-trip
  // (32), the householder (80) and a stitch round-trip (32): 72 average.
  const auto universe = static_cast<std::size_t>(state.range(0));
  RegisterLayout layout;
  const auto control = layout.add("control", 2);
  const auto target = layout.add("target", universe);
  StateVector sv(layout);
  Rng rng(7);
  sv.set_amplitudes(random_state(layout.total_dim(), rng));
  const auto v = uniform_prep_householder_vector(universe);
  for (auto _ : state) {
    apply_controlled(sv, control, 1, [&](StateVector& slice) {
      slice.apply_householder(target, v);
    });
    benchmark::DoNotOptimize(sv.mutable_amplitudes().data());
  }
  note_amplitude_traffic(state, layout.total_dim(),
                         (32.0 + kHouseholderBytes + 32.0) / 2.0);
}
BENCHMARK(BM_ControlledFragment)->Arg(256)->Arg(1024)->Arg(4096);

void BM_PartialTrace(benchmark::State& state) {
  // The Lemma B.1 operation: reduce the coordinator state to the element
  // register.
  const auto universe = static_cast<std::size_t>(state.range(0));
  const auto layout = coordinator_layout(universe, 4);
  StateVector sv(layout);
  Rng rng(8);
  sv.set_amplitudes(random_state(layout.total_dim(), rng));
  const auto elem = layout.find("elem");
  for (auto _ : state) {
    auto rho = partial_trace(sv, {elem});
    benchmark::DoNotOptimize(rho.data().data());
  }
}
BENCHMARK(BM_PartialTrace)->Arg(32)->Arg(64);

void BM_FullSequentialSampler(benchmark::State& state) {
  const auto universe = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  auto datasets = workload::uniform_random(universe, 4, universe / 4, rng);
  const auto nu = min_capacity(datasets) + 1;
  const DistributedDatabase db(std::move(datasets), nu);
  for (auto _ : state) {
    auto result = run_sequential_sampler(db);
    benchmark::DoNotOptimize(result.fidelity);
  }
}
BENCHMARK(BM_FullSequentialSampler)->Arg(128)->Arg(512);

void BM_FullParallelSampler(benchmark::State& state) {
  const auto universe = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  auto datasets = workload::uniform_random(universe, 4, universe / 4, rng);
  const auto nu = min_capacity(datasets) + 1;
  const DistributedDatabase db(std::move(datasets), nu);
  for (auto _ : state) {
    auto result = run_parallel_sampler(db);
    benchmark::DoNotOptimize(result.fidelity);
  }
}
BENCHMARK(BM_FullParallelSampler)->Arg(128)->Arg(512);

/// ConsoleReporter that additionally captures every iteration run into
/// rows for the dqs-bench-v1 table (name, ns/iter, Mamps/s, bytes/amp,
/// GB/s). Benches without a byte model leave those cells "-".
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  std::vector<std::array<std::string, 5>> rows;

  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      std::array<std::string, 5> row;
      row[0] = run.benchmark_name();
      row[1] = TextTable::cell(run.GetAdjustedRealTime(), 1);
      const auto rate = [&run](const char* key) {
        const auto it = run.counters.find(key);
        return it == run.counters.end() ? 0.0
                                        : static_cast<double>(it->second);
      };
      const double items = rate("items_per_second");
      row[2] = items > 0.0 ? TextTable::cell(items / 1e6, 2) : "-";
      const double bytes_per_amp = rate("bytes/amp");
      row[3] = bytes_per_amp > 0.0 ? TextTable::cell(bytes_per_amp, 0) : "-";
      const double gbps = rate("bytes_per_second") / 1e9;
      row[4] = gbps > 0.0 ? TextTable::cell(gbps, 2) : "-";
      rows.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(report);
  }
};

}  // namespace

int main(int argc, char** argv) {
  qs::bench::Reporter reporter(
      argc, argv, "B0",
      "substrate statevector kernels sustain the per-amplitude throughput "
      "and effective bandwidth the sampler cost model assumes; the "
      "Householder preparation beats a dense QFT in the hot path");

  // Reporter's flags are not google-benchmark's: strip them (and their
  // value token) before Initialize sees the argv.
  std::vector<char*> filtered;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" || arg == "--trace" || arg == "--metrics") {
      ++i;  // skip the path operand too
      continue;
    }
    filtered.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(filtered.size());
  benchmark::Initialize(&filtered_argc, filtered.data());

  CapturingReporter console;
  benchmark::RunSpecifiedBenchmarks(&console);
  benchmark::Shutdown();

  qs::TextTable table(
      {"benchmark", "ns/iter", "Mamps/s", "bytes/amp", "GB/s"});
  for (const auto& row : console.rows)
    table.add_row({row[0], row[1], row[2], row[3], row[4]});
  table.print(std::cout, "B0: substrate kernel throughput");
  reporter.add("B0: substrate kernel throughput", table);
  return reporter.finish(0);
}
