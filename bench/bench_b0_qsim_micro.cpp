// Experiment B0 — substrate microbenchmarks (google-benchmark): throughput
// of the statevector kernels that dominate the samplers' wall-clock, and
// the cost model behind choosing the Householder preparation over a dense
// QFT in the hot path.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "distdb/workload.hpp"
#include "qsim/controlled.hpp"
#include "qsim/density.hpp"
#include "qsim/gates.hpp"
#include "qsim/state_vector.hpp"
#include "sampling/samplers.hpp"

namespace {

using namespace qs;

RegisterLayout coordinator_layout(std::size_t universe, std::size_t nu) {
  RegisterLayout layout;
  layout.add("elem", universe);
  layout.add("count", nu + 1);
  layout.add("flag", 2);
  return layout;
}

void BM_ValueShiftOracle(benchmark::State& state) {
  const auto universe = static_cast<std::size_t>(state.range(0));
  const auto layout = coordinator_layout(universe, 4);
  StateVector sv(layout);
  Rng rng(1);
  sv.set_amplitudes(random_state(layout.total_dim(), rng));
  std::vector<std::size_t> shifts(universe);
  for (std::size_t i = 0; i < universe; ++i) shifts[i] = i % 5;
  const auto elem = layout.find("elem");
  const auto count = layout.find("count");
  for (auto _ : state) {
    sv.apply_value_shift(count, elem, shifts);
    benchmark::DoNotOptimize(sv.mutable_amplitudes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(layout.total_dim()));
}
BENCHMARK(BM_ValueShiftOracle)->Arg(256)->Arg(1024)->Arg(4096);

void BM_HouseholderPrep(benchmark::State& state) {
  const auto universe = static_cast<std::size_t>(state.range(0));
  const auto layout = coordinator_layout(universe, 4);
  StateVector sv(layout);
  Rng rng(2);
  sv.set_amplitudes(random_state(layout.total_dim(), rng));
  const auto v = uniform_prep_householder_vector(universe);
  const auto elem = layout.find("elem");
  for (auto _ : state) {
    sv.apply_householder(elem, v);
    benchmark::DoNotOptimize(sv.mutable_amplitudes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(layout.total_dim()));
}
BENCHMARK(BM_HouseholderPrep)->Arg(256)->Arg(1024)->Arg(4096);

void BM_DenseQftPrep(benchmark::State& state) {
  // O(N²) per fiber — kept small; contrast with BM_HouseholderPrep.
  const auto universe = static_cast<std::size_t>(state.range(0));
  const auto layout = coordinator_layout(universe, 4);
  StateVector sv(layout);
  Rng rng(3);
  sv.set_amplitudes(random_state(layout.total_dim(), rng));
  const auto f = qft_matrix(universe);
  const auto elem = layout.find("elem");
  for (auto _ : state) {
    sv.apply_unitary(elem, f);
    benchmark::DoNotOptimize(sv.mutable_amplitudes().data());
  }
}
BENCHMARK(BM_DenseQftPrep)->Arg(64)->Arg(256);

void BM_ConditionedRotationU(benchmark::State& state) {
  const auto universe = static_cast<std::size_t>(state.range(0));
  const std::size_t nu = 4;
  const auto layout = coordinator_layout(universe, nu);
  StateVector sv(layout);
  Rng rng(4);
  sv.set_amplitudes(random_state(layout.total_dim(), rng));
  std::vector<Matrix> rotations;
  for (std::size_t c = 0; c <= nu; ++c)
    rotations.push_back(rotation_matrix(0.1 * static_cast<double>(c)));
  const auto count = layout.find("count");
  const auto flag = layout.find("flag");
  for (auto _ : state) {
    sv.apply_conditioned_unitary(flag, [&](std::size_t base) {
      return &rotations[layout.digit(base, count)];
    });
    benchmark::DoNotOptimize(sv.mutable_amplitudes().data());
  }
}
BENCHMARK(BM_ConditionedRotationU)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ControlledFragment(benchmark::State& state) {
  // Cost of the controlled-scope machinery (extract + run + stitch) per
  // amplitude — the overhead phase estimation pays per controlled power.
  const auto universe = static_cast<std::size_t>(state.range(0));
  RegisterLayout layout;
  const auto control = layout.add("control", 2);
  const auto target = layout.add("target", universe);
  StateVector sv(layout);
  Rng rng(7);
  sv.set_amplitudes(random_state(layout.total_dim(), rng));
  const auto v = uniform_prep_householder_vector(universe);
  for (auto _ : state) {
    apply_controlled(sv, control, 1, [&](StateVector& slice) {
      slice.apply_householder(target, v);
    });
    benchmark::DoNotOptimize(sv.mutable_amplitudes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(layout.total_dim()));
}
BENCHMARK(BM_ControlledFragment)->Arg(256)->Arg(1024)->Arg(4096);

void BM_PartialTrace(benchmark::State& state) {
  // The Lemma B.1 operation: reduce the coordinator state to the element
  // register.
  const auto universe = static_cast<std::size_t>(state.range(0));
  const auto layout = coordinator_layout(universe, 4);
  StateVector sv(layout);
  Rng rng(8);
  sv.set_amplitudes(random_state(layout.total_dim(), rng));
  const auto elem = layout.find("elem");
  for (auto _ : state) {
    auto rho = partial_trace(sv, {elem});
    benchmark::DoNotOptimize(rho.data().data());
  }
}
BENCHMARK(BM_PartialTrace)->Arg(32)->Arg(64);

void BM_FullSequentialSampler(benchmark::State& state) {
  const auto universe = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  auto datasets = workload::uniform_random(universe, 4, universe / 4, rng);
  const auto nu = min_capacity(datasets) + 1;
  const DistributedDatabase db(std::move(datasets), nu);
  for (auto _ : state) {
    auto result = run_sequential_sampler(db);
    benchmark::DoNotOptimize(result.fidelity);
  }
}
BENCHMARK(BM_FullSequentialSampler)->Arg(128)->Arg(512);

void BM_FullParallelSampler(benchmark::State& state) {
  const auto universe = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  auto datasets = workload::uniform_random(universe, 4, universe / 4, rng);
  const auto nu = min_capacity(datasets) + 1;
  const DistributedDatabase db(std::move(datasets), nu);
  for (auto _ : state) {
    auto result = run_parallel_sampler(db);
    benchmark::DoNotOptimize(result.fidelity);
  }
}
BENCHMARK(BM_FullParallelSampler)->Arg(128)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
