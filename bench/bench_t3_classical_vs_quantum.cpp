// Experiment T3 — classical vs quantum under the same multiplicity-query
// access (the introduction's nN argument made quantitative).
//
// For growing sparsity νN/M we report, per produced sample:
//   * classical full scan then free sampling  (nN probes, amortisable),
//   * classical rejection sampling            (≈ n·νN/M probes/sample),
//   * quantum sequential sampling             (≈ const·n·√(νN/M) queries),
//   * quantum parallel sampling               (≈ const·√(νN/M) rounds).
//
// Shape checks: the quantum/classical-rejection ratio grows like √(νN/M),
// and the winner flips as data becomes dense (νN/M → 1 makes the quantum
// advantage vanish — a genuine crossover, not an artifact).
#include <cmath>

#include "bench_util.hpp"
#include "sampling/classical.hpp"
#include "sampling/samplers.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  bench::Reporter reporter(argc, argv, "T3",
                "Classical vs quantum query cost per sample under "
                "multiplicity-probe access");

  TextTable table({"N", "M", "nu", "nuN/M", "cl_scan(nN)", "cl_reject/smp",
                   "q_seq", "q_par", "reject/q_seq", "sqrt(nuN/M)"});

  struct Config {
    std::size_t universe, support;
    std::uint64_t multiplicity, nu;
  };
  // From dense (νN/M = 2) to very sparse (νN/M = 512).
  const Config configs[] = {
      {64, 64, 2, 4},    {64, 32, 2, 4},   {128, 32, 2, 4},
      {256, 32, 2, 4},   {512, 32, 2, 4},  {1024, 32, 2, 4},
      {2048, 32, 2, 4},  {2048, 16, 2, 8},
  };
  const std::size_t machines = 2;

  bool shape_ok = true;
  double prev_ratio = 0.0;
  for (const auto& c : configs) {
    const auto db = bench::controlled_db(c.universe, machines, c.support,
                                         c.multiplicity, c.nu);
    const double sparsity = static_cast<double>(c.nu) *
                            static_cast<double>(c.universe) /
                            static_cast<double>(db.total());

    const auto scan = classical_full_scan(db);
    Rng rng(17);
    const std::size_t trials = 400;
    const auto reject = classical_rejection_sampling(db, trials, rng);
    const double reject_per_sample =
        static_cast<double>(reject.queries) / static_cast<double>(trials);
    const auto seq = run_sequential_sampler(db);
    const auto par = run_parallel_sampler(db);

    const double q_seq = static_cast<double>(seq.stats.total_sequential());
    const double advantage = reject_per_sample / q_seq;
    table.add_row(
        {TextTable::cell(std::uint64_t{c.universe}),
         TextTable::cell(db.total()), TextTable::cell(std::uint64_t{c.nu}),
         TextTable::cell(sparsity, 1), TextTable::cell(scan.queries),
         TextTable::cell(reject_per_sample, 1), TextTable::cell(q_seq, 0),
         TextTable::cell(double(par.stats.parallel_rounds), 0),
         TextTable::cell(advantage, 2), TextTable::cell(std::sqrt(sparsity), 2)});

    // Shape: the advantage should track √(νN/M) within a constant; demand
    // monotone growth along the fixed-(M,ν) prefix of the sweep.
    if (c.nu == 4 && c.support == 32 && prev_ratio > 0.0)
      shape_ok = shape_ok && advantage > 0.8 * prev_ratio;
    if (c.nu == 4 && c.support == 32) prev_ratio = advantage;
  }
  table.print(std::cout, "T3: cost per coherent/classical sample");
  reporter.add("T3: cost per coherent/classical sample", table);
  std::printf("\nadvantage column grows ~ sqrt(nuN/M): %s\n",
              shape_ok ? "PASS" : "FAIL");
  std::printf("note the dense row (nuN/M=2): quantum and classical rejection "
              "are within a small constant — the crossover the theory "
              "predicts.\n");
  return reporter.finish(shape_ok ? 0 : 1);
}
