// Experiment A1 — analyzer runtime per schedule (docs/ANALYSIS.md).
//
// The abstract interpreter certifies every schedule dqs_verify sweeps, and
// verify_program now runs the domains on every entry point — so analysis
// time per schedule is a budget worth gating. The stable, host-independent
// number is the RATIO of full certification (lift + structural passes +
// abstract domains + dqs-cert-v1 serialization, via certify_compiled) to
// compiling the very schedule being certified: both sides scale with the
// schedule's event count on the same host.
//
//   bench_a1_analysis [--json PATH] [--baseline FILE]
//                     [--write-baseline FILE]
//
// With --baseline, exit 1 when the worst measured ratio exceeds the
// recorded one by more than 2× — the CI perf-smoke regression gate on
// analysis time per schedule (bench/baselines/analysis_time.json).
// Exit code: 0 clean, 1 certification failure or ratio regression.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/abstint/certificate.hpp"
#include "bench_util.hpp"
#include "telemetry/json.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace qs;

constexpr const char* kBaselineSchema = "dqs-analysis-time-v1";
constexpr double kRatioSlackFactor = 2.0;

double best_of_5_ns(const std::function<void()>& body) {
  double best = 1e300;
  body();  // warm-up
  for (int pass = 0; pass < 5; ++pass) {
    const auto start = telemetry::monotonic_ns();
    body();
    best = std::min(best, double(telemetry::monotonic_ns() - start));
  }
  return best;
}

const char* mode_name(QueryMode mode) {
  return mode == QueryMode::kSequential ? "sequential" : "parallel";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter(
      argc, argv, "A1",
      "Analyzer runtime per schedule — abstract interpretation plus "
      "certificate emission, relative to compiling the same schedule");
  const CliArgs args(argc, argv);
  const auto baseline_path = args.get("baseline", std::string());
  const auto write_path = args.get("write-baseline", std::string());

  struct Point {
    std::uint64_t universe;
    std::uint64_t machines;
  };
  const std::vector<Point> points = {{64, 4}, {256, 4}, {1024, 8},
                                     {4096, 8}};

  bool ok = true;
  double worst_ratio = 0.0;
  TextTable table({"N", "n", "mode", "ops", "compile us", "analyze us",
                   "ratio"});
  for (const auto& point : points) {
    // ν = 3 with M = 3N/4 keeps a = 1/4 (several AA iterates) at every N.
    const PublicParams params{point.universe, point.machines, 3,
                              3 * point.universe / 4};
    for (const auto mode : {QueryMode::kSequential, QueryMode::kParallel}) {
      const auto compile_ns = best_of_5_ns(
          [&] { (void)compile_schedule(params, mode); });
      analysis::Certificate cert;
      const auto analyze_ns = best_of_5_ns([&] {
        cert = analysis::certify_compiled(params, mode);
        (void)analysis::to_json(cert);
      });
      ok = ok && cert.clean();
      const double ratio = analyze_ns / compile_ns;
      worst_ratio = std::max(worst_ratio, ratio);
      const auto ops = analysis::lift_compiled(params, mode).ops.size();
      table.add_row({TextTable::cell(params.universe),
                     TextTable::cell(params.machines), mode_name(mode),
                     TextTable::cell(std::uint64_t{ops}),
                     TextTable::cell(compile_ns / 1e3, 1),
                     TextTable::cell(analyze_ns / 1e3, 1),
                     TextTable::cell(ratio, 2)});
    }
  }
  table.print(std::cout, "A1: certification cost vs schedule compilation");
  reporter.add("A1: certification cost vs schedule compilation", table);

  if (!write_path.empty()) {
    std::ofstream out(write_path);
    QS_REQUIRE(static_cast<bool>(out), "cannot write --write-baseline file");
    std::ostringstream doc;
    doc << "{\"schema\":\"" << kBaselineSchema << "\",\"max_ratio\":"
        << TextTable::cell(worst_ratio, 3) << "}";
    out << doc.str() << "\n";
    std::printf("baseline written to %s\n", write_path.c_str());
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    QS_REQUIRE(static_cast<bool>(in), "cannot open --baseline file");
    std::ostringstream text;
    text << in.rdbuf();
    const auto doc = telemetry::json::parse(text.str());
    QS_REQUIRE(doc.at("schema").as_string() == kBaselineSchema,
               "unexpected baseline schema");
    const double recorded = doc.at("max_ratio").as_number();
    const double budget = recorded * kRatioSlackFactor;
    std::printf("worst ratio %.2f vs baseline %.2f (budget %.2f)\n",
                worst_ratio, recorded, budget);
    if (worst_ratio > budget) {
      std::printf("FAILED: analysis-time ratio regressed past the %gx "
                  "budget\n", kRatioSlackFactor);
      ok = false;
    }
  }

  return reporter.finish(ok ? 0 : 1);
}
