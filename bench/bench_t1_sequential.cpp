// Experiment T1 — Theorem 4.3: the sequential sampler is EXACT and its
// query count is Θ(n·√(νN/M)).
//
// Sweeps (N, n, M, ν) and reports, per configuration: the measured oracle
// queries, the theoretical expression n·√(νN/M), their ratio (which must be
// a bounded constant across the sweep — here ≈ 2·(π/4+1) from the ⌊m̃⌋+1
// iterations, 2 D's per iteration, 2n queries per D), and the fidelity
// (always 1 up to double rounding: the zero-error guarantee).
#include <cmath>

#include "bench_util.hpp"
#include "sampling/samplers.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  bench::Reporter reporter(argc, argv, "T1",
                "Theorem 4.3 — sequential queries: exact state with "
                "Theta(n*sqrt(nu*N/M)) oracle calls");

  TextTable table({"N", "n", "M", "nu", "a=M/nuN", "queries", "n*sqrt(nuN/M)",
                   "ratio", "fidelity"});

  struct Config {
    std::size_t universe, machines, support;
    std::uint64_t multiplicity, nu;
  };
  const Config configs[] = {
      {64, 1, 16, 1, 2},    {64, 2, 16, 1, 2},    {64, 4, 16, 1, 2},
      {64, 4, 16, 1, 8},    {64, 4, 16, 1, 32},   {128, 2, 16, 2, 4},
      {256, 2, 16, 2, 4},   {512, 2, 16, 2, 4},   {256, 4, 64, 1, 2},
      {256, 4, 64, 2, 4},   {256, 4, 16, 4, 8},   {1024, 2, 32, 1, 4},
      {1024, 8, 128, 1, 2}, {2048, 4, 64, 2, 8},
  };

  double ratio_min = 1e9, ratio_max = 0.0;
  for (const auto& c : configs) {
    const auto db = bench::controlled_db(c.universe, c.machines, c.support,
                                         c.multiplicity, c.nu);
    const auto result = run_sequential_sampler(db);
    const double m_total = static_cast<double>(db.total());
    const double theory =
        static_cast<double>(c.machines) *
        std::sqrt(static_cast<double>(c.nu) *
                  static_cast<double>(c.universe) / m_total);
    const double measured =
        static_cast<double>(result.stats.total_sequential());
    const double ratio = measured / theory;
    ratio_min = std::min(ratio_min, ratio);
    ratio_max = std::max(ratio_max, ratio);
    table.add_row({TextTable::cell(std::uint64_t{c.universe}),
                   TextTable::cell(std::uint64_t{c.machines}),
                   TextTable::cell(db.total()),
                   TextTable::cell(std::uint64_t{c.nu}),
                   TextTable::cell(m_total / (double(c.nu) * double(c.universe)), 4),
                   TextTable::cell(result.stats.total_sequential()),
                   TextTable::cell(theory, 1), TextTable::cell(ratio, 2),
                   TextTable::cell(result.fidelity, 12)});
  }
  table.print(std::cout, "T1: sequential query complexity");
  reporter.add("T1: sequential query complexity", table);
  std::printf("\nratio spread across sweep: [%.2f, %.2f] — bounded constant "
              "=> Theta(n*sqrt(nuN/M)) confirmed\n",
              ratio_min, ratio_max);
  return reporter.finish(ratio_max / ratio_min < 4.0 ? 0 : 1);
}
