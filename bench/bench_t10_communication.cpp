// Experiment T10 — communication accounting: latency (rounds) and volume
// (qubit·trips) of the two query models across instance sizes. The parallel
// model buys its n-fold latency advantage with the SAME order of total
// volume — parallelism reorganises traffic, it does not shrink it.
#include <cmath>

#include "bench_util.hpp"
#include "distdb/communication.hpp"
#include "sampling/samplers.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  bench::Reporter reporter(argc, argv, "T10",
                "Communication — rounds (latency) and qubit volume of both "
                "query models");

  TextTable table({"N", "n", "nu", "model", "rounds", "messages",
                   "qubits_moved", "fidelity"});
  bool pass = true;
  struct Config {
    std::size_t universe, machines;
  };
  const Config configs[] = {{64, 2}, {64, 8}, {256, 8}, {1024, 8},
                            {1024, 32}};
  for (const auto& c : configs) {
    const auto db = bench::controlled_db(c.universe, c.machines, 16, 2, 4);
    const auto seq = run_sequential_sampler(db);
    const auto seq_report = communication_report(db, seq.stats);
    const auto par = run_parallel_sampler(db);
    const auto par_report = communication_report(db, par.stats);

    table.add_row({TextTable::cell(std::uint64_t{c.universe}),
                   TextTable::cell(std::uint64_t{c.machines}),
                   TextTable::cell(db.nu()), "sequential",
                   TextTable::cell(seq_report.rounds),
                   TextTable::cell(seq_report.messages),
                   TextTable::cell(seq_report.qubits_moved),
                   TextTable::cell(seq.fidelity, 9)});
    table.add_row({TextTable::cell(std::uint64_t{c.universe}),
                   TextTable::cell(std::uint64_t{c.machines}),
                   TextTable::cell(db.nu()), "parallel",
                   TextTable::cell(par_report.rounds),
                   TextTable::cell(par_report.messages),
                   TextTable::cell(par_report.qubits_moved),
                   TextTable::cell(par.fidelity, 9)});

    // Latency ratio ≈ n/2 (2n queries vs 4 rounds per D); volume within 2x.
    const double latency_ratio = static_cast<double>(seq_report.rounds) /
                                 static_cast<double>(par_report.rounds);
    pass = pass &&
           std::abs(latency_ratio - static_cast<double>(c.machines) / 2.0) <
               0.01 &&
           par_report.qubits_moved < 3 * seq_report.qubits_moved &&
           seq_report.qubits_moved < 3 * par_report.qubits_moved;
  }
  table.print(std::cout, "T10: wire traffic per sampler run");
  reporter.add("T10: wire traffic per sampler run", table);
  std::printf("\nlatency ratio == n/2 and volumes within a small constant: "
              "%s\n",
              pass ? "PASS" : "FAIL");
  return reporter.finish(pass ? 0 : 1);
}
