// Experiment T5 — Lemma 5.7 (via Lemmas B.2/B.4): any algorithm whose
// output fidelity exceeds 9/16 must end with potential D_{t_k} ≥ C·M_k/M;
// for the exact sampler (ε = 0) the floor is M_k/(2M).
//
// Sweeps the mass fraction M_k/M by loading machine k against a second
// machine of varying size, and reports final D vs the floor. Also runs a
// deliberately TRUNCATED algorithm (low fidelity) to show the floor does
// NOT bind when the fidelity hypothesis fails — i.e. the implication runs
// the right way.
#include <cmath>

#include "bench_util.hpp"
#include "lowerbound/lockstep.hpp"
#include "lowerbound/potential.hpp"
#include "sampling/samplers.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  bench::Reporter reporter(argc, argv, "T5",
                "Lemma 5.7 — high fidelity forces final potential >= "
                "M_k/(2M)");

  TextTable table({"M_k", "M_other", "M_k/M", "floor", "final_D", "fid",
                   "holds"});
  bool all_hold = true;
  const std::size_t universe = 64;
  for (const std::uint64_t other_mass : {0u, 4u, 8u, 16u, 32u}) {
    // Machine 0 (=k): 4 elements x 3. Machine 1: `other_mass` spread on the
    // top of the universe, away from machine 0's support.
    std::vector<Dataset> base = {Dataset(universe), Dataset(universe)};
    for (std::size_t i = 0; i < 4; ++i) base[0].insert(i, 3);
    for (std::uint64_t u = 0; u < other_mass; ++u)
      base[1].insert(universe - 1 - static_cast<std::size_t>(u % 16));

    Rng rng(41);
    PotentialOptions options;
    options.family_samples = 12;
    const auto nu = min_capacity(base) + 2;
    const auto result = measure_potential(base, 0, nu, options, rng);

    const bool holds = result.d_t.back() >= result.floor() - 1e-9;
    all_hold = all_hold && holds;
    table.add_row({TextTable::cell(std::uint64_t{12}),
                   TextTable::cell(other_mass),
                   TextTable::cell(result.mk_over_m, 3),
                   TextTable::cell(result.floor(), 4),
                   TextTable::cell(result.d_t.back(), 4),
                   TextTable::cell(result.mean_final_fidelity, 9),
                   holds ? "yes" : "NO"});
  }
  table.print(std::cout, "T5: final potential vs floor across M_k/M");
  reporter.add("T5: final potential vs floor across M_k/M", table);

  // Control: a low-fidelity (truncated) run may sit UNDER the floor.
  {
    const auto base = make_canonical_hard_input(universe, 2, 0, 4, 3);
    const DistributedDatabase db_true(base, 3);
    std::vector<Dataset> emptied = base;
    emptied[0] = Dataset(universe);
    const DistributedDatabase db_empty(std::move(emptied), 3);
    AAPlan plan = plan_zero_error(
        static_cast<double>(db_true.total()) /
        (3.0 * static_cast<double>(universe)));
    plan.full_iterations = 0;  // truncate: stop right after preparation
    plan.needs_final = false;
    LockstepBackend lockstep(db_true, db_empty, 0, StatePrep::kHouseholder);
    run_sampling_circuit(lockstep, QueryMode::kSequential, plan);
    const double fid = pure_fidelity(target_full_state(db_true),
                                     lockstep.true_state());
    std::printf("\ncontrol (truncated run): fidelity %.4f < 9/16 -> final "
                "D=%.4f may undercut floor %.4f\n",
                fid, lockstep.distance_trace().back(), 12.0 / 24.0 / 2.0);
  }

  std::printf("floor holds for every high-fidelity run: %s\n",
              all_hold ? "PASS" : "FAIL");
  return reporter.finish(all_hold ? 0 : 1);
}
