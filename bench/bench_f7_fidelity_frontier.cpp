// Experiment F7 — the fidelity frontier: achievable fidelity as a function
// of the query budget, read against the lower bound. Section 5 lower-bounds
// the queries needed for F > 9/16; the budgeted sampler traces the entire
// frontier sin²((2t+1)θ) and the bench marks where the 9/16 threshold falls
// relative to the certified minimum t*.
#include <cmath>

#include "bench_util.hpp"
#include "lowerbound/potential.hpp"
#include "sampling/samplers.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  bench::Reporter reporter(argc, argv, "F7",
                "Fidelity frontier — achievable fidelity vs iteration "
                "budget, with the 9/16 threshold of Section 5");

  // Hard-input-shaped instance so the lower-bound machinery applies: all
  // data on machine 0 of 2.
  const std::size_t universe = 256;
  const auto base = make_canonical_hard_input(universe, 2, 0, 8, 2);
  const DistributedDatabase db(base, 2);
  const double a = static_cast<double>(db.total()) /
                   (2.0 * static_cast<double>(universe));
  const auto plan = plan_zero_error(a);
  const std::size_t full = plan.full_iterations + (plan.needs_final ? 1 : 0);

  TextTable table({"iterations", "seq_queries", "fidelity", "above_9/16"});
  std::size_t first_above = 0;
  bool found = false;
  for (std::size_t budget = 0; budget <= full; ++budget) {
    const auto result =
        run_budgeted_sampler(db, QueryMode::kSequential, budget);
    const bool above = result.fidelity > 9.0 / 16.0;
    if (above && !found) {
      first_above = budget;
      found = true;
    }
    table.add_row({TextTable::cell(std::uint64_t{budget}),
                   TextTable::cell(result.stats.total_sequential()),
                   TextTable::cell(result.fidelity, 8),
                   above ? "yes" : "no"});
  }
  table.print(std::cout, "F7: fidelity vs budget (series for the figure)");
  reporter.add("F7: fidelity vs budget (series for the figure)", table);

  // Lower-bound side: machine-0 oracle calls needed per the potential
  // argument (2 per D, 2 D per iterate → the certified t* in machine-0
  // queries maps to t*/4 iterates, up to the preparation).
  Rng rng(91);
  PotentialOptions options;
  options.family_samples = 6;
  const auto potential = measure_potential(base, 0, 2, options, rng);
  const auto t_star = potential.crossover(potential.floor());
  std::printf("\n9/16 threshold first crossed at iterate %zu (= %zu "
              "machine-0 oracle calls);\ncertified lower bound t* = %llu "
              "machine-0 calls\n",
              first_above, 2 + 4 * first_above,
              (unsigned long long)t_star);
  const bool pass =
      found && (2 + 4 * first_above) >= t_star && std::abs(a - plan.a) < 1e-12;
  std::printf("frontier crossing respects the certified bound: %s\n",
              pass ? "PASS" : "FAIL");
  return reporter.finish(pass ? 0 : 1);
}
