// Experiment F3 — Lemma 5.8 / 5.10: the potential D_t grows at most
// quadratically, D_t ≤ 4 (m_k/N) t². Prints the measured trace of the
// paper's own sampler against the ceiling, for both query models.
#include <cmath>

#include "bench_util.hpp"
#include "lowerbound/potential.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  bench::Reporter reporter(argc, argv, "F3",
                "Lemmas 5.8/5.10 — potential ceiling D_t <= 4(m_k/N) t^2");

  bool all_ok = true;
  for (const bool parallel : {false, true}) {
    const auto base = make_canonical_hard_input(96, 2, 0, 6, 3);
    Rng rng(23);
    PotentialOptions options;
    options.mode = parallel ? QueryMode::kParallel : QueryMode::kSequential;
    options.family_samples = 24;
    const auto result = measure_potential(base, 0, 3, options, rng);

    TextTable table({"t", "D_t (measured)", "4(m_k/N)t^2", "headroom"});
    for (std::size_t t = 0; t < result.d_t.size(); ++t) {
      const double ceiling = result.ceiling(t + 1);
      all_ok = all_ok && result.d_t[t] <= ceiling + 1e-9;
      table.add_row({TextTable::cell(std::uint64_t{t + 1}),
                     TextTable::cell(result.d_t[t], 6),
                     TextTable::cell(ceiling, 4),
                     TextTable::cell(ceiling - result.d_t[t], 4)});
    }
    table.print(std::cout, std::string("F3: D_t growth, ") +
                               (parallel ? "parallel" : "sequential") +
                               " oracle (m_k=6, N=96)");
    reporter.add(std::string("F3: D_t growth, ") +
                               (parallel ? "parallel" : "sequential") +
                               " oracle (m_k=6, N=96)", table);
    std::printf("mean final fidelity of the true runs: %.9f\n\n",
                result.mean_final_fidelity);
  }
  std::printf("ceiling respected at every t in both models: %s\n",
              all_ok ? "PASS" : "FAIL");
  return reporter.finish(all_ok ? 0 : 1);
}
