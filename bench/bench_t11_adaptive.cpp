// Experiment T11 — adaptivity (non-oblivious schedules), Section 6's open
// question. The adaptive sampler probes per-machine loads and skips
// machines judged empty. Findings the table exhibits:
//   * one-shot: the probe phase costs Grover-order queries per machine, so
//     adaptivity LOSES on a single sampling task (conjecture-consistent);
//   * amortised over many samples, the saving is the factor n/n_active on
//     the 2n-per-D term — the √(νN/M) term is untouched.
#include <cmath>

#include "bench_util.hpp"
#include "estimation/adaptive.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  bench::Reporter reporter(argc, argv, "T11",
                "Adaptive vs oblivious — probe cost, one-shot and amortised "
                "per-sample query counts");

  const std::size_t machines = 16;
  TextTable table({"active", "probe_cost", "adapt_1shot", "adapt_amort(1k)",
                   "oblivious", "d_apps", "fid"});
  bool pass = true;
  for (const std::size_t active : {1u, 2u, 4u, 8u, 16u}) {
    // `active` machines hold 8 distinct elements each; the rest are empty.
    std::vector<Dataset> datasets(machines, Dataset(256));
    for (std::size_t j = 0; j < active; ++j) {
      for (std::size_t e = 0; e < 8; ++e)
        datasets[j].insert(j * 8 + e, 1);
    }
    const DistributedDatabase db(std::move(datasets), 2);

    Rng rng(7);
    const auto adaptive =
        run_adaptive_sampler(db, exponential_schedule(5, 16), rng);
    const auto oblivious = run_sequential_sampler(db);

    const bool exact = adaptive.misclassified == 0 &&
                       adaptive.sampling.fidelity > 1.0 - 1e-9;
    pass = pass && exact;
    // One-shot adaptivity must not beat oblivious (probe cost dominates);
    // amortised adaptivity must win exactly when machines are skippable.
    pass = pass &&
           adaptive.total_cost() > oblivious.stats.total_sequential();
    if (active < machines) {
      pass = pass && adaptive.amortized_cost(1000) <
                         double(oblivious.stats.total_sequential());
    }
    table.add_row(
        {TextTable::cell(std::uint64_t{active}),
         TextTable::cell(adaptive.probe_cost),
         TextTable::cell(adaptive.total_cost()),
         TextTable::cell(adaptive.amortized_cost(1000), 1),
         TextTable::cell(oblivious.stats.total_sequential()),
         TextTable::cell(std::uint64_t{oblivious.plan.d_applications()}),
         TextTable::cell(adaptive.sampling.fidelity, 9)});
  }
  table.print(std::cout, "T11: adaptivity ledger vs active-machine count");
  reporter.add("T11: adaptivity ledger vs active-machine count", table);
  std::printf("\none-shot adaptivity never wins; amortised wins iff "
              "machines are skippable; the d-apps column (the sqrt term) "
              "is constant: %s\n",
              pass ? "PASS" : "FAIL");
  return reporter.finish(pass ? 0 : 1);
}
