// Experiment R1 — robustness overhead: what the fault-injection subsystem
// costs when nothing is failing (docs/ROBUSTNESS.md).
//
// Three tables:
//
//   1. The per-event cost of the DISABLED oracle-interposition seam
//      (sampling/fault_seam.hpp) — one acquire load plus a never-taken
//      branch — relative to the cheapest instrumented qsim kernel. This is
//      the machine-relative percentage gated in CI by
//      `dqs_trace --overhead --fault-baseline` (budget: baseline + 0.5pp).
//
//   2. End-to-end fault-free sampler wall time with the seam empty versus
//      with a pass-through interposer installed, per query model. The
//      pass-through run must be BIT-IDENTICAL to the plain run — the seam
//      may permute machine indices, never amplitudes — and that identity
//      is this bench's exit-code claim (timing is reported, not gated:
//      wall-clock deltas are host noise; the gated number is table 1's).
//
//   3. The deterministic recovery ledger for a scripted crash+transient
//      plan in both models: injected faults, failed attempts, backoff
//      events, breaker opens. Pure protocol accounting — identical on
//      every host, so diffs in review are genuine behavior changes.
#include <algorithm>
#include <cstdint>
#include <functional>

#include "bench_util.hpp"
#include "faults/recovery.hpp"
#include "sampling/fault_seam.hpp"
#include "sampling/samplers.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace qs;

/// Forwards every event unchanged: the cheapest possible ARMED seam.
class PassThroughInterposer final : public OracleInterposer {
 public:
  std::size_t on_sequential(std::size_t scheduled, bool) override {
    return scheduled;
  }
  void on_parallel_round(bool) override {}
};

double best_of_3_ns(const std::function<void()>& body) {
  double best = 1e300;
  body();  // warm-up
  for (int pass = 0; pass < 3; ++pass) {
    const auto start = telemetry::monotonic_ns();
    body();
    best = std::min(best, double(telemetry::monotonic_ns() - start));
  }
  return best;
}

const char* mode_name(QueryMode mode) {
  return mode == QueryMode::kSequential ? "sequential" : "parallel";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qs;
  bench::Reporter reporter(argc, argv, "R1",
                "Robustness — the fault seam costs one load per oracle "
                "event when idle, and recovery cost is fully ledgered");

  bool ok = true;

  // --- Table 1: disabled-seam probe vs the cheapest instrumented kernel.
  {
    constexpr std::size_t kProbeReps = 1u << 21;
    std::size_t diverted = 0;
    const double probe_ns = best_of_3_ns([&] {
                              for (std::size_t i = 0; i < kProbeReps; ++i) {
                                if (auto* ip = oracle_interposer()) {
                                  diverted += ip->on_sequential(i, false);
                                }
                              }
                            }) /
                            kProbeReps;
    QS_REQUIRE(diverted == 0, "an interposer was installed mid-measurement");

    RegisterLayout layout;
    layout.add("elem", 4096);
    StateVector sv(layout);
    constexpr std::size_t kKernelReps = 4096;
    const cplx phase(0.7071067811865476, 0.7071067811865476);
    const double kernel_ns = best_of_3_ns([&] {
                               for (std::size_t i = 0; i < kKernelReps; ++i)
                                 sv.apply_global_phase(phase);
                             }) /
                             kKernelReps;

    TextTable table({"probe", "ns/op", "vs 4096-dim kernel"});
    table.add_row({"fault seam (disabled)", TextTable::cell(probe_ns, 3),
                   TextTable::cell(probe_ns / kernel_ns * 100.0, 4) + "%"});
    table.add_row({"apply_global_phase", TextTable::cell(kernel_ns, 3),
                   "100%"});
    table.print(std::cout, "R1: disabled fault-seam probe");
    reporter.add("R1: disabled fault-seam probe", table);
  }

  // --- Table 2: end-to-end fault-free runs, seam empty vs pass-through.
  {
    TextTable table({"mode", "plain ms", "pass-through ms", "delta %",
                     "bit-identical"});
    const auto db = bench::uniform_db(256, 4, 32, 11);
    for (const auto mode : {QueryMode::kSequential, QueryMode::kParallel}) {
      const auto run = [&] {
        return mode == QueryMode::kSequential ? run_sequential_sampler(db)
                                              : run_parallel_sampler(db);
      };
      const auto plain = run();
      const double plain_ns = best_of_3_ns([&] { (void)run(); });
      PassThroughInterposer pass_through;
      OracleInterposerScope scope(pass_through);
      const auto armed = run();
      const double armed_ns = best_of_3_ns([&] { (void)run(); });
      const bool identical =
          armed.state.amplitudes().size() ==
              plain.state.amplitudes().size() &&
          std::equal(armed.state.amplitudes().begin(),
                     armed.state.amplitudes().end(),
                     plain.state.amplitudes().begin()) &&
          armed.stats == plain.stats;
      ok = ok && identical;
      table.add_row({mode_name(mode), TextTable::cell(plain_ns / 1e6, 3),
                     TextTable::cell(armed_ns / 1e6, 3),
                     TextTable::cell((armed_ns / plain_ns - 1.0) * 100.0, 2),
                     identical ? "yes" : "NO"});
    }
    table.print(std::cout, "R1: end-to-end seam overhead (fault-free run)");
    reporter.add("R1: end-to-end seam overhead (fault-free run)", table);
  }

  // --- Table 3: deterministic recovery accounting for a scripted plan.
  {
    TextTable table({"mode", "events", "injected", "failed attempts",
                     "backoff events", "breaker opens", "recovered"});
    const auto db = bench::uniform_db(64, 3, 18, 23);
    const FaultPlan plan({
        {2, FaultKind::kMachineCrash, 1, 3},
        {5, FaultKind::kOracleTransient, 0, 0},
        {9, FaultKind::kDropBundle, 0, 0},
        {12, FaultKind::kDelay, 0, 2},
    });
    for (const auto mode : {QueryMode::kSequential, QueryMode::kParallel}) {
      const auto run = run_sampler_with_faults(db, mode, plan, RetryPolicy{});
      ok = ok && run.ok();
      const auto& ledger = run.recovery.ledger;
      table.add_row({mode_name(mode),
                     TextTable::cell(std::uint64_t{run.recovery.events.size()}),
                     TextTable::cell(ledger.injected_faults),
                     TextTable::cell(ledger.failed_attempts),
                     TextTable::cell(ledger.backoff_events),
                     TextTable::cell(ledger.breaker_opens),
                     run.ok() ? "yes" : "NO"});
    }
    table.print(std::cout, "R1: recovery ledger for a scripted plan");
    reporter.add("R1: recovery ledger for a scripted plan", table);
  }

  std::printf("\n%s\n", ok ? "pass-through runs bit-identical; scripted "
                             "plans recovered"
                           : "FAILED: seam changed a fault-free run or "
                             "recovery did not converge");
  return reporter.finish(ok ? 0 : 1);
}
