// Experiment T14 — comparing two distributed stores: SWAP test vs the
// classical route. Classically, certifying the similarity of two sharded
// key distributions means learning both histograms (2·nN probes). The
// quantum monitor estimates the Bhattacharyya overlap with
// shots·(prep_A + prep_B) oracle calls — each preparation Grover-cheap —
// and the cost advantage grows with the universe size at fixed precision.
#include <cmath>

#include "bench_util.hpp"
#include "apps/store_comparison.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  bench::Reporter reporter(argc, argv, "T14",
                "Store comparison — SWAP-test overlap vs classical "
                "histogram learning");

  TextTable table({"N", "true_overlap", "estimate", "95% CI", "q_cost",
                   "classical(2nN)", "advantage"});
  bool pass = true;
  const std::size_t shots = 600;
  for (const std::size_t universe : {64u, 256u, 1024u, 4096u}) {
    // Store A: 16 keys with 2 copies; store B: the same but 4 keys moved —
    // a fixed, N-independent logical difference.
    std::vector<Dataset> a_sets(2, Dataset(universe));
    std::vector<Dataset> b_sets(2, Dataset(universe));
    for (std::size_t k = 0; k < 16; ++k) {
      a_sets[k % 2].insert(k, 2);
      b_sets[k % 2].insert(k < 4 ? universe - 1 - k : k, 2);
    }
    const DistributedDatabase store_a(std::move(a_sets), 2);
    const DistributedDatabase store_b(std::move(b_sets), 2);

    Rng rng(31);
    const auto result =
        compare_stores(store_a, store_b, QueryMode::kSequential, shots, rng);
    pass = pass && result.true_overlap >= result.overlap_lo - 1e-9 &&
           result.true_overlap <= result.overlap_hi + 1e-9;

    const std::uint64_t classical = 2ull * 2ull * universe;
    table.add_row(
        {TextTable::cell(std::uint64_t{universe}),
         TextTable::cell(result.true_overlap, 4),
         TextTable::cell(result.overlap_estimate, 4),
         "[" + TextTable::cell(result.overlap_lo, 3) + ", " +
             TextTable::cell(result.overlap_hi, 3) + "]",
         TextTable::cell(result.total_cost), TextTable::cell(classical),
         TextTable::cell(double(classical) / double(result.total_cost),
                         2)});
  }
  table.print(std::cout, "T14: overlap certification cost");
  reporter.add("T14: overlap certification cost", table);
  std::printf("\ntrue overlap inside the 95%% interval in every row: %s\n",
              pass ? "PASS" : "FAIL");
  std::printf("honest reading: at this precision (600 shots, CI width ~0.1) "
              "the classical histogram scan still wins at these N — the "
              "quantum cost grows ~sqrt(N) vs classical ~N, so the ratio "
              "column improves 6.5x across the sweep and extrapolates to a "
              "crossover near N ~ 1e6. Shot noise (1/sqrt(shots)) is the "
              "quantum method's constant, exactly as theory predicts.\n");
  return reporter.finish(pass ? 0 : 1);
}
