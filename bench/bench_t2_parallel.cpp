// Experiment T2 — Theorem 4.5: the parallel sampler is exact and uses
// Θ(√(νN/M)) parallel rounds — INDEPENDENT of the machine count n.
#include <cmath>

#include "bench_util.hpp"
#include "sampling/samplers.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  bench::Reporter reporter(argc, argv, "T2",
                "Theorem 4.5 — parallel queries: exact state with "
                "Theta(sqrt(nu*N/M)) rounds, independent of n");

  TextTable table({"N", "n", "M", "nu", "rounds", "sqrt(nuN/M)", "ratio",
                   "fidelity"});

  struct Config {
    std::size_t universe, machines, support;
    std::uint64_t multiplicity, nu;
  };
  const Config configs[] = {
      {64, 1, 16, 1, 4},   {64, 2, 16, 1, 4},   {64, 8, 16, 1, 4},
      {64, 32, 16, 1, 4},  {256, 2, 16, 2, 4},  {256, 8, 16, 2, 4},
      {512, 4, 32, 1, 2},  {1024, 4, 32, 1, 2}, {2048, 4, 32, 1, 2},
      {1024, 16, 64, 2, 8},
  };

  double ratio_min = 1e9, ratio_max = 0.0;
  for (const auto& c : configs) {
    const auto db = bench::controlled_db(c.universe, c.machines, c.support,
                                         c.multiplicity, c.nu);
    const auto result = run_parallel_sampler(db);
    const double theory = std::sqrt(static_cast<double>(c.nu) *
                                    static_cast<double>(c.universe) /
                                    static_cast<double>(db.total()));
    const double measured = static_cast<double>(result.stats.parallel_rounds);
    const double ratio = measured / theory;
    ratio_min = std::min(ratio_min, ratio);
    ratio_max = std::max(ratio_max, ratio);
    table.add_row({TextTable::cell(std::uint64_t{c.universe}),
                   TextTable::cell(std::uint64_t{c.machines}),
                   TextTable::cell(db.total()),
                   TextTable::cell(std::uint64_t{c.nu}),
                   TextTable::cell(result.stats.parallel_rounds),
                   TextTable::cell(theory, 1), TextTable::cell(ratio, 2),
                   TextTable::cell(result.fidelity, 12)});
  }
  table.print(std::cout, "T2: parallel round complexity");
  reporter.add("T2: parallel round complexity", table);
  std::printf("\nratio spread: [%.2f, %.2f]; rows with equal (N, M, nu) but "
              "different n have IDENTICAL round counts\n",
              ratio_min, ratio_max);
  return reporter.finish(ratio_max / ratio_min < 4.0 ? 0 : 1);
}
