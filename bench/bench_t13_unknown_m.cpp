// Experiment T13 — sampling without knowing M (BBHT exponential search,
// the paper's reference [8]): expected cost tracks the known-M sampler's
// Θ(√(νN/M)) within a constant, with exact output on success.
#include <cmath>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "sampling/unknown_m.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  bench::Reporter reporter(argc, argv, "T13",
                "Unknown-M sampling (BBHT) — expected cost vs the known-M "
                "zero-error sampler");

  TextTable table({"N", "M", "nuN/M", "known_M_queries", "unknownM_mean",
                   "unknownM_p90", "overhead", "mean_attempts"});
  std::vector<double> ratios, overheads;
  bool exact = true;
  struct Config {
    std::size_t universe, support;
  };
  const Config configs[] = {{64, 16}, {128, 16}, {256, 16},
                            {512, 16}, {1024, 16}, {2048, 16}};
  for (const auto& c : configs) {
    const auto db = bench::controlled_db(c.universe, 2, c.support, 2, 4);
    const auto known = run_sequential_sampler(db);

    Accumulator cost;
    Accumulator attempts;
    std::vector<double> costs;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      Rng rng(500 + seed);
      const auto result =
          run_unknown_m_sampler(db, QueryMode::kSequential, rng);
      exact = exact && result.fidelity > 1.0 - 1e-9;
      costs.push_back(double(result.stats.total_sequential()));
      cost.add(costs.back());
      attempts.add(double(result.attempts));
    }
    std::sort(costs.begin(), costs.end());
    const double p90 = costs[costs.size() * 9 / 10];
    const double overhead =
        cost.mean() / double(known.stats.total_sequential());
    overheads.push_back(overhead);
    ratios.push_back(double(db.nu()) * double(c.universe) /
                     double(db.total()));
    table.add_row(
        {TextTable::cell(std::uint64_t{c.universe}),
         TextTable::cell(db.total()), TextTable::cell(ratios.back(), 1),
         TextTable::cell(known.stats.total_sequential()),
         TextTable::cell(cost.mean(), 1), TextTable::cell(p90, 0),
         TextTable::cell(overhead, 2), TextTable::cell(attempts.mean(), 1)});
  }
  table.print(std::cout, "T13: unknown-M cost ledger");
  reporter.add("T13: unknown-M cost ledger", table);

  // Shape: overhead stays a bounded constant as νN/M grows 32x.
  double omax = 0.0, omin = 1e9;
  for (const auto o : overheads) {
    omax = std::max(omax, o);
    omin = std::min(omin, o);
  }
  std::printf("\noverhead spread across a 32x sweep of nuN/M: [%.2f, %.2f] "
              "(bounded constant => same Theta(sqrt(nuN/M)) scaling)\n",
              omin, omax);
  const bool pass = exact && omax / omin < 5.0 && omax < 12.0;
  std::printf("exact outputs and bounded overhead: %s\n",
              pass ? "PASS" : "FAIL");
  return reporter.finish(pass ? 0 : 1);
}
