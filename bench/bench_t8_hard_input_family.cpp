// Experiment T8 — Lemma 5.6: the hard-input family for machine k has
// exactly C(N, m_k) distinct members. Exhaustively enumerates small
// families, verifies distinctness of the σ-induced inputs, and checks the
// uniform sampler covers the family.
#include <set>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "lowerbound/hard_inputs.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  bench::Reporter reporter(argc, argv, "T8",
                "Lemma 5.6 — |T| = C(N, m_k): exhaustive family counting");

  TextTable table({"N", "m_k", "C(N,m_k)", "enumerated", "distinct_dbs",
                   "sampler_coverage"});
  bool pass = true;
  struct Config {
    std::size_t universe, support;
  };
  const Config configs[] = {{6, 2}, {6, 3}, {8, 2}, {8, 4}, {10, 3}, {12, 2}};

  for (const auto& c : configs) {
    // Base input: machine 0 holds support {0..m_k-1} with multiplicities
    // 1..m_k (all distinct, so relocations are maximally distinguishable).
    std::vector<Dataset> base = {Dataset(c.universe), Dataset(c.universe)};
    for (std::size_t i = 0; i < c.support; ++i) base[0].insert(i, i + 1);

    const auto images = enumerate_images(c.universe, c.support);
    std::set<std::vector<std::uint64_t>> distinct;
    for (const auto& image : images)
      distinct.insert(apply_sigma(base, 0, image)[0].counts());

    // Uniform sampling should hit a good fraction of the family.
    Rng rng(51);
    std::set<std::vector<std::size_t>> sampled;
    const std::size_t draws = images.size() * 8;
    for (std::size_t d = 0; d < draws; ++d)
      sampled.insert(sample_image(c.universe, c.support, rng));
    const double coverage = static_cast<double>(sampled.size()) /
                            static_cast<double>(images.size());

    const auto expected = binomial(c.universe, c.support).value();
    pass = pass && images.size() == expected &&
           distinct.size() == expected && coverage > 0.95;
    table.add_row({TextTable::cell(std::uint64_t{c.universe}),
                   TextTable::cell(std::uint64_t{c.support}),
                   TextTable::cell(expected),
                   TextTable::cell(std::uint64_t{images.size()}),
                   TextTable::cell(std::uint64_t{distinct.size()}),
                   TextTable::cell(coverage, 3)});
  }
  table.print(std::cout, "T8: hard-input family sizes");
  reporter.add("T8: hard-input family sizes", table);
  std::printf("\nenumerated == distinct == C(N, m_k) everywhere: %s\n",
              pass ? "PASS" : "FAIL");
  return reporter.finish(pass ? 0 : 1);
}
