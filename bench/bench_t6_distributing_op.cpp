// Experiment T6 — Lemmas 4.1/4.2/4.4: the distributing operator D is
// unitary, the 2n-sequential-query circuit and the 4-parallel-round circuit
// both realise it exactly, and the costs are exactly as claimed.
//
// For random small instances we report the operator-level distance between
// each realisation and the ideal D on the working subspace, plus the
// measured query costs.
#include <cmath>

#include "bench_util.hpp"
#include "qsim/operator_builder.hpp"
#include "sampling/circuit.hpp"
#include "sampling/ideal.hpp"
#include "sampling/parallel_full.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  bench::Reporter reporter(argc, argv, "T6",
                "Lemmas 4.1/4.2/4.4 — D is unitary; oracle circuits realise "
                "it with exactly 2n sequential queries / 4 parallel rounds");

  TextTable table({"trial", "N", "n", "nu", "unitarity", "seq_dist",
                   "full_par_dist", "seq_cost", "par_rounds"});
  bool pass = true;

  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    Rng rng(100 + trial);
    const std::size_t universe = 3 + trial % 2;
    const std::size_t machines = 2;
    auto datasets =
        workload::uniform_random(universe, machines, 4 + trial, rng);
    const auto nu = min_capacity(datasets) + trial % 2;
    const DistributedDatabase db(std::move(datasets), nu);
    const auto regs = make_coordinator_layout(db.universe(), db.nu());

    // Lemma 4.1: ideal D is unitary.
    const auto ideal = operator_of_circuit(regs.layout, [&](StateVector& s) {
      apply_ideal_distributing(s, db, regs.elem, regs.flag, false);
    });
    const double unitarity = ideal.unitarity_defect();

    // Lemma 4.2: sequential oracle realisation, distance on the count=0
    // subspace (columns with count digit 0).
    double seq_dist = 0.0;
    for (std::size_t i = 0; i < db.universe(); ++i) {
      for (std::size_t b = 0; b < 2; ++b) {
        const std::vector<std::size_t> digits = {i, 0, b};
        SingleStateBackend backend(db, StatePrep::kHouseholder);
        backend.state().reset(regs.layout.index_of(digits));
        apply_distributing_operator(backend, QueryMode::kSequential, false);
        StateVector ref(regs.layout, regs.layout.index_of(digits));
        apply_ideal_distributing(ref, db, regs.elem, regs.flag, false);
        seq_dist = std::max(
            seq_dist, std::sqrt(backend.state().distance_squared(ref)));
      }
    }

    // Lemma 4.4: FULL parallel circuit with all ancillas.
    const ParallelFullCircuit full(db);
    double par_dist = 0.0;
    for (std::size_t i = 0; i < db.universe(); ++i) {
      for (std::size_t b = 0; b < 2; ++b) {
        std::size_t start = 0;
        start = full.layout().with_digit(start, full.elem(), i);
        start = full.layout().with_digit(start, full.flag(), b);
        auto via_circuit = full.make_state();
        via_circuit.reset(start);
        full.apply_distributing(via_circuit, false);
        auto via_ideal = full.make_state();
        via_ideal.reset(start);
        apply_ideal_distributing(via_ideal, db, full.elem(), full.flag(),
                                 false);
        par_dist = std::max(par_dist,
                            std::sqrt(via_circuit.distance_squared(via_ideal)));
      }
    }

    // Costs.
    db.reset_stats();
    SingleStateBackend backend(db, StatePrep::kHouseholder);
    apply_distributing_operator(backend, QueryMode::kSequential, false);
    const auto seq_cost = db.stats().total_sequential();
    db.reset_stats();
    auto state = full.make_state();
    full.apply_distributing(state, false);
    const auto par_rounds = db.stats().parallel_rounds;

    pass = pass && unitarity < 1e-9 && seq_dist < 1e-9 && par_dist < 1e-9 &&
           seq_cost == 2 * machines && par_rounds == 4;
    table.add_row({TextTable::cell(trial),
                   TextTable::cell(std::uint64_t{universe}),
                   TextTable::cell(std::uint64_t{machines}),
                   TextTable::cell(std::uint64_t{db.nu()}),
                   TextTable::cell_sci(unitarity, 1),
                   TextTable::cell_sci(seq_dist, 1),
                   TextTable::cell_sci(par_dist, 1),
                   TextTable::cell(seq_cost), TextTable::cell(par_rounds)});
  }
  table.print(std::cout, "T6: distributing-operator realisations");
  reporter.add("T6: distributing-operator realisations", table);
  std::printf("\nall distances ~ 0, costs exactly 2n / 4: %s\n",
              pass ? "PASS" : "FAIL");
  return reporter.finish(pass ? 0 : 1);
}
