// Experiment F10 — what does knowing M buy? Three samplers, one target
// fidelity, three knowledge/constraint profiles:
//
//   zero-error  (Thms 4.3/4.5): needs EXACT M;      cost Θ(√(νN/M)), F = 1
//   BBHT        ([8], T13):     no M, measurements; E[cost] Θ(√(νN/M)), F = 1
//   π/3 fixed pt (Grover '05):  no M, oblivious,    cost Θ((1/a)·log 1/δ)
//                               measurement-free;   F ≥ 1 − δ
//
// The table shows the quadratic gap opening between the Grover-scaling
// options and the fixed-point recursion as the store gets sparser — the
// price of keeping the schedule oblivious without learning M.
#include <cmath>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "sampling/fixed_point.hpp"
#include "sampling/unknown_m.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  bench::Reporter reporter(argc, argv, "F10",
                "Knowledge ablation — exact-M zero-error vs unknown-M BBHT "
                "vs oblivious fixed point (target 1-F <= 1e-3)");

  TextTable table({"N", "a=M/nuN", "zero_err(q)", "bbht E[q]", "fixed_pt(q)",
                   "fp_levels", "fp_fid"});
  bool pass = true;
  struct Config {
    std::size_t universe, support;
  };
  const Config configs[] = {{32, 8}, {64, 8}, {128, 8}, {256, 8}, {512, 8}};
  const double delta = 1e-3;

  for (const auto& c : configs) {
    const auto db = bench::controlled_db(c.universe, 2, c.support, 1, 2);
    const double a = double(db.total()) / (2.0 * double(c.universe));

    const auto exact = run_sequential_sampler(db);

    Accumulator bbht;
    for (std::uint64_t seed = 0; seed < 12; ++seed) {
      Rng rng(700 + seed);
      bbht.add(double(run_unknown_m_sampler(db, QueryMode::kSequential, rng)
                          .stats.total_sequential()));
    }

    // Fixed point planned from the honest floor a ≥ 1/(νN).
    const auto levels =
        fixed_point_levels_for(1.0 / (2.0 * double(c.universe)), delta);
    const auto fp =
        run_fixed_point_sampler(db, QueryMode::kSequential, levels);
    pass = pass && fp.fidelity > 1.0 - delta && exact.fidelity > 1.0 - 1e-9;

    table.add_row({TextTable::cell(std::uint64_t{c.universe}),
                   TextTable::cell(a, 4),
                   TextTable::cell(exact.stats.total_sequential()),
                   TextTable::cell(bbht.mean(), 0),
                   TextTable::cell(fp.stats.total_sequential()),
                   TextTable::cell(std::uint64_t{levels}),
                   TextTable::cell(fp.fidelity, 6)});
  }
  table.print(std::cout, "F10: cost by knowledge profile");
  reporter.add("F10: cost by knowledge profile", table);
  std::printf("\nGrover-scaling pair stays ~sqrt; the oblivious M-free "
              "fixed point pays ~1/a — the quadratic price of "
              "obliviousness without M. all fidelities on target: %s\n",
              pass ? "PASS" : "FAIL");
  return reporter.finish(pass ? 0 : 1);
}
