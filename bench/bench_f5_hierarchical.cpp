// Experiment F5 — the hierarchical architecture (Section 6 future work):
// group-parallel / cross-group-sequential querying interpolates between
// Theorem 4.3 (g = n) and Theorem 4.5 (g = 1); cost Θ(g·√(νN/M)).
#include <cmath>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "sampling/hierarchical.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  bench::Reporter reporter(argc, argv, "F5",
                "Hierarchical architecture — rounds interpolate between the "
                "sequential and parallel models, ~ g*sqrt(nuN/M)");

  const std::size_t machines = 32;
  const auto db = bench::controlled_db(512, machines, 32, 2, 4);
  const auto seq = run_sequential_sampler(db);
  const auto par = run_parallel_sampler(db);

  TextTable table({"groups", "rounds", "rounds_per_D", "fidelity",
                   "matches"});
  std::vector<double> gs, rounds;
  bool pass = true;
  for (const std::size_t groups : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const auto partition = contiguous_partition(machines, groups);
    const auto result = run_hierarchical_sampler(db, partition);
    pass = pass && result.fidelity > 1.0 - 1e-9;
    gs.push_back(static_cast<double>(groups));
    rounds.push_back(static_cast<double>(result.group_rounds));
    std::string matches = "-";
    if (groups == 1 && result.group_rounds == par.stats.parallel_rounds)
      matches = "== parallel model";
    if (groups == machines &&
        result.group_rounds == seq.stats.total_sequential())
      matches = "== sequential model";
    table.add_row({TextTable::cell(std::uint64_t{groups}),
                   TextTable::cell(result.group_rounds),
                   TextTable::cell(hierarchical_rounds_per_d(partition)),
                   TextTable::cell(result.fidelity, 12), matches});
  }
  table.print(std::cout, "F5: rounds vs group count (series for the figure)");
  reporter.add("F5: rounds vs group count (series for the figure)", table);

  const auto fit = fit_power_law(gs, rounds);
  std::printf("\nfitted g-exponent: %.3f (theory 1.000, up to the 2-vs-4 "
              "rounds-per-group step at singleton groups)\n",
              fit.slope);
  pass = pass && fit.slope > 0.8 && fit.slope < 1.1;
  std::printf("endpoints coincide with Theorems 4.5 / 4.3 and exponent ~1: "
              "%s\n",
              pass ? "PASS" : "FAIL");
  return reporter.finish(pass ? 0 : 1);
}
