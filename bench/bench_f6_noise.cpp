// Experiment F6 — fault tolerance (the paper's motivation, quantified):
// under per-round noise, output fidelity decays with the number of noisy
// rounds, so the parallel model's Θ(√(νN/M)) round count makes it ~n times
// more robust than the sequential model on the same instance.
#include <cmath>

#include "bench_util.hpp"
#include "sampling/noisy_sampler.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  bench::Reporter reporter(argc, argv, "F6",
                "Noise robustness — per-round dephasing: fewer rounds "
                "(parallel model) => slower fidelity decay");

  const std::size_t machines = 6;
  const auto db = bench::controlled_db(128, machines, 16, 2, 4);

  TextTable table({"p_dephase", "seq_rounds", "seq_fid", "par_rounds",
                   "par_fid", "par_advantage"});
  bool pass = true;
  const std::size_t trajectories = 48;
  for (const double p : {0.0, 0.002, 0.005, 0.01, 0.02, 0.05}) {
    NoiseModel noise;
    noise.dephasing_per_round = p;
    Rng rng1(71), rng2(72);
    const auto seq = run_noisy_sampler(db, QueryMode::kSequential, noise,
                                       trajectories, rng1);
    const auto par = run_noisy_sampler(db, QueryMode::kParallel, noise,
                                       trajectories, rng2);
    if (p > 0.004) pass = pass && par.mean_fidelity > seq.mean_fidelity;
    table.add_row({TextTable::cell(p, 3),
                   TextTable::cell(seq.noisy_rounds_per_trajectory),
                   TextTable::cell(seq.mean_fidelity, 4),
                   TextTable::cell(par.noisy_rounds_per_trajectory),
                   TextTable::cell(par.mean_fidelity, 4),
                   TextTable::cell(par.mean_fidelity - seq.mean_fidelity,
                                   4)});
  }
  table.print(std::cout, "F6: fidelity vs per-round dephasing rate");
  reporter.add("F6: fidelity vs per-round dephasing rate", table);

  // Second series: oracle data faults.
  TextTable faults({"fault_rate", "seq_fid", "par_fid"});
  for (const double p : {0.001, 0.01, 0.05}) {
    NoiseModel noise;
    noise.oracle_fault_rate = p;
    Rng rng1(81), rng2(82);
    const auto seq = run_noisy_sampler(db, QueryMode::kSequential, noise,
                                       trajectories, rng1);
    const auto par = run_noisy_sampler(db, QueryMode::kParallel, noise,
                                       trajectories, rng2);
    faults.add_row({TextTable::cell(p, 3),
                    TextTable::cell(seq.mean_fidelity, 4),
                    TextTable::cell(par.mean_fidelity, 4)});
  }
  faults.print(std::cout, "F6b: fidelity vs oracle fault rate");
  reporter.add("F6b: fidelity vs oracle fault rate", faults);

  std::printf("\nparallel model more robust at every nonzero rate: %s\n",
              pass ? "PASS" : "FAIL");
  return reporter.finish(pass ? 0 : 1);
}
