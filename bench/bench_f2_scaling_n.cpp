// Experiment F2 — scaling in the machine count n at fixed (N, M, ν):
// sequential queries grow LINEARLY in n (slope 1 on log-log), parallel
// rounds stay FLAT (slope 0). This is the paper's headline separation
// between the two communication patterns.
#include <cmath>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "sampling/samplers.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  bench::Reporter reporter(argc, argv, "F2",
                "Scaling in n at fixed N, M, nu: sequential ~ n, parallel "
                "~ 1");

  TextTable table({"n", "seq_queries", "par_rounds", "fidelity"});
  std::vector<double> ns, seq_q, par_q;
  for (const std::size_t machines : {1u, 2u, 4u, 8u, 16u, 32u}) {
    // N=256, 32 elements x2 = M=64, nu=4.
    const auto db = bench::controlled_db(256, machines, 32, 2, 4);
    const auto seq = run_sequential_sampler(db);
    const auto par = run_parallel_sampler(db);
    ns.push_back(static_cast<double>(machines));
    seq_q.push_back(static_cast<double>(seq.stats.total_sequential()));
    par_q.push_back(static_cast<double>(par.stats.parallel_rounds));
    table.add_row({TextTable::cell(std::uint64_t{machines}),
                   TextTable::cell(seq.stats.total_sequential()),
                   TextTable::cell(par.stats.parallel_rounds),
                   TextTable::cell(seq.fidelity, 12)});
  }
  table.print(std::cout, "F2: queries vs n (series for the figure)");
  reporter.add("F2: queries vs n (series for the figure)", table);

  const auto seq_fit = fit_power_law(ns, seq_q);
  std::printf("\nsequential: fitted n-exponent %.3f (theory 1.000)\n",
              seq_fit.slope);
  bool par_flat = true;
  for (const auto q : par_q) par_flat = par_flat && (q == par_q.front());
  std::printf("parallel: %s across all n (theory: constant)\n",
              par_flat ? "EXACTLY CONSTANT" : "NOT constant — FAIL");
  const bool pass = std::abs(seq_fit.slope - 1.0) < 0.05 && par_flat;
  return reporter.finish(pass ? 0 : 1);
}
